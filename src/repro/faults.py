"""Fault-injection harness for chaos-testing the sweep engine.

A :class:`FaultPlan` describes artificial failures to inject into
:func:`~repro.experiments.sweep.execute_spec` and
:class:`~repro.experiments.sweep.ResultCache`:

* ``crash_profiles`` — hard-kill the worker process (``os._exit``) when it
  executes a spec for one of these benchmark profiles, which surfaces as a
  ``BrokenProcessPool`` in the parent.  ``crash_token_dir`` bounds the
  number of crashes: each crash consumes one token file (the unlink is
  atomic, so concurrent workers never double-spend); with no token
  directory the profile crashes every time, which is how the quarantine
  path is exercised.
* ``fail_profiles`` — raise :class:`~repro.errors.FaultInjected` inside the
  run (an ordinary in-worker exception → structured ``"failed"`` record).
* ``hang_profiles`` — sleep for ``hang_seconds`` (forces the per-run
  timeout path).
* ``nan_profiles`` — poison the finished ``RunResult`` with NaN IPC, which
  the sweep-level sanity validation must catch.
* ``corrupt_cache_writes`` — truncate and scramble every cache payload as
  it is written, which the cache's checksum must detect on read.
* ``scramble_topology`` — truncate every multi-hop interconnect route as
  topologies are built, which the invariant checker's route-table walk
  (``REPRO_CHECK_INVARIANTS``) must catch before any statistics are
  trusted.

The plan travels to worker processes through the ``REPRO_FAULT_PLAN``
environment variable (a JSON dict), so no live objects cross the process
boundary.  Use :func:`set_fault_plan` / :func:`clear_fault_plan` from
tests; production code never activates any of this — with no plan set,
every hook is a no-op costing one ``dict`` lookup.

Crashing is refused in the process that armed the plan (``main_pid``):
a ``crash_profiles`` entry executed in-process (``jobs=1``) degrades to a
raised :class:`FaultInjected` instead of killing the test runner.

This module also re-exports :class:`~repro.resilience.FaultSchedule` /
:class:`~repro.resilience.FaultEvent` — the *architectural* fault model
(cluster kills, link severs, functional-unit faults simulated inside the
machine) — so chaos tests can source both harness-level and
architecture-level fault vocabulary from one place.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import asdict, dataclass, field
from typing import Optional, Tuple

from .errors import FaultInjected
from .resilience import FaultEvent, FaultSchedule

__all__ = [
    "CRASH_EXIT_CODE",
    "FAULT_PLAN_ENV",
    "FaultEvent",
    "FaultPlan",
    "FaultSchedule",
    "active_plan",
    "clear_fault_plan",
    "set_fault_plan",
]

#: environment variable carrying the active plan as JSON
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

#: exit code used for injected worker crashes (distinctive in waitpid logs)
CRASH_EXIT_CODE = 113


@dataclass
class FaultPlan:
    """A declarative set of faults to inject (see module docstring)."""

    crash_profiles: Tuple[str, ...] = ()
    #: directory of token files; each crash consumes one (None = unlimited)
    crash_token_dir: Optional[str] = None
    fail_profiles: Tuple[str, ...] = ()
    hang_profiles: Tuple[str, ...] = ()
    hang_seconds: float = 3600.0
    nan_profiles: Tuple[str, ...] = ()
    corrupt_cache_writes: bool = False
    scramble_topology: bool = False
    #: pid of the process that armed the plan; crashes are refused there
    main_pid: int = field(default_factory=os.getpid)

    def to_json(self) -> str:
        return json.dumps(asdict(self))

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Strict parse of a ``REPRO_FAULT_PLAN`` payload.

        Unknown keys and wrong-typed fields raise :class:`ValueError`
        naming the offending key, so a typo in a chaos-test plan fails
        loudly at arm time instead of silently injecting nothing.
        (:func:`active_plan` still degrades a malformed *inherited*
        environment value to "no plan" — the harness must never be its
        own fault — but the error message reaches the test log.)
        """
        data = json.loads(text)
        if not isinstance(data, dict):
            raise ValueError(
                f"fault plan must be a JSON object, got {type(data).__name__}"
            )
        unknown = sorted(set(data) - set(_PLAN_FIELD_TYPES))
        if unknown:
            raise ValueError(f"unknown fault plan key {unknown[0]!r}")
        for key, (types, label) in _PLAN_FIELD_TYPES.items():
            if key not in data:
                continue
            value = data[key]
            if not isinstance(value, types) or isinstance(value, bool) != (
                types is bool
            ):
                raise ValueError(
                    f"fault plan key {key!r} must be {label}, got "
                    f"{type(value).__name__}"
                )
            if types is list:
                for item in value:
                    if not isinstance(item, str):
                        raise ValueError(
                            f"fault plan key {key!r} must be {label}, got "
                            f"a {type(item).__name__} element"
                        )
        for key in ("crash_profiles", "fail_profiles", "hang_profiles", "nan_profiles"):
            data[key] = tuple(data.get(key) or ())
        return cls(**data)


#: JSON field -> (accepted type(s) for isinstance, human-readable label);
#: list fields additionally require every element to be a string
_PLAN_FIELD_TYPES = {
    "crash_profiles": (list, "a list of profile names"),
    "crash_token_dir": ((str, type(None)), "a directory path or null"),
    "fail_profiles": (list, "a list of profile names"),
    "hang_profiles": (list, "a list of profile names"),
    "hang_seconds": ((int, float), "a number of seconds"),
    "nan_profiles": (list, "a list of profile names"),
    "corrupt_cache_writes": (bool, "a boolean"),
    "scramble_topology": (bool, "a boolean"),
    "main_pid": (int, "a process id"),
}


_ACTIVE: Optional[FaultPlan] = None


def set_fault_plan(plan: FaultPlan) -> None:
    """Arm ``plan`` in this process and (via the environment) in every
    worker process spawned afterwards."""
    global _ACTIVE
    _ACTIVE = plan
    os.environ[FAULT_PLAN_ENV] = plan.to_json()


def clear_fault_plan() -> None:
    global _ACTIVE
    _ACTIVE = None
    os.environ.pop(FAULT_PLAN_ENV, None)


def active_plan() -> Optional[FaultPlan]:
    """The armed plan, from this process or inherited via the environment.

    A malformed environment value deactivates injection rather than
    failing the sweep — the harness must never be its own fault.
    """
    if _ACTIVE is not None:
        return _ACTIVE
    text = os.environ.get(FAULT_PLAN_ENV)
    if not text:
        return None
    try:
        return FaultPlan.from_json(text)
    except (ValueError, TypeError):
        return None


def _consume_crash_token(directory: str) -> bool:
    """Atomically spend one crash token; False when the budget is gone."""
    try:
        names = sorted(os.listdir(directory))
    except OSError:
        return False
    for name in names:
        try:
            os.unlink(os.path.join(directory, name))
            return True
        except OSError:
            continue  # another worker spent it first
    return False


def on_execute(spec) -> None:
    """Called at the top of every ``execute_spec``; may crash, raise, hang."""
    plan = active_plan()
    if plan is None:
        return
    profile = spec.profile
    if profile in plan.crash_profiles:
        if os.getpid() == plan.main_pid:
            raise FaultInjected(
                f"injected crash for {profile!r} refused in the main process"
            )
        if plan.crash_token_dir is None or _consume_crash_token(plan.crash_token_dir):
            os._exit(CRASH_EXIT_CODE)
    if profile in plan.fail_profiles:
        raise FaultInjected(f"injected failure for profile {profile!r}")
    if profile in plan.hang_profiles:
        time.sleep(plan.hang_seconds)


def poison_record(record) -> None:
    """NaN-in-stats fault: corrupt the finished result's IPC in place."""
    plan = active_plan()
    if plan is None or record.result is None:
        return
    if record.spec.profile in plan.nan_profiles:
        record.result.ipc = float("nan")


def corrupt_cache_payload(data: bytes) -> bytes:
    """Bit-rot fault: truncate and scramble a cache payload being written."""
    plan = active_plan()
    if plan is None or not plan.corrupt_cache_writes:
        return data
    keep = max(1, len(data) // 2)
    return bytes(b ^ 0x5A for b in data[:keep])


def scrambled_topology(topology):
    """Miswiring fault: drop the last link of every multi-hop route.

    Called by ``build_topology`` on every topology it constructs.  With no
    plan armed this returns ``topology`` untouched; with
    ``scramble_topology`` set it shadows the instance's ``route`` so every
    multi-hop route ends one node short of its destination — exactly the
    corruption the invariant checker's route-table walk must report as a
    :class:`~repro.errors.SimulationError` (deterministic, no randomness).
    """
    plan = active_plan()
    if plan is None or not plan.scramble_topology:
        return topology
    real_route = topology.route

    def broken_route(src, dst):
        path = tuple(real_route(src, dst))
        return path[:-1] if len(path) >= 2 else path

    topology.route = broken_route
    return topology
