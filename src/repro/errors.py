"""Exception types for the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigError(ReproError):
    """An invalid configuration was supplied."""


class SimulationError(ReproError):
    """The simulator reached an inconsistent state (internal invariant)."""


class WorkloadError(ReproError):
    """A workload/trace could not be generated as requested."""
