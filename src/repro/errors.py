"""Exception types for the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigError(ReproError):
    """An invalid configuration was supplied."""


class SimulationError(ReproError):
    """The simulator reached an inconsistent state (internal invariant)."""


class WorkloadError(ReproError):
    """A workload/trace could not be generated as requested."""


class SweepError(ReproError, RuntimeError):
    """One or more runs of a sweep ended in a structured failure.

    ``records`` holds every :class:`~repro.experiments.sweep.RunRecord` of
    the sweep (successes included) so callers — the CLI in particular — can
    render a failure table instead of a bare traceback.
    """

    def __init__(self, message: str, records=()) -> None:
        super().__init__(message)
        self.records = list(records)

    @property
    def failures(self):
        return [r for r in self.records if not r.ok]


class BackendError(SweepError):
    """An execution backend could not start or lost its workers entirely.

    Distinct from a per-run failure: the *machinery* is unusable (no
    worker ever connected, an invalid lane list, a coordinator that died)
    rather than any particular spec being bad.
    """


class SweepInterrupted(ReproError):
    """A sweep was stopped by SIGINT/SIGTERM after draining in-flight work.

    ``completed`` holds the records that finished (and were journaled)
    before the stop — a resumed sweep picks up exactly after them.
    """

    def __init__(self, message: str, completed=()) -> None:
        super().__init__(message)
        self.completed = list(completed)


class UnreachableCluster(SimulationError):
    """No surviving route connects two clusters after link faults severed
    part of the interconnect.

    Raised at transfer time rather than silently inventing a latency: a
    partitioned fabric is an unsurvivable fault for this machine model
    (every cluster must reach the home cluster's front end and L2).
    """


class FaultInjected(ReproError):
    """An artificial failure raised by the fault-injection harness."""
