"""Simulation statistics.

Two layers:

* :class:`SimStats` — cumulative counters for one simulation run
  (instructions, cycles, communication, cache, predictor, reconfiguration).
* :class:`IntervalWindow` — the per-interval deltas the run-time controllers
  observe (committed instructions, branches, memory references, IPC,
  distant-ILP count), mirroring the hardware event counters the paper's
  software algorithm reads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List


@dataclass
class SimStats:
    """Cumulative statistics for a single simulation run."""

    cycles: int = 0
    committed: int = 0
    fetched: int = 0
    dispatched: int = 0
    issued: int = 0
    squashed: int = 0

    branches: int = 0
    mispredicts: int = 0
    memrefs: int = 0
    loads: int = 0
    stores: int = 0

    l1_hits: int = 0
    l1_misses: int = 0
    l2_hits: int = 0
    l2_misses: int = 0
    bank_conflict_cycles: int = 0

    # communication
    register_transfers: int = 0
    register_transfer_cycles: int = 0  # total latency incl. contention
    memory_transfers: int = 0
    memory_transfer_cycles: int = 0
    store_broadcasts: int = 0
    bank_predictions: int = 0
    bank_mispredictions: int = 0

    # distant ILP (instructions >= `distant_threshold` younger than ROB head
    # at issue, counted at commit)
    distant_commits: int = 0

    # reconfiguration
    reconfigurations: int = 0
    cache_flushes: int = 0
    flush_writebacks: int = 0
    flush_stall_cycles: int = 0
    cluster_cycle_product: int = 0  # sum over cycles of active cluster count

    # multiprogrammed arbitration (repro.multiprog): allocation churn and
    # the owned-cluster integral; zero for single-threaded runs
    arb_grants: int = 0
    arb_reclaims: int = 0
    owned_cluster_cycles: int = 0  # sum over cycles of owned cluster count

    # architectural faults (repro.resilience): injected events, degraded
    # operation, and recovery latency; zero for healthy runs
    faults_injected: int = 0
    cluster_kills: int = 0
    links_severed: int = 0
    links_degraded: int = 0
    fu_faults: int = 0
    degraded_cycles: int = 0  # cycles with >= 1 dead cluster or hurt link
    recovery_cycles: int = 0  # total kill-to-remap-done latency

    @property
    def ipc(self) -> float:
        return self.committed / self.cycles if self.cycles else 0.0

    @property
    def mispredict_interval(self) -> float:
        """Committed instructions per branch misprediction (Table 3)."""
        if self.mispredicts == 0:
            return float("inf")
        return self.committed / self.mispredicts

    @property
    def branch_accuracy(self) -> float:
        if self.branches == 0:
            return 1.0
        return 1.0 - self.mispredicts / self.branches

    @property
    def l1_hit_rate(self) -> float:
        total = self.l1_hits + self.l1_misses
        return self.l1_hits / total if total else 1.0

    @property
    def avg_register_transfer_latency(self) -> float:
        if self.register_transfers == 0:
            return 0.0
        return self.register_transfer_cycles / self.register_transfers

    @property
    def avg_active_clusters(self) -> float:
        if self.cycles == 0:
            return 0.0
        return self.cluster_cycle_product / self.cycles

    @property
    def bank_prediction_accuracy(self) -> float:
        if self.bank_predictions == 0:
            return 1.0
        return 1.0 - self.bank_mispredictions / self.bank_predictions

    @property
    def avg_owned_clusters(self) -> float:
        """Mean clusters owned per cycle under a multiprog arbiter."""
        if self.cycles == 0:
            return 0.0
        return self.owned_cluster_cycles / self.cycles

    def merge(self, other: "SimStats") -> "SimStats":
        """Accumulate ``other``'s counters into this object (in place).

        Every field of :class:`SimStats` is an additive counter, so merging
        per-run statistics yields exactly the statistics of the combined
        workload — this is what lets a parallel sweep aggregate its shards
        into one report.  Returns ``self`` for chaining.

        Each field is merged explicitly (rather than reflecting over
        ``dataclasses.fields``) so the S301 static-analysis rule can prove
        that no counter is dropped during aggregation: adding a field
        without extending this method fails lint (and the test suite
        cross-checks the enumeration against ``dataclasses.fields``).
        """
        self.cycles += other.cycles
        self.committed += other.committed
        self.fetched += other.fetched
        self.dispatched += other.dispatched
        self.issued += other.issued
        self.squashed += other.squashed
        self.branches += other.branches
        self.mispredicts += other.mispredicts
        self.memrefs += other.memrefs
        self.loads += other.loads
        self.stores += other.stores
        self.l1_hits += other.l1_hits
        self.l1_misses += other.l1_misses
        self.l2_hits += other.l2_hits
        self.l2_misses += other.l2_misses
        self.bank_conflict_cycles += other.bank_conflict_cycles
        self.register_transfers += other.register_transfers
        self.register_transfer_cycles += other.register_transfer_cycles
        self.memory_transfers += other.memory_transfers
        self.memory_transfer_cycles += other.memory_transfer_cycles
        self.store_broadcasts += other.store_broadcasts
        self.bank_predictions += other.bank_predictions
        self.bank_mispredictions += other.bank_mispredictions
        self.distant_commits += other.distant_commits
        self.reconfigurations += other.reconfigurations
        self.cache_flushes += other.cache_flushes
        self.flush_writebacks += other.flush_writebacks
        self.flush_stall_cycles += other.flush_stall_cycles
        self.cluster_cycle_product += other.cluster_cycle_product
        self.arb_grants += other.arb_grants
        self.arb_reclaims += other.arb_reclaims
        self.owned_cluster_cycles += other.owned_cluster_cycles
        self.faults_injected += other.faults_injected
        self.cluster_kills += other.cluster_kills
        self.links_severed += other.links_severed
        self.links_degraded += other.links_degraded
        self.fu_faults += other.fu_faults
        self.degraded_cycles += other.degraded_cycles
        self.recovery_cycles += other.recovery_cycles
        return self

    @classmethod
    def merged(cls, runs: Iterable["SimStats"]) -> "SimStats":
        """A fresh :class:`SimStats` holding the sum of ``runs``."""
        total = cls()
        for run in runs:
            total.merge(run)
        return total

    def snapshot(self) -> Dict[str, float]:
        """A plain-dict copy of the headline numbers, for reporting."""
        return {
            "cycles": self.cycles,
            "committed": self.committed,
            "ipc": self.ipc,
            "branch_accuracy": self.branch_accuracy,
            "mispredict_interval": self.mispredict_interval,
            "l1_hit_rate": self.l1_hit_rate,
            "avg_register_transfer_latency": self.avg_register_transfer_latency,
            "avg_active_clusters": self.avg_active_clusters,
            "reconfigurations": self.reconfigurations,
            "cache_flushes": self.cache_flushes,
        }


@dataclass
class IntervalWindow:
    """Deltas of the controller-visible counters over one interval.

    The paper's run-time algorithm reads hardware event counters every
    ``interval_length`` committed instructions; this class is that view.
    """

    committed: int = 0
    cycles: int = 0
    branches: int = 0
    memrefs: int = 0
    distant_commits: int = 0

    @property
    def ipc(self) -> float:
        return self.committed / self.cycles if self.cycles else 0.0


class IntervalTracker:
    """Derives :class:`IntervalWindow` deltas from cumulative `SimStats`."""

    def __init__(self, stats: SimStats) -> None:
        self._stats = stats
        self._last_committed = stats.committed
        self._last_cycles = stats.cycles
        self._last_branches = stats.branches
        self._last_memrefs = stats.memrefs
        self._last_distant = stats.distant_commits

    def since_last(self) -> IntervalWindow:
        """The window since the previous call (or construction)."""
        s = self._stats
        window = IntervalWindow(
            committed=s.committed - self._last_committed,
            cycles=s.cycles - self._last_cycles,
            branches=s.branches - self._last_branches,
            memrefs=s.memrefs - self._last_memrefs,
            distant_commits=s.distant_commits - self._last_distant,
        )
        self._last_committed = s.committed
        self._last_cycles = s.cycles
        self._last_branches = s.branches
        self._last_memrefs = s.memrefs
        self._last_distant = s.distant_commits
        return window

    def committed_since_last(self) -> int:
        return self._stats.committed - self._last_committed


@dataclass
class IntervalRecord:
    """One interval of a recorded trace of program behaviour.

    Used by the Table 4 instability analysis, which replays per-interval
    statistics offline (the paper gathered these traces at 10K-instruction
    granularity over billions of instructions).
    """

    committed: int
    cycles: int
    branches: int
    memrefs: int

    @property
    def ipc(self) -> float:
        return self.committed / self.cycles if self.cycles else 0.0


def merge_records(records: List[IntervalRecord], factor: int) -> List[IntervalRecord]:
    """Coalesce consecutive interval records by ``factor``.

    Lets a single fine-grained recording be reanalysed at coarser interval
    lengths without rerunning the simulator.
    """
    if factor < 1:
        raise ValueError("factor must be >= 1")
    merged: List[IntervalRecord] = []
    for i in range(0, len(records) - factor + 1, factor):
        chunk = records[i : i + factor]
        merged.append(
            IntervalRecord(
                committed=sum(r.committed for r in chunk),
                cycles=sum(r.cycles for r in chunk),
                branches=sum(r.branches for r in chunk),
                memrefs=sum(r.memrefs for r in chunk),
            )
        )
    return merged
