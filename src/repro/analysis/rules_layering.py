"""L-rules: layering.

The architecture is a one-directional stack::

    errors, timing, _version                     (0)
    stats, config, resilience, observability     (1)
    workloads, energy, faults                    (2)
    frontend, clusters, interconnect             (3)
    memory                                       (4)
    pipeline                                     (5)
    core                                         (6)
    experiments                                  (7)
    api, partition                               (8)
    cli, analysis                                (9)
    __init__, __main__                           (10)

A module may import strictly *down* the stack (lower rank).  Sibling
modules at the same rank are independent by design (the four rank-3
hardware-model packages know nothing of each other), so same-rank
cross-imports are back-edges too.  Function-local (lazy) imports count:
laziness changes *when* a cycle bites, not whether the layering holds.

L202 separately bans the three retired pre-facade call spellings inside
the repo now that :mod:`repro.api` is the stable surface — both *calling*
them and *reintroducing* the ``*args`` compatibility shims that once
serviced them.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional

from .context import FileContext, ProjectContext
from .findings import Finding
from .registry import Rule, register_rule

#: top-level component of ``repro`` -> layer rank (lower = more fundamental)
LAYER_RANKS: Dict[str, int] = {
    "errors": 0,
    "timing": 0,
    "stats": 1,
    "config": 1,
    # architectural fault schedules (value objects the pipeline, multiprog
    # scheduler, and sweep engine all consume; imports only errors)
    "resilience": 1,
    # the chaos-harness fault plan re-exports the resilience schedule as a
    # convenience, so it sits one rank above it
    "faults": 2,
    # tracing sinks/exporters: a leaf the simulator stack emits into
    # (pipeline and core both import it, so it must sit below rank 5)
    "observability": 1,
    "workloads": 2,
    "energy": 2,
    "frontend": 3,
    "clusters": 3,
    "interconnect": 3,
    # memory sits above interconnect: the decentralized cache routes bank
    # transfers over the cluster network (hierarchy.py imports Network)
    "memory": 4,
    "pipeline": 5,
    # the fused/batched execution engine wraps whole processors; it knows
    # nothing of specs or sweeps (the batch *backend* lives in experiments)
    "batch": 6,
    "core": 6,
    "multiprog": 6,
    "experiments": 7,
    "api": 8,
    "partition": 8,
    "cli": 9,
    "analysis": 9,
    "_version": 0,
    "__init__": 10,
    "__main__": 10,
}


def _head_of(dotted: str) -> Optional[str]:
    """Top-level ``repro`` component of an absolute dotted import target."""
    parts = dotted.split(".")
    if parts[0] != "repro":
        return None
    return parts[1] if len(parts) > 1 else "__init__"


@register_rule
class LayeringRule(Rule):
    """L201: import against the layering (up-stack or cross-sibling)."""

    RULE_ID = "L201"
    RULE_DOC = (
        "layering violation: a repro module may only import strictly "
        "lower-ranked repro modules"
    )
    scope = "project"

    def check(self, project: ProjectContext) -> Iterator[Finding]:
        for ctx in project.repro_files():
            head = ctx.module_head
            rank = LAYER_RANKS.get(head)
            if rank is None or head in ("__init__", "__main__"):
                # package root re-exports everything by design
                continue
            for edge in ctx.imports:
                target_head = _head_of(edge.target)
                if target_head is None or target_head == head:
                    continue
                target_rank = LAYER_RANKS.get(target_head)
                if target_rank is None:
                    yield Finding(
                        ctx.display_path, edge.lineno, edge.col, self.RULE_ID,
                        f"import of unknown repro component "
                        f"repro.{target_head}; add it to the layer map in "
                        f"repro.analysis.rules_layering",
                    )
                elif target_rank >= rank:
                    direction = (
                        "up-stack" if target_rank > rank else "cross-sibling"
                    )
                    yield Finding(
                        ctx.display_path, edge.lineno, edge.col, self.RULE_ID,
                        f"{direction} import: repro.{head} (layer {rank}) "
                        f"imports repro.{target_head} (layer {target_rank})",
                        detail={
                            "importer": ctx.module,
                            "imported": edge.target,
                        },
                    )


#: the retired pre-facade spellings: callable origin -> maximum number
#: of positional arguments the keyword-era signature accepts
_LEGACY_POSITIONAL_LIMITS = {
    # engine entry point: simulate(trace, config, *, controller=, ...)
    "repro.pipeline.processor.simulate": 2,
    # runner entry point: run_trace(trace, config, controller=None, *, ...)
    "repro.experiments.runner.run_trace": 3,
    # facade: simulate(workload, **spec-kwargs); positional config/controller
    # selected the removed SimStats-returning shim
    "repro.api.simulate": 1,
    "repro.simulate": 1,
}

#: entry-point definitions whose signatures must stay shim-free:
#: module -> function names that may not grow a ``*args`` vararg back
_SHIM_FREE_ENTRY_POINTS = {
    "repro.pipeline.processor": frozenset({"simulate"}),
    "repro.experiments.runner": frozenset({"run_trace"}),
    "repro.api": frozenset({"simulate"}),
}


@register_rule
class LegacyEntryPointRule(Rule):
    """L202: retired pre-facade call spellings.

    The three legacy entry-point spellings (positional
    ``config``/``controller``/``warmup`` arguments to ``api.simulate``,
    ``pipeline.processor.simulate`` and ``experiments.runner.run_trace``)
    went through a :class:`DeprecationWarning` cycle and were then removed.
    The rule keeps them dead in both directions: no repo-internal *call*
    may use the positional spelling, and the entry-point *definitions*
    themselves may not grow back the ``*args`` remap shim that once
    serviced external callers.
    """

    RULE_ID = "L202"
    RULE_DOC = (
        "retired pre-facade entry-point spelling: positional call or "
        "reintroduced *args compatibility shim"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        guarded = _SHIM_FREE_ENTRY_POINTS.get(ctx.module, frozenset())
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node.name in guarded
                and node.args.vararg is not None
            ):
                yield self.finding(
                    ctx, node,
                    f"entry point {ctx.module}.{node.name} grew back a "
                    f"*{node.args.vararg.arg} vararg; the positional-shim "
                    f"era is over — keep the keyword-only signature",
                    callee=f"{ctx.module}.{node.name}",
                    vararg=node.args.vararg.arg,
                )
                continue
            if not isinstance(node, ast.Call):
                continue
            dotted = ctx.resolve_name(node.func)
            if dotted is None:
                continue
            limit = _LEGACY_POSITIONAL_LIMITS.get(dotted)
            if limit is None:
                continue
            positional = [a for a in node.args if not isinstance(a, ast.Starred)]
            if len(node.args) > len(positional):
                continue  # *args splat: cannot judge statically
            if len(positional) > limit:
                yield self.finding(
                    ctx, node,
                    f"retired positional spelling of {dotted} "
                    f"({len(positional)} positional args; keyword-era "
                    f"signature takes {limit})",
                    callee=dotted,
                    positional=len(positional),
                )
