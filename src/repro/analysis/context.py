"""Parsed views of the files under analysis.

:class:`FileContext` is one parsed source file: AST, source lines,
resolved dotted module name (when the file sits inside the ``repro``
package), per-line suppressions, and the file's import map (local name ->
dotted origin) so rules can resolve what ``simulate`` refers to.

:class:`ProjectContext` is the whole run: every file context plus the
intra-``repro`` import graph and the facade vocabulary extracted from
``repro/api.py`` / ``repro/workloads/profiles.py``.
"""

from __future__ import annotations

import ast
import pathlib
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

#: ``# repro: allow[D101]`` or ``# repro: allow[D101,S302]`` or bare
#: ``# repro: allow`` (suppresses every rule on that line); an optional
#: ``-- reason`` trailer documents why.
_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*allow(?:\[(?P<rules>[A-Z0-9,\s]*)\])?(?:\s*--.*)?"
)

PACKAGE_NAME = "repro"


def module_name_for(path: pathlib.Path) -> Optional[str]:
    """Dotted module name if ``path`` lies inside a ``repro`` package.

    Walks up from the file while ``__init__.py`` siblings exist; returns
    e.g. ``repro.clusters.steering`` or ``None`` for loose scripts
    (benchmarks, examples).  Works on any tree that contains a directory
    literally named ``repro`` with an ``__init__.py`` — which is what lets
    the test suite analyse synthetic package fixtures.
    """
    path = path.resolve()
    parts = [path.stem] if path.name != "__init__.py" else []
    current = path.parent
    while (current / "__init__.py").exists():
        parts.insert(0, current.name)
        if current.name == PACKAGE_NAME:
            return ".".join(parts)
        current = current.parent
    return None


@dataclass
class ImportEdge:
    """One import statement resolved to an absolute dotted target."""

    target: str  #: absolute dotted module/attribute path imported
    lineno: int
    col: int
    #: local name the import binds (for resolving later call sites)
    local_name: str = ""


@dataclass
class FileContext:
    """One parsed source file and everything rules need to know about it."""

    path: pathlib.Path
    display_path: str
    source: str
    tree: ast.AST
    module: Optional[str] = None
    #: line -> set of suppressed rule ids ("*" means all)
    suppressions: Dict[int, Set[str]] = field(default_factory=dict)
    #: resolved import edges (absolute dotted targets)
    imports: List[ImportEdge] = field(default_factory=list)
    #: local binding -> absolute dotted origin (``simulate`` ->
    #: ``repro.api.simulate``; ``np`` -> ``numpy``)
    import_map: Dict[str, str] = field(default_factory=dict)
    #: memoized :class:`repro.analysis.dataflow.ModuleDataflow` (built
    #: lazily by :func:`repro.analysis.dataflow.module_dataflow` so the
    #: C/P/K rule packs share one def-use build per file; typed loosely
    #: to keep this module import-light)
    dataflow_cache: Optional[object] = field(
        default=None, repr=False, compare=False
    )

    @property
    def module_head(self) -> Optional[str]:
        """First component under ``repro`` (``repro.core.phase`` -> ``core``;
        ``repro`` itself -> ``__init__``)."""
        if self.module is None:
            return None
        parts = self.module.split(".")
        return parts[1] if len(parts) > 1 else "__init__"

    def is_suppressed(self, line: int, rule_id: str) -> bool:
        rules = self.suppressions.get(line)
        if not rules:
            return False
        return "*" in rules or rule_id in rules

    def resolve_name(self, node: ast.AST) -> Optional[str]:
        """Absolute dotted path of a Name/Attribute expression, if known.

        ``random.random`` -> ``random.random`` (module import),
        ``np.random.rand`` -> ``numpy.random.rand``,
        ``simulate`` -> ``repro.api.simulate`` (from-import).
        """
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.insert(0, node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        origin = self.import_map.get(node.id)
        if origin is None:
            return None
        return ".".join([origin] + parts)


def parse_suppressions(source: str) -> Dict[int, Set[str]]:
    """Per-line suppression table from ``# repro: allow[...]`` comments."""
    table: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        if "#" not in line or "repro:" not in line:
            continue
        match = _SUPPRESS_RE.search(line)
        if not match:
            continue
        rules = match.group("rules")
        if rules is None:
            table[lineno] = {"*"}
        else:
            ids = {r.strip() for r in rules.split(",") if r.strip()}
            table[lineno] = ids or {"*"}
    return table


def _resolve_relative(
    module: Optional[str], node: ast.ImportFrom, is_package: bool
) -> Optional[str]:
    """Absolute dotted base for a (possibly relative) ``from`` import."""
    if node.level == 0:
        return node.module
    if module is None:
        return None  # relative import in a loose script: unresolvable
    # Level 1 resolves against the containing package: for a plain module
    # that is module-minus-stem; an ``__init__.py`` *is* its package.
    parts = module.split(".")
    anchor = parts if is_package else parts[:-1]
    drop = node.level - 1
    if drop > len(anchor):
        return None
    base = anchor[: len(anchor) - drop]
    if node.module:
        base = base + node.module.split(".")
    return ".".join(base) if base else None


def extract_imports(
    tree: ast.AST, module: Optional[str], is_package: bool = False
) -> Tuple[List[ImportEdge], Dict[str, str]]:
    """All import edges (absolute targets) plus the local binding map."""
    edges: List[ImportEdge] = []
    bindings: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                edges.append(
                    ImportEdge(alias.name, node.lineno, node.col_offset, local)
                )
                bindings[local] = target
        elif isinstance(node, ast.ImportFrom):
            base = _resolve_relative(module, node, is_package)
            if base is None:
                continue
            for alias in node.names:
                target = f"{base}.{alias.name}" if alias.name != "*" else base
                local = alias.asname or alias.name
                edges.append(
                    ImportEdge(target, node.lineno, node.col_offset, local)
                )
                if alias.name != "*":
                    bindings[local] = target
    return edges, bindings


def build_file_context(
    path: pathlib.Path, display_path: str
) -> "FileContext":
    """Parse one file into a :class:`FileContext`.

    Raises ``SyntaxError`` — the runner converts that into a finding so a
    file that cannot parse fails the lint instead of silently passing.
    """
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    module = module_name_for(path)
    edges, bindings = extract_imports(
        tree, module, is_package=path.name == "__init__.py"
    )
    return FileContext(
        path=path,
        display_path=display_path,
        source=source,
        tree=tree,
        module=module,
        suppressions=parse_suppressions(source),
        imports=edges,
        import_map=bindings,
    )


@dataclass
class ProjectContext:
    """The whole analysed file set plus cross-file derived data."""

    files: List[FileContext]
    #: facade vocabulary (None when repro/api.py is not locatable)
    vocabulary: Optional["Vocabulary"] = None

    def repro_files(self) -> List[FileContext]:
        return [f for f in self.files if f.module is not None]

    def find_module(self, dotted: str) -> Optional[FileContext]:
        for f in self.files:
            if f.module == dotted:
                return f
        return None


@dataclass
class Vocabulary:
    """The ``repro.api`` keyword vocabulary, extracted statically."""

    simspec_fields: Set[str] = field(default_factory=set)
    sweep_keywords: Set[str] = field(default_factory=set)
    topologies: Set[str] = field(default_factory=set)
    policies: Set[str] = field(default_factory=set)
    workloads: Set[str] = field(default_factory=set)
