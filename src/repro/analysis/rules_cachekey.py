"""K-rules: cache-key completeness for the content-addressed result cache.

``RunSpec.cache_key()`` is the identity of a simulation result: any
*semantic* spec field missing from it makes two different runs share one
cache entry — every per-run number right, every cached exhibit silently
wrong (the same bug class S301 proves away for stats merging).  The key
is hand-maintained, so these rules prove, statically:

* **K601** — every ``RunSpec`` field either appears as ``self.<field>``
  inside ``cache_key`` or is declared non-semantic in the in-source
  ``CACHE_KEY_EXEMPT`` allowlist; the allowlist carries no stale or
  contradictory entries; and every class reaching the key through
  ``{...!r}`` interpolation is a dataclass (a non-dataclass without its
  own ``__repr__`` would interpolate its memory address — a key that
  never matches), with ``field(repr=False)`` as the explicit per-field
  opt-out.  Because a dataclass repr includes every repr-enabled field,
  this transitively proves ``MultiProgSpec``, ``FaultSchedule``,
  ``ProcessorConfig`` (and friends) flow into the key field-by-field.
* **K602** — every ``SimSpec`` field flows into ``to_run_spec`` (read
  directly or through a ``self``-helper the dataflow layer follows), and
  every ``SweepConfig`` field is either named in the exempt list (the
  execution-policy knobs that must *never* change results) or shadows a
  key-covered ``RunSpec`` field.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .context import FileContext, ProjectContext
from .dataflow import module_dataflow
from .findings import Finding
from .registry import Rule, register_rule
from .rules_wire import (
    class_fields,
    field_has_flag,
    find_constant,
    is_dataclass,
    resolve_annotation_classes,
    resolve_class,
)

#: the module that owns RunSpec, cache_key and the exemption allowlist
SWEEP_MODULE = "repro.experiments.sweep"
API_MODULE = "repro.api"


def _exemptions(ctx: FileContext) -> Dict[str, Tuple[ast.AST, Set[str]]]:
    """``CACHE_KEY_EXEMPT`` parsed: class name -> (node, field names)."""
    decl = find_constant(ctx, "CACHE_KEY_EXEMPT")
    out: Dict[str, Tuple[ast.AST, Set[str]]] = {}
    value = getattr(decl, "value", None)
    if not isinstance(value, ast.Dict):
        return out
    for key, val in zip(value.keys, value.values):
        if not (isinstance(key, ast.Constant) and isinstance(key.value, str)):
            continue
        names: Set[str] = set()
        if isinstance(val, (ast.Tuple, ast.List, ast.Set)):
            names = {
                e.value for e in val.elts
                if isinstance(e, ast.Constant) and isinstance(e.value, str)
            }
        out[key.value] = (key, names)
    return out


def _find_class(ctx: FileContext, name: str) -> Optional[ast.ClassDef]:
    for node in ast.iter_child_nodes(ctx.tree):
        if isinstance(node, ast.ClassDef) and node.name == name:
            return node
    return None


def _find_method(cls: ast.ClassDef, name: str) -> Optional[ast.AST]:
    for stmt in cls.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)) and (
            stmt.name == name
        ):
            return stmt
    return None


@register_rule
class CacheKeyCompletenessRule(Rule):
    """K601: RunSpec.cache_key covers every field; reprs are stable."""

    RULE_ID = "K601"
    RULE_DOC = (
        "RunSpec field missing from cache_key() (and not declared "
        "non-semantic), or a key-reachable type with an unstable repr"
    )
    scope = "project"

    def check(self, project: ProjectContext) -> Iterator[Finding]:
        ctx = project.find_module(SWEEP_MODULE)
        if ctx is None:
            return
        cls = _find_class(ctx, "RunSpec")
        if cls is None:
            return
        fields = class_fields(cls)
        method = _find_method(cls, "cache_key")
        if method is None:
            yield self.finding(
                ctx, cls,
                "RunSpec has no cache_key method; the result cache "
                "cannot address its entries",
            )
            return
        flow = module_dataflow(ctx)
        covered = flow.attr_reads("RunSpec.cache_key")
        exempt_table = _exemptions(ctx)
        exempt_node, exempt = exempt_table.get("RunSpec", (None, set()))
        for name, decl in fields.items():
            if name in covered or name in exempt:
                continue
            yield self.finding(
                ctx, decl,
                f"RunSpec.{name} does not flow into cache_key() and is "
                "not declared in CACHE_KEY_EXEMPT['RunSpec']; two runs "
                "differing only in it would share a cache entry",
                field=name,
            )
        for name in sorted(exempt):
            if name not in fields:
                yield self.finding(
                    ctx, exempt_node or cls,
                    f"CACHE_KEY_EXEMPT['RunSpec'] names {name!r} but "
                    "RunSpec has no such field; remove the stale entry",
                    field=name,
                )
            elif name in covered:
                yield self.finding(
                    ctx, exempt_node or cls,
                    f"CACHE_KEY_EXEMPT['RunSpec'] declares {name!r} "
                    "non-semantic but cache_key() reads it; the "
                    "allowlist contradicts the code",
                    field=name,
                )
        yield from self._check_repr_stability(
            project, ctx, cls, fields, covered
        )

    def _check_repr_stability(self, project, ctx, cls, fields,
                              covered) -> Iterator[Finding]:
        """Every class reaching the key via ``!r`` must repr by value."""
        seen: Set[str] = set()
        queue: List[Tuple[str, str]] = []  # (dotted, via-field)
        for name in sorted(covered):
            decl = fields.get(name)
            if decl is None:
                continue
            classes, problems = resolve_annotation_classes(
                project, ctx, decl.annotation
            )
            queue.extend((dotted, name) for dotted in classes)
            for problem in problems:
                yield self.finding(
                    ctx, decl,
                    f"RunSpec.{name} reaches the cache key but its "
                    f"annotation is not statically checkable: {problem}",
                    field=name,
                )
        while queue:
            dotted, via = queue.pop(0)
            if dotted in seen:
                continue
            seen.add(dotted)
            resolved = resolve_class(project, dotted)
            if resolved is None:
                continue  # P502 reports unresolvable wire types already
            sub_ctx, sub_cls = resolved
            if not is_dataclass(sub_cls):
                if _find_method(sub_cls, "__repr__") is None:
                    yield self.finding(
                        sub_ctx, sub_cls,
                        f"{dotted} reaches the cache key via "
                        f"RunSpec.{via}!r but is not a dataclass and "
                        "defines no __repr__; the default repr embeds a "
                        "memory address, so the key would never match",
                        type=dotted,
                        via=via,
                    )
                continue
            for name, decl in class_fields(sub_cls).items():
                if field_has_flag(decl, "repr"):
                    continue  # field(repr=False): the explicit opt-out
                classes, problems = resolve_annotation_classes(
                    project, sub_ctx, decl.annotation
                )
                queue.extend((child, via) for child in classes)
                for problem in problems:
                    yield self.finding(
                        sub_ctx, decl,
                        f"{dotted}.{name} reaches the cache key via "
                        f"RunSpec.{via}!r but is not statically "
                        f"checkable: {problem}",
                        type=dotted,
                        field=name,
                    )


@register_rule
class SpecFlowRule(Rule):
    """K602: SimSpec flows into to_run_spec; SweepConfig is accounted for."""

    RULE_ID = "K602"
    RULE_DOC = (
        "SimSpec field not flowing into to_run_spec(), or SweepConfig "
        "field neither exempt nor shadowing a key-covered field"
    )
    scope = "project"

    def check(self, project: ProjectContext) -> Iterator[Finding]:
        sweep_ctx = project.find_module(SWEEP_MODULE)
        exempt_table = _exemptions(sweep_ctx) if sweep_ctx else {}
        yield from self._check_simspec(project, exempt_table)
        if sweep_ctx is not None:
            yield from self._check_sweep_config(sweep_ctx, exempt_table)

    def _check_simspec(self, project, exempt_table) -> Iterator[Finding]:
        ctx = project.find_module(API_MODULE)
        if ctx is None:
            return
        cls = _find_class(ctx, "SimSpec")
        if cls is None:
            return
        fields = class_fields(cls)
        if _find_method(cls, "to_run_spec") is None:
            yield self.finding(
                ctx, cls,
                "SimSpec has no to_run_spec method; facade sweeps cannot "
                "reach the cache at all",
            )
            return
        flow = module_dataflow(ctx)
        covered = flow.attr_reads_transitive("SimSpec", "to_run_spec")
        _, exempt = exempt_table.get("SimSpec", (None, set()))
        for name, decl in fields.items():
            if name in covered or name in exempt:
                continue
            yield self.finding(
                ctx, decl,
                f"SimSpec.{name} never flows into to_run_spec() (not "
                "even through a self-helper); sweeps would ignore it "
                "and the cache would conflate runs that differ in it",
                field=name,
            )

    def _check_sweep_config(self, ctx, exempt_table) -> Iterator[Finding]:
        cls = _find_class(ctx, "SweepConfig")
        if cls is None:
            return
        fields = class_fields(cls)
        flow = module_dataflow(ctx)
        key_covered = flow.attr_reads("RunSpec.cache_key")
        exempt_node, exempt = exempt_table.get("SweepConfig", (None, set()))
        for name, decl in fields.items():
            if name in exempt or name in key_covered:
                continue
            yield self.finding(
                ctx, decl,
                f"SweepConfig.{name} is neither declared non-semantic in "
                "CACHE_KEY_EXEMPT['SweepConfig'] nor covered by "
                "cache_key(); decide which before it ships",
                field=name,
            )
        for name in sorted(exempt):
            if name not in fields:
                yield self.finding(
                    ctx, exempt_node or cls,
                    f"CACHE_KEY_EXEMPT['SweepConfig'] names {name!r} but "
                    "SweepConfig has no such field; remove the stale "
                    "entry",
                    field=name,
                )
