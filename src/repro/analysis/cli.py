"""``python -m repro.analysis`` — the lint front end.

Exit codes: 0 clean (or everything baselined/suppressed), 1 new findings,
2 usage or internal error.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from collections import Counter
from typing import List, Optional

from .baseline import (
    DEFAULT_BASELINE_NAME,
    load_baseline,
    split_by_baseline,
    stale_entries,
    write_baseline,
)
from .gitdiff import GitError, changed_python_files, resolve_default_base
from .registry import all_rules
from .runner import analyze_paths
from .sarif import to_sarif

_DEFAULT_PATHS = ("src", "benchmarks", "examples")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "Static analysis enforcing the reproduction's determinism (D), "
            "layering (L), and stats-conservation (S) invariants."
        ),
    )
    parser.add_argument(
        "paths", nargs="*",
        help=f"files or directories to analyse (default: "
             f"{' '.join(_DEFAULT_PATHS)}, those that exist)",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="output format (default: text; sarif for code-scanning upload)",
    )
    parser.add_argument(
        "--changed", action="store_true",
        help="lint only .py files changed vs --base (committed, staged, "
             "and untracked), intersected with the analysed paths; "
             "project-scope rules only fire if their anchor module changed",
    )
    parser.add_argument(
        "--base", default=None, metavar="REF",
        help="git ref --changed diffs against (default: origin/main when "
             "it resolves, else main)",
    )
    parser.add_argument(
        "--select", action="append", default=[], metavar="RULES",
        help="comma-separated rule ids or family prefixes to run (e.g. "
             "D101,S or L)",
    )
    parser.add_argument(
        "--ignore", action="append", default=[], metavar="RULES",
        help="comma-separated rule ids or family prefixes to skip",
    )
    parser.add_argument(
        "--baseline", type=pathlib.Path, default=None, metavar="FILE",
        help=f"baseline file to subtract (default: ./{DEFAULT_BASELINE_NAME} "
             f"when present)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline file",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="write the current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--root", type=pathlib.Path, default=None,
        help="directory findings paths are reported relative to "
             "(default: cwd)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--show-suppressed", action="store_true",
        help="also list findings silenced by # repro: allow comments",
    )
    return parser


def _split_csv(values: List[str]) -> List[str]:
    out: List[str] = []
    for value in values:
        out.extend(v.strip() for v in value.split(",") if v.strip())
    return out


def _resolve_paths(args_paths: List[str]) -> List[pathlib.Path]:
    if args_paths:
        return [pathlib.Path(p) for p in args_paths]
    return [pathlib.Path(p) for p in _DEFAULT_PATHS if pathlib.Path(p).exists()]


def _changed_subset(
    paths: List[pathlib.Path], base: Optional[str]
) -> List[pathlib.Path]:
    """The changed .py files that live under the requested ``paths``.

    An empty result is not an error: the run proceeds with zero files and
    exits 0, which is exactly the fast no-op a docs-only PR wants.
    """
    if base is None:
        base = resolve_default_base()
    roots = [p.resolve() for p in paths]
    subset: List[pathlib.Path] = []
    for changed in changed_python_files(base=base):
        resolved = changed.resolve()
        for root in roots:
            if resolved == root or root in resolved.parents:
                subset.append(changed)
                break
    return subset


def main(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.RULE_ID}  [{rule.scope:7s}] {rule.RULE_DOC}")
        return 0

    paths = _resolve_paths(args.paths)
    if not paths:
        parser.error("no paths given and none of the defaults exist")
    missing = [p for p in paths if not p.exists()]
    if missing:
        parser.error(f"no such path: {', '.join(map(str, missing))}")

    if args.base is not None and not args.changed:
        parser.error("--base only makes sense with --changed")
    focus = None
    if args.changed:
        try:
            focus = _changed_subset(paths, args.base)
        except GitError as exc:
            print(f"error: --changed: {exc}", file=sys.stderr)
            return 2

    result = analyze_paths(
        paths,
        root=args.root,
        select=_split_csv(args.select),
        ignore=_split_csv(args.ignore),
        focus=focus,
    )

    baseline_path = args.baseline or pathlib.Path(DEFAULT_BASELINE_NAME)
    if args.write_baseline:
        write_baseline(baseline_path, result.findings)
        print(
            f"wrote {len(result.findings)} finding(s) to {baseline_path}",
            file=sys.stderr,
        )
        return 0

    baseline = Counter()
    if not args.no_baseline and baseline_path.exists():
        try:
            baseline = load_baseline(baseline_path)
        except (ValueError, KeyError, json.JSONDecodeError) as exc:
            print(f"error: bad baseline {baseline_path}: {exc}", file=sys.stderr)
            return 2

    new, baselined = split_by_baseline(result.findings, baseline)
    stale = stale_entries(result.findings, baseline)

    if args.format == "sarif":
        print(json.dumps(to_sarif(new), indent=2))
    elif args.format == "json":
        payload = {
            "version": 1,
            "files_scanned": result.files_scanned,
            "findings": [f.to_json() for f in new],
            "baselined": len(baselined),
            "suppressed": [f.to_json() for f in result.suppressed],
            "stale_baseline_entries": [
                {"rule": rule, "path": path, "message": message, "count": count}
                for (rule, path, message), count in sorted(stale.items())
            ],
            "counts": dict(Counter(f.rule for f in new)),
            "ok": not new,
        }
        print(json.dumps(payload, indent=2))
    else:
        for finding in new:
            print(finding.render())
        if args.show_suppressed and result.suppressed:
            print(f"-- {len(result.suppressed)} suppressed:")
            for finding in result.suppressed:
                print(f"   {finding.render()}")
        for (rule, path, message), count in sorted(stale.items()):
            print(
                f"note: stale baseline entry ({count}x) no longer found: "
                f"{rule} {path}: {message}"
            )
        summary = (
            f"{result.files_scanned} file(s) scanned, {len(new)} finding(s)"
        )
        if baselined:
            summary += f", {len(baselined)} baselined"
        if result.suppressed:
            summary += f", {len(result.suppressed)} suppressed"
        print(summary)

    return 1 if new else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
