"""Changed-file discovery for ``--changed`` (the fast PR loop).

The changed set is the union of three git views, so the mode behaves the
same whether the work is committed, staged, or still untracked:

* committed changes vs ``merge-base(base, HEAD)``
* uncommitted (staged + worktree) changes vs HEAD
* untracked files not ignored by ``.gitignore``

Only ``.py`` files are kept.  Callers intersect the result with the
requested analysis paths; project-scope rules (K6xx, P5xx, L2xx) only run
when their anchor module is in the changed set, so ``--changed`` trades
cross-file completeness for speed — the full run still gates merges.
"""

from __future__ import annotations

import pathlib
import subprocess
from typing import List, Optional, Set


class GitError(RuntimeError):
    """git was unavailable or the base ref did not resolve."""


def _git(root: pathlib.Path, *argv: str) -> str:
    try:
        proc = subprocess.run(
            ["git", *argv],
            cwd=root,
            capture_output=True,
            text=True,
            timeout=60,
        )
    except (OSError, subprocess.TimeoutExpired) as exc:
        raise GitError(f"git {' '.join(argv)}: {exc}") from exc
    if proc.returncode != 0:
        raise GitError(
            f"git {' '.join(argv)} failed: {proc.stderr.strip() or proc.stdout.strip()}"
        )
    return proc.stdout


def resolve_default_base(root: Optional[pathlib.Path] = None) -> str:
    """``origin/main`` when the remote-tracking ref exists, else ``main``.

    Local clones without a remote (and CI checkouts that only fetched the
    PR head) still get a usable default instead of an instant GitError.
    """
    if root is None:
        root = pathlib.Path.cwd()
    for candidate in ("origin/main", "main"):
        try:
            _git(root, "rev-parse", "--verify", "--quiet", candidate)
        except GitError:
            continue
        return candidate
    raise GitError("neither origin/main nor main resolves; pass --base REF")


def changed_python_files(
    root: Optional[pathlib.Path] = None, base: str = "origin/main"
) -> List[pathlib.Path]:
    """Paths (relative to ``root``) of every changed/added ``.py`` file.

    Names come back from git relative to the repository toplevel, so the
    returned paths are absolute — callers relativize for display.  Deleted
    files are excluded (there is nothing left to lint).  Raises
    :class:`GitError` when git or the base ref is unusable — the CLI maps
    that to exit code 2 rather than silently linting nothing.
    """
    if root is None:
        root = pathlib.Path.cwd()
    toplevel = pathlib.Path(_git(root, "rev-parse", "--show-toplevel").strip())
    merge_base = _git(root, "merge-base", base, "HEAD").strip()
    names: Set[str] = set()
    names.update(
        _git(
            root, "diff", "--name-only", "--diff-filter=d", merge_base, "HEAD"
        ).splitlines()
    )
    names.update(_git(root, "diff", "--name-only", "--diff-filter=d", "HEAD").splitlines())
    names.update(_git(root, "ls-files", "--others", "--exclude-standard").splitlines())
    out: List[pathlib.Path] = []
    for name in sorted(names):
        if not name.endswith(".py"):
            continue
        path = toplevel / name
        if path.is_file():
            out.append(path)
    return out
