"""Static extraction of the ``repro.api`` facade vocabulary.

The S-rules validate call sites against what the facade actually accepts.
Rather than hard-coding that vocabulary (which would drift), it is read
from the AST of ``repro/api.py`` and ``repro/workloads/profiles.py`` —
from the scanned file set when they are part of the run, falling back to
the installed package next to this module otherwise.
"""

from __future__ import annotations

import ast
import pathlib
from typing import Optional, Set

from .context import ProjectContext, Vocabulary


def _string_elts(node: ast.expr) -> Set[str]:
    """String constants in a tuple/list/set literal (else empty)."""
    if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        return {
            e.value
            for e in node.elts
            if isinstance(e, ast.Constant) and isinstance(e.value, str)
        }
    return set()


def _dict_string_keys(node: ast.expr) -> Set[str]:
    if isinstance(node, ast.Dict):
        return {
            k.value
            for k in node.keys
            if isinstance(k, ast.Constant) and isinstance(k.value, str)
        }
    return set()


def _assigned_value(tree: ast.AST, name: str) -> Optional[ast.expr]:
    """The value of the first module-level ``name = ...`` / ``name: T = ...``."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == name:
                    return node.value
        elif isinstance(node, ast.AnnAssign):
            if (
                isinstance(node.target, ast.Name)
                and node.target.id == name
                and node.value is not None
            ):
                return node.value
    return None


def _class_fields(tree: ast.AST, class_name: str) -> Set[str]:
    """Annotated field names declared directly in ``class_name``'s body."""
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == class_name:
            return {
                stmt.target.id
                for stmt in node.body
                if isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
                and not stmt.target.id.startswith("_")
            }
    return set()


def _kwonly_params(tree: ast.AST, func_name: str) -> Set[str]:
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef) and node.name == func_name:
            return {a.arg for a in node.args.kwonlyargs}
    return set()


def _load_tree(project: ProjectContext, module: str, filename: str):
    """AST of ``module`` from the scanned set, else from the package on disk."""
    ctx = project.find_module(module)
    if ctx is not None:
        return ctx.tree
    path = pathlib.Path(__file__).resolve().parent.parent / filename
    if path.exists():
        try:
            return ast.parse(path.read_text(encoding="utf-8"), str(path))
        except SyntaxError:
            return None
    return None


def build_vocabulary(project: ProjectContext) -> Optional[Vocabulary]:
    """The facade vocabulary, or ``None`` when ``repro/api.py`` is absent
    (the S-rules that need it then skip rather than guess)."""
    api_tree = _load_tree(project, "repro.api", "api.py")
    if api_tree is None:
        return None
    vocab = Vocabulary(
        simspec_fields=_class_fields(api_tree, "SimSpec"),
        sweep_keywords=_kwonly_params(api_tree, "sweep"),
    )
    topologies = _assigned_value(api_tree, "_TOPOLOGIES")
    if topologies is not None:
        vocab.topologies = _dict_string_keys(topologies) | {"monolithic"}
    policies = _assigned_value(api_tree, "_POLICIES")
    if policies is not None:
        vocab.policies = _string_elts(policies) | {"", "static"}
    profiles_tree = _load_tree(
        project, "repro.workloads.profiles", "workloads/profiles.py"
    )
    if profiles_tree is not None:
        factories = _assigned_value(profiles_tree, "_PROFILE_FACTORIES")
        if factories is not None:
            vocab.workloads = _dict_string_keys(factories)
    return vocab
