"""Per-module lexical symbol tables: scopes and name bindings.

The def-use dataflow layer (:mod:`repro.analysis.dataflow`) and the rule
packs built on it need to answer "what does this name refer to *here*"
more precisely than ``FileContext.import_map`` can (the import map is
flat: it knows what was imported, not whether a local assignment shadows
it).  This module builds a lexical scope tree for one parsed module:
every module / class / function / lambda / comprehension scope, the
names each binds (imports, assignments, ``def``/``class`` statements,
parameters, loop and ``with`` targets, exception names), and
Python-correct lookup through enclosing scopes — class scopes are
skipped when resolving names from an enclosed function, matching CPython
semantics, and ``global`` / ``nonlocal`` declarations redirect lookup.

Everything here is a static approximation: bindings record *where* a
name is (re)bound and what expression (if any) was assigned, without
evaluating anything.  Rules that need value knowledge inspect the
recorded ``value`` AST node themselves.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

#: binding kinds, in rough order of how much a rule can learn from them
BINDING_KINDS = (
    "import",   # import / from-import statement
    "func",     # def / async def statement
    "class",    # class statement
    "param",    # function parameter (incl. *args / **kwargs / lambda)
    "assign",   # =, :=, annotated or augmented assignment
    "loop",     # for-loop / comprehension target
    "with",     # with ... as target
    "except",   # except ... as name
    "match",    # match-case capture pattern
)

_SCOPE_NODES = (
    ast.FunctionDef,
    ast.AsyncFunctionDef,
    ast.ClassDef,
    ast.Lambda,
    ast.ListComp,
    ast.SetComp,
    ast.DictComp,
    ast.GeneratorExp,
)


@dataclass
class Binding:
    """One (re)binding of a name within a scope."""

    name: str
    kind: str
    node: ast.AST
    lineno: int
    #: RHS expression for simple assignments (``x = <value>``); ``None``
    #: for destructuring targets, parameters, loops, imports, ...
    value: Optional[ast.expr] = None
    #: the scope this binding lives in (set by :meth:`Scope.bind`); lets
    #: rules distinguish a module-level ``def`` from a nested closure
    owner: Optional["Scope"] = None


@dataclass
class Scope:
    """One lexical scope and the names it binds."""

    kind: str  #: "module" | "class" | "function" | "lambda" | "comprehension"
    name: str
    node: ast.AST
    parent: Optional["Scope"] = None
    children: List["Scope"] = field(default_factory=list)
    #: name -> every binding of it in this scope, in source order
    bindings: Dict[str, List[Binding]] = field(default_factory=dict)
    #: names declared ``global`` in this scope
    global_names: List[str] = field(default_factory=list)
    #: names declared ``nonlocal`` in this scope
    nonlocal_names: List[str] = field(default_factory=list)

    @property
    def is_function_like(self) -> bool:
        return self.kind in ("function", "lambda", "comprehension")

    def qualname(self) -> str:
        """Dotted spelling of this scope, e.g. ``Class.method``.

        Nested function scopes are spelled ``outer.<locals>.inner`` (the
        CPython ``__qualname__`` convention) so they can never collide
        with a real method name.
        """
        parts: List[str] = []
        scope: Optional[Scope] = self
        while scope is not None and scope.kind != "module":
            parts.insert(0, scope.name)
            if scope.is_function_like and scope.parent is not None and (
                scope.parent.is_function_like
            ):
                parts.insert(0, "<locals>")
            scope = scope.parent
        return ".".join(parts)

    def bind(self, binding: Binding) -> None:
        binding.owner = self
        self.bindings.setdefault(binding.name, []).append(binding)

    def module_scope(self) -> "Scope":
        scope: Scope = self
        while scope.parent is not None:
            scope = scope.parent
        return scope

    def lookup(self, name: str) -> Optional[Binding]:
        """The binding ``name`` resolves to from this scope, if any.

        Follows lexical scoping: own bindings first, then enclosing
        *function/module* scopes (class scopes are invisible to enclosed
        functions), honouring ``global``/``nonlocal`` redirects.  Returns
        the *last* binding in the owning scope (a static approximation of
        "the most recent assignment"); ``None`` means builtin or unknown.
        """
        if name in self.global_names:
            mod = self.module_scope()
            bound = mod.bindings.get(name)
            return bound[-1] if bound else None
        if name in self.nonlocal_names:
            scope = self.parent
            while scope is not None:
                if scope.is_function_like and name in scope.bindings:
                    return scope.bindings[name][-1]
                scope = scope.parent
            return None
        if name in self.bindings:
            return self.bindings[name][-1]
        scope = self.parent
        while scope is not None:
            # class scopes do not enclose: a method cannot see class-level
            # names without qualifying them (CPython semantics)
            if scope.kind != "class" and name in scope.bindings:
                return scope.bindings[name][-1]
            scope = scope.parent
        return None

    def lookup_all(self, name: str) -> List[Binding]:
        """Every binding of ``name`` in the scope :meth:`lookup` would hit."""
        if name in self.bindings:
            return list(self.bindings[name])
        scope = self.parent
        while scope is not None:
            if scope.kind != "class" and name in scope.bindings:
                return list(scope.bindings[name])
            scope = scope.parent
        return []

    def walk(self) -> Iterator["Scope"]:
        yield self
        for child in self.children:
            yield from child.walk()


class SymbolTable:
    """The scope tree of one module, with a node -> scope index."""

    def __init__(self, tree: ast.AST) -> None:
        self.module_scope = Scope(kind="module", name="<module>", node=tree)
        #: scope-introducing AST node -> the Scope it introduces
        self.scopes: Dict[ast.AST, Scope] = {tree: self.module_scope}
        self._build(tree, self.module_scope)

    def scope_for(self, node: ast.AST) -> Optional[Scope]:
        """The scope introduced *by* ``node`` (a def/class/lambda/comp)."""
        return self.scopes.get(node)

    # ------------------------------------------------------------------
    # construction

    def _enter(self, kind: str, name: str, node: ast.AST,
               parent: Scope) -> Scope:
        scope = Scope(kind=kind, name=name, node=node, parent=parent)
        parent.children.append(scope)
        self.scopes[node] = scope
        return scope

    def _build(self, node: ast.AST, scope: Scope) -> None:
        for child in ast.iter_child_nodes(node):
            self._visit(child, scope)

    def _visit(self, node: ast.AST, scope: Scope) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            scope.bind(Binding(node.name, "func", node, node.lineno))
            # decorators, defaults and annotations evaluate in the
            # *defining* scope, not the function's own
            for dec in node.decorator_list:
                self._visit(dec, scope)
            for default in list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]:
                self._visit(default, scope)
            inner = self._enter("function", node.name, node, scope)
            self._bind_arguments(node.args, inner)
            for stmt in node.body:
                self._visit(stmt, inner)
        elif isinstance(node, ast.Lambda):
            inner = self._enter("lambda", "<lambda>", node, scope)
            self._bind_arguments(node.args, inner)
            self._visit(node.body, inner)
        elif isinstance(node, ast.ClassDef):
            scope.bind(Binding(node.name, "class", node, node.lineno))
            for dec in node.decorator_list:
                self._visit(dec, scope)
            for base in list(node.bases) + list(node.keywords):
                self._visit(base, scope)
            inner = self._enter("class", node.name, node, scope)
            for stmt in node.body:
                self._visit(stmt, inner)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            inner = self._enter("comprehension", "<comp>", node, scope)
            for comp in node.generators:
                self._bind_target(comp.target, "loop", inner)
                self._visit(comp.iter, inner)
                for cond in comp.ifs:
                    self._visit(cond, inner)
            if isinstance(node, ast.DictComp):
                self._visit(node.key, inner)
                self._visit(node.value, inner)
            else:
                self._visit(node.elt, inner)
        elif isinstance(node, ast.Assign):
            self._visit(node.value, scope)
            value = node.value if (
                len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
            ) else None
            for target in node.targets:
                self._bind_target(target, "assign", scope, value=value)
        elif isinstance(node, ast.AnnAssign):
            if node.value is not None:
                self._visit(node.value, scope)
            self._bind_target(node.target, "assign", scope, value=node.value)
        elif isinstance(node, ast.AugAssign):
            self._visit(node.value, scope)
            self._bind_target(node.target, "assign", scope)
        elif isinstance(node, ast.NamedExpr):
            self._visit(node.value, scope)
            self._bind_target(node.target, "assign", scope, value=node.value)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            self._visit(node.iter, scope)
            self._bind_target(node.target, "loop", scope)
            for stmt in node.body + node.orelse:
                self._visit(stmt, scope)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                self._visit(item.context_expr, scope)
                if item.optional_vars is not None:
                    self._bind_target(item.optional_vars, "with", scope,
                                      value=item.context_expr)
            for stmt in node.body:
                self._visit(stmt, scope)
        elif isinstance(node, ast.ExceptHandler):
            if node.name:
                scope.bind(Binding(node.name, "except", node, node.lineno))
            self._build(node, scope)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                scope.bind(Binding(local, "import", node, node.lineno))
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                scope.bind(Binding(local, "import", node, node.lineno))
        elif isinstance(node, ast.Global):
            scope.global_names.extend(node.names)
        elif isinstance(node, ast.Nonlocal):
            scope.nonlocal_names.extend(node.names)
        elif isinstance(node, ast.MatchAs) and node.name:
            scope.bind(Binding(node.name, "match", node, node.lineno))
            self._build(node, scope)
        elif isinstance(node, ast.MatchStar) and node.name:
            scope.bind(Binding(node.name, "match", node, node.lineno))
        else:
            self._build(node, scope)

    def _bind_arguments(self, args: ast.arguments, scope: Scope) -> None:
        every = (
            list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        )
        for extra in (args.vararg, args.kwarg):
            if extra is not None:
                every.append(extra)
        for arg in every:
            scope.bind(Binding(arg.arg, "param", arg, arg.lineno))

    def _bind_target(self, target: ast.AST, kind: str, scope: Scope, *,
                     value: Optional[ast.expr] = None) -> None:
        if isinstance(target, ast.Name):
            scope.bind(Binding(target.id, kind, target, target.lineno,
                               value=value))
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind_target(element, kind, scope)
        elif isinstance(target, ast.Starred):
            self._bind_target(target.value, kind, scope)
        # attribute / subscript targets bind no *name*; the dataflow layer
        # tracks ``self.x`` writes separately


def iter_own_nodes(func: ast.AST) -> Iterator[ast.AST]:
    """Every node in ``func``'s body that runs *when the function runs*.

    Descends statements and expressions but stops at nested scope
    introducers (``def`` / ``class`` / ``lambda``): their bodies only run
    when *they* are invoked, which is exactly the distinction the
    concurrency rules need.  The nested node itself is still yielded so
    callers can see that it exists.
    """
    body = getattr(func, "body", [])
    stack: List[ast.AST] = list(body) if isinstance(body, list) else [body]
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, _SCOPE_NODES):
            continue  # do not descend into nested scopes
        stack.extend(ast.iter_child_nodes(node))
