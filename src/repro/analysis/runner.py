"""Orchestration: collect files, run rules, apply suppressions."""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence

from .context import FileContext, ProjectContext, build_file_context
from .findings import Finding
from .registry import Rule, select_rules
from .vocab import build_vocabulary

#: directories never descended into
_SKIP_DIRS = {
    ".git", "__pycache__", ".mypy_cache", ".ruff_cache", ".pytest_cache",
    ".venv", "venv", "build", "dist", ".eggs",
}


def collect_files(paths: Sequence[pathlib.Path]) -> List[pathlib.Path]:
    """Every ``.py`` file under ``paths`` (files are taken verbatim)."""
    out: List[pathlib.Path] = []
    for path in paths:
        if path.is_file():
            out.append(path)
            continue
        for sub in sorted(path.rglob("*.py")):
            if not any(part in _SKIP_DIRS for part in sub.parts):
                out.append(sub)
    return out


def _display_path(path: pathlib.Path, root: Optional[pathlib.Path]) -> str:
    """Stable repo-relative spelling for findings and baselines."""
    resolved = path.resolve()
    if root is not None:
        try:
            return resolved.relative_to(root.resolve()).as_posix()
        except ValueError:
            pass
    return path.as_posix()


@dataclass
class AnalysisResult:
    """Everything one analysis run produced."""

    findings: List[Finding] = field(default_factory=list)
    #: findings silenced by ``# repro: allow`` comments
    suppressed: List[Finding] = field(default_factory=list)
    files_scanned: int = 0
    parse_errors: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings


def analyze_paths(
    paths: Sequence[pathlib.Path],
    *,
    root: Optional[pathlib.Path] = None,
    select: Iterable[str] = (),
    ignore: Iterable[str] = (),
    focus: Optional[Sequence[pathlib.Path]] = None,
) -> AnalysisResult:
    """Run the registered rules over every Python file under ``paths``.

    ``root`` anchors the repo-relative display paths (defaults to the
    current directory).  ``select``/``ignore`` filter rules by id or
    family prefix.  Suppressed findings are returned separately so the CLI
    can report them; baseline subtraction happens in the CLI layer.

    ``focus`` (the ``--changed`` fast path) restricts *reporting* to the
    given files while still parsing everything under ``paths`` — project
    context must stay complete or cross-file resolution (import chasing,
    annotation lookup) would produce false positives on partial views.
    File-scope rules only execute on focused files; project-scope rules
    run in full and their findings are filtered to the focus set.
    """
    if root is None:
        root = pathlib.Path.cwd()
    focus_set = None if focus is None else {p.resolve() for p in focus}
    result = AnalysisResult()
    contexts: List[FileContext] = []
    focused: List[FileContext] = []
    for path in collect_files(list(paths)):
        display = _display_path(path, root)
        in_focus = focus_set is None or path.resolve() in focus_set
        try:
            ctx = build_file_context(path, display)
        except (SyntaxError, UnicodeDecodeError) as exc:
            result.parse_errors += 1
            if not in_focus:
                continue
            lineno = getattr(exc, "lineno", None) or 1
            result.findings.append(
                Finding(
                    path=display,
                    line=lineno,
                    col=0,
                    rule="P000",
                    message=f"file does not parse: {exc}",
                )
            )
            continue
        contexts.append(ctx)
        if in_focus:
            focused.append(ctx)
    result.files_scanned = len(focused)

    project = ProjectContext(files=contexts)
    project.vocabulary = build_vocabulary(project)

    if focus_set is not None and not focused:
        return result  # nothing to report on; skip the rule passes

    rules: List[Rule] = []
    for rule_cls in select_rules(select, ignore):
        rule = rule_cls()
        rule.project = project  # file rules that need cross-file data
        rules.append(rule)

    focused_paths = {ctx.display_path for ctx in focused}
    raw: List[Finding] = []
    for rule in rules:
        if rule.scope == "project":
            raw.extend(f for f in rule.check(project) if f.path in focused_paths)
        else:
            for ctx in focused:
                raw.extend(rule.check(ctx))

    by_path = {ctx.display_path: ctx for ctx in contexts}
    for finding in sorted(raw):
        ctx = by_path.get(finding.path)
        if ctx is not None and ctx.is_suppressed(finding.line, finding.rule):
            result.suppressed.append(finding)
        else:
            result.findings.append(finding)
    result.findings.sort()
    return result
