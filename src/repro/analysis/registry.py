"""Pluggable rule registry.

A rule is a class with a ``RULE_ID`` (family prefix — ``C`` concurrency,
``D`` determinism, ``K`` cache-key, ``L`` layering, ``P`` pickle/wire,
``S`` stats — plus a number), a one-line ``RULE_DOC``, and a ``check``
method.  Two granularities exist:

* **file rules** (``scope = "file"``) — ``check(file_ctx)`` is called once
  per parsed source file and yields :class:`~.findings.Finding`s.
* **project rules** (``scope = "project"``) — ``check(project_ctx)`` is
  called once per run with the whole file set (import graph, cross-file
  consistency).

Register with the :func:`register_rule` decorator; ``python -m
repro.analysis --list-rules`` prints the catalogue.  Adding a rule is:
write the class, decorate it, add fixtures to ``tests/analysis`` — the CLI
and baseline machinery pick it up automatically.
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, Iterator, List, Type

from .findings import Finding

_RULE_ID_RE = re.compile(r"^[CDKLPS]\d{3}$")


class Rule:
    """Base class for analysis rules (subclass and override :meth:`check`)."""

    RULE_ID: str = ""
    RULE_DOC: str = ""
    #: "file" or "project"
    scope: str = "file"

    def check(self, ctx) -> Iterator[Finding]:  # pragma: no cover - interface
        raise NotImplementedError

    def finding(self, ctx, node, message: str, **detail) -> Finding:
        """A :class:`Finding` at ``node``'s location in ``ctx``'s file."""
        return Finding(
            path=ctx.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=self.RULE_ID,
            message=message,
            detail=detail,
        )


_REGISTRY: Dict[str, Type[Rule]] = {}


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding ``cls`` to the global rule registry."""
    if not _RULE_ID_RE.match(cls.RULE_ID):
        raise ValueError(
            f"rule id {cls.RULE_ID!r} must match C/D/K/L/P/S + three digits"
        )
    if cls.RULE_ID in _REGISTRY and _REGISTRY[cls.RULE_ID] is not cls:
        raise ValueError(f"duplicate rule id {cls.RULE_ID}")
    if cls.scope not in ("file", "project"):
        raise ValueError(f"rule {cls.RULE_ID}: unknown scope {cls.scope!r}")
    _REGISTRY[cls.RULE_ID] = cls
    return cls


def all_rules() -> List[Type[Rule]]:
    """Every registered rule class, sorted by rule id."""
    _load_builtin_rules()
    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Type[Rule]:
    _load_builtin_rules()
    return _REGISTRY[rule_id]


def select_rules(
    select: Iterable[str] = (), ignore: Iterable[str] = ()
) -> List[Type[Rule]]:
    """The registered rules filtered by ``--select`` / ``--ignore`` ids.

    A selector may be a full id (``D101``) or a family prefix (``D``).
    """
    chosen = all_rules()
    select = tuple(select)
    ignore = tuple(ignore)
    if select:
        chosen = [r for r in chosen if _matches(r.RULE_ID, select)]
    if ignore:
        chosen = [r for r in chosen if not _matches(r.RULE_ID, ignore)]
    return chosen


def _matches(rule_id: str, selectors: Iterable[str]) -> bool:
    return any(rule_id == s or rule_id.startswith(s) for s in selectors)


_loaded = False


def _load_builtin_rules() -> None:
    """Import the built-in rule modules (registration is a side effect)."""
    global _loaded
    if _loaded:
        return
    _loaded = True
    from . import (  # noqa: F401
        rules_cachekey,
        rules_concurrency,
        rules_determinism,
        rules_layering,
        rules_stats,
        rules_wire,
    )
