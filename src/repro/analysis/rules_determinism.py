"""D-rules: determinism.

The paper's interval/exploration controllers compare IPC measured across
intervals, so any run-to-run nondeterminism silently corrupts the headline
results.  These rules flag the source constructs that historically cause
it: ambient randomness, wall-clock reads, hash-order iteration, identity
ordering, and ad-hoc environment reads.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set

from .context import FileContext
from .findings import Finding
from .registry import Rule, register_rule

#: the packages that make up the cycle-accurate simulator model; anything
#: nondeterministic here perturbs simulated results, not just logs
SIMULATOR_PACKAGES = (
    "pipeline", "clusters", "interconnect", "memory", "core", "multiprog",
)

#: ``random`` module functions that draw from the hidden global generator
_GLOBAL_RANDOM_FNS = {
    "betavariate", "choice", "choices", "expovariate", "gammavariate",
    "gauss", "getrandbits", "lognormvariate", "normalvariate", "paretovariate",
    "randbytes", "randint", "random", "randrange", "sample", "seed",
    "shuffle", "triangular", "uniform", "vonmisesvariate", "weibullvariate",
}

_WALL_CLOCK = {
    "time.time", "time.time_ns", "time.perf_counter", "time.perf_counter_ns",
    "time.monotonic", "time.monotonic_ns", "time.process_time",
    "time.process_time_ns", "time.clock_gettime",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
}


def _in_simulator(ctx: FileContext) -> bool:
    return ctx.module_head in SIMULATOR_PACKAGES


@register_rule
class UnseededRandomRule(Rule):
    """D101: module-level ``random``/``numpy.random`` draws.

    ``random.random()`` et al. read the interpreter-global Mersenne
    twister, whose state depends on import order and everything else that
    touched it; the repo's convention is an injected ``random.Random(seed)``
    (see ``workloads/generator.py``).  Applies everywhere — benchmarks and
    examples feed results too.
    """

    RULE_ID = "D101"
    RULE_DOC = (
        "unseeded random.* / numpy.random.* module-level call; inject a "
        "seeded random.Random(seed) instead"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = ctx.resolve_name(node.func)
            if dotted is None:
                continue
            if self._is_global_draw(dotted):
                yield self.finding(
                    ctx, node,
                    f"call to {dotted}() draws from the process-global RNG; "
                    f"use an injected random.Random(seed)",
                    callee=dotted,
                )

    @staticmethod
    def _is_global_draw(dotted: str) -> bool:
        parts = dotted.split(".")
        if parts[0] == "random" and len(parts) == 2:
            # random.Random(...) constructs an independent generator - fine
            return parts[1] in _GLOBAL_RANDOM_FNS
        if parts[0] == "numpy" and len(parts) >= 3 and parts[1] == "random":
            # numpy.random.default_rng(seed) is the blessed construction
            return parts[2] != "default_rng"
        return False


@register_rule
class WallClockRule(Rule):
    """D102: wall-clock reads inside the simulator model packages.

    Simulated time is ``processor.cycle``; reading host time inside
    ``pipeline``/``clusters``/``interconnect``/``memory``/``core`` means a
    simulated decision can depend on machine load.  Harness code
    (``experiments``, benchmarks) may time itself freely.
    """

    RULE_ID = "D102"
    RULE_DOC = (
        "wall-clock read (time.*/datetime.now) inside a simulator model "
        "package; simulated behaviour must depend only on cycle counts"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not _in_simulator(ctx):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = ctx.resolve_name(node.func)
            if dotted in _WALL_CLOCK:
                yield self.finding(
                    ctx, node,
                    f"wall-clock read {dotted}() in simulator package "
                    f"repro.{ctx.module_head}; derive timing from cycle "
                    f"counters",
                    callee=dotted,
                )


@register_rule
class SetIterationRule(Rule):
    """D103: iteration over a set in simulator hot paths.

    CPython iterates sets in hash-table order.  For ``int`` keys that
    order is stable, but one refactor to tuple or object elements makes
    results machine-dependent.  Iterate ``sorted(the_set)`` or restructure;
    order-independent reductions can carry a ``# repro: allow[D103]`` with
    a justification.
    """

    RULE_ID = "D103"
    RULE_DOC = (
        "iteration over a set in a simulator package; iterate "
        "sorted(...) or justify with # repro: allow[D103]"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not _in_simulator(ctx):
            return
        set_names = self._set_typed_names(ctx)
        for node in ast.walk(ctx.tree):
            targets = []
            if isinstance(node, ast.For):
                targets = [node.iter]
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp,
                                   ast.DictComp)):
                targets = [gen.iter for gen in node.generators]
            for it in targets:
                if self._is_set_expr(it, set_names):
                    yield self.finding(
                        ctx, it,
                        "iterating a set (hash order); iterate sorted(...) "
                        "or an order-independent reduction with an allow "
                        "comment",
                    )

    @staticmethod
    def _set_typed_names(ctx: FileContext) -> Set[str]:
        """Names annotated or assigned as sets anywhere in the module."""
        names: Set[str] = set()
        for node in ast.walk(ctx.tree):
            target: Optional[ast.expr] = None
            value: Optional[ast.expr] = None
            if isinstance(node, ast.AnnAssign):
                target, value = node.target, node.value
                ann = ast.unparse(node.annotation)
                if ann.split("[")[0].split(".")[-1] in ("Set", "set",
                                                        "FrozenSet",
                                                        "frozenset"):
                    names.update(_bound_name(target))
                continue
            if isinstance(node, ast.Assign):
                value = node.value
                if _is_set_ctor(value):
                    for tgt in node.targets:
                        names.update(_bound_name(tgt))
        return names

    @staticmethod
    def _is_set_expr(node: ast.expr, set_names: Set[str]) -> bool:
        if _is_set_ctor(node):
            return True
        for name in _bound_name(node):
            if name in set_names:
                return True
        return False


def _is_set_ctor(node: Optional[ast.expr]) -> bool:
    if isinstance(node, ast.Set):
        return True
    if isinstance(node, ast.SetComp):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in ("set", "frozenset"):
            return True
    return False


def _bound_name(node: Optional[ast.expr]):
    """The trackable name of an assignment target / iterable expression.

    ``x`` -> ``x``; ``self.x`` -> ``self.x``; anything else -> nothing.
    """
    if isinstance(node, ast.Name):
        yield node.id
    elif (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        yield f"self.{node.attr}"


@register_rule
class IdOrderingRule(Rule):
    """D104: ``id()`` used as an ordering or sort key.

    CPython object addresses vary run to run; any ordering derived from
    them is nondeterministic by construction.
    """

    RULE_ID = "D104"
    RULE_DOC = "id()-based ordering (sort key or comparison) is address-dependent"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                for kw in node.keywords:
                    if kw.arg == "key" and self._mentions_id(kw.value):
                        yield self.finding(
                            ctx, node,
                            "sort/ordering key uses id(); object addresses "
                            "differ between runs",
                        )
            elif isinstance(node, ast.Compare):
                operands = [node.left] + list(node.comparators)
                ordered = any(
                    isinstance(op, (ast.Lt, ast.LtE, ast.Gt, ast.GtE))
                    for op in node.ops
                )
                if ordered and any(self._is_id_call(o) for o in operands):
                    yield self.finding(
                        ctx, node,
                        "ordered comparison of id() values; object "
                        "addresses differ between runs",
                    )

    @staticmethod
    def _is_id_call(node: ast.expr) -> bool:
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "id"
        )

    def _mentions_id(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Name) and node.id == "id":
            return True
        return any(self._is_id_call(n) for n in ast.walk(node))


#: the two modules allowed to read process environment directly; everything
#: else takes configuration through ProcessorConfig / function parameters
ENV_ALLOWED_MODULES = ("repro.faults", "repro.config")


@register_rule
class EnvReadRule(Rule):
    """D105: ``os.environ`` / ``os.getenv`` reads outside the sanctioned
    modules.

    Environment reads are invisible configuration: two "identical" runs on
    two machines diverge with no record of why.  ``repro.config`` owns the
    documented environment switches (and provides ``env_text``/``env_flag``
    accessors); ``repro.faults`` owns the fault-injection plan channel.
    """

    RULE_ID = "D105"
    RULE_DOC = (
        "os.environ/os.getenv read outside repro.config / repro.faults; "
        "route through repro.config.env_text/env_flag"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.module is None or ctx.module in ENV_ALLOWED_MODULES:
            return
        for node in ast.walk(ctx.tree):
            dotted = None
            if isinstance(node, ast.Call):
                dotted = ctx.resolve_name(node.func)
                if dotted not in ("os.getenv", "os.environ.get"):
                    dotted = None
            elif isinstance(node, ast.Subscript) and isinstance(
                node.ctx, ast.Load
            ):
                dotted = ctx.resolve_name(node.value)
                if dotted != "os.environ":
                    dotted = None
            if dotted is not None:
                yield self.finding(
                    ctx, node,
                    f"environment read ({dotted}) outside repro.config/"
                    f"repro.faults; use repro.config.env_text/env_flag",
                    callee=dotted,
                )
