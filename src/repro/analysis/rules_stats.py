"""S-rules: statistics conservation and facade-vocabulary validation.

A parallel sweep is only correct if per-shard statistics merge losslessly
(S301), and a 20-minute sweep should never die — or worse, silently run a
default — because of a typo'd keyword or benchmark name that lint could
have caught (S302/S303).  The trace-event schema is downstream consumers'
contract, so every kind it declares must be exercised by the
``validate_event`` tests (S304).
"""

from __future__ import annotations

import ast
import pathlib
import re
from typing import Dict, Iterator, List, Optional, Set

from .context import FileContext, ProjectContext
from .findings import Finding
from .registry import Rule, register_rule

_STATIC_POLICY_RE = re.compile(r"^static-\d+$")


@register_rule
class MergeCoverageRule(Rule):
    """S301: every ``SimStats`` field must appear in ``SimStats.merge``.

    ``merge`` enumerates its fields explicitly (one ``self.x += other.x``
    per counter) so that *this rule* can prove, statically, that no field
    is dropped when parallel sweep shards are aggregated.  A new field
    that ``merge`` does not mention is exactly the bug class where every
    per-run number is right and every aggregated report is silently wrong.
    """

    RULE_ID = "S301"
    RULE_DOC = (
        "SimStats field not handled by SimStats.merge; parallel sweeps "
        "would silently drop it during aggregation"
    )
    scope = "project"

    def check(self, project: ProjectContext) -> Iterator[Finding]:
        ctx = project.find_module("repro.stats")
        if ctx is None:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef) and node.name == "SimStats":
                yield from self._check_class(ctx, node)

    def _check_class(self, ctx: FileContext, cls: ast.ClassDef):
        fields = {}
        merge: Optional[ast.FunctionDef] = None
        for stmt in cls.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                if not stmt.target.id.startswith("_"):
                    fields[stmt.target.id] = stmt
            elif (
                isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                and stmt.name == "merge"
            ):
                merge = stmt
        if merge is None:
            if fields:
                yield self.finding(
                    ctx, cls,
                    "SimStats has no merge method; parallel sweep "
                    "aggregation is impossible",
                )
            return
        handled = self._attributes_touched(merge)
        generic = self._is_generic_merge(merge)
        for name, decl in fields.items():
            if generic or name in handled:
                continue
            yield self.finding(
                ctx, decl,
                f"SimStats.{name} is not handled in SimStats.merge "
                f"(declared at line {decl.lineno}); add it to merge or "
                f"aggregated sweep statistics will drop it",
                field=name,
                merge_line=merge.lineno,
            )

    @staticmethod
    def _attributes_touched(merge: ast.FunctionDef) -> Set[str]:
        return {
            node.attr
            for node in ast.walk(merge)
            if isinstance(node, ast.Attribute)
        }

    @staticmethod
    def _is_generic_merge(merge: ast.FunctionDef) -> bool:
        """True when merge iterates ``dataclasses.fields`` + ``setattr``.

        A reflective merge handles every field by construction; the rule
        then has nothing to prove.  (``repro.stats`` deliberately uses the
        explicit spelling instead, trading three lines per counter for a
        statically checkable conservation property.)
        """
        source_names = {
            node.attr if isinstance(node, ast.Attribute) else node.id
            for node in ast.walk(merge)
            if isinstance(node, (ast.Attribute, ast.Name))
        }
        return "fields" in source_names and "setattr" in source_names


#: call targets validated against the SimSpec field vocabulary; the
#: values are extra keywords that particular callable also accepts
_SPEC_CALLS = {
    "repro.api.SimSpec": frozenset(),
    "repro.SimSpec": frozenset(),
    # trace= (a Tracer or an export directory) is simulate-only, not a
    # SimSpec field (tracers are stateful and unpicklable by design);
    # arbiter=/epoch_cycles=/drain_cycles= select the multiprogrammed arm
    # (tuple-of-profiles workloads -> MultiProgSpec fields)
    "repro.api.simulate": frozenset(
        {"trace", "arbiter", "epoch_cycles", "drain_cycles"}
    ),
    "repro.simulate": frozenset(
        {"trace", "arbiter", "epoch_cycles", "drain_cycles"}
    ),
}

_SWEEP_CALLS = ("repro.api.sweep", "repro.sweep")


@register_rule
class UnknownKeywordRule(Rule):
    """S302: unknown keyword in a ``SimSpec``/``simulate``/``sweep`` call."""

    RULE_ID = "S302"
    RULE_DOC = (
        "keyword not in the repro.api vocabulary; it would raise (or be "
        "silently absorbed) only after the sweep starts"
    )
    scope = "file"

    #: set by the runner before file rules execute
    project: Optional[ProjectContext] = None

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        vocab = self.project.vocabulary if self.project else None
        if vocab is None or not vocab.simspec_fields:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = ctx.resolve_name(node.func)
            if dotted is None:
                continue
            if dotted in _SPEC_CALLS:
                allowed = vocab.simspec_fields | _SPEC_CALLS[dotted]
                kind = dotted.rsplit(".", 1)[-1]
            elif dotted in _SWEEP_CALLS and vocab.sweep_keywords:
                allowed = vocab.sweep_keywords
                kind = "sweep"
            else:
                continue
            for kw in node.keywords:
                if kw.arg is None:  # **splat: cannot judge statically
                    continue
                if kw.arg not in allowed:
                    yield self.finding(
                        ctx, kw.value,
                        f"unknown keyword {kw.arg!r} in {kind}() call; "
                        f"the vocabulary is {sorted(allowed)}",
                        keyword=kw.arg,
                        callee=dotted,
                    )


@register_rule
class VocabularyLiteralRule(Rule):
    """S303: invalid topology/policy/workload string literal.

    A misspelled ``topology="gird"`` raises only once the spec reaches a
    worker; a misspelled benchmark name can select a default profile in
    older call paths.  Both are knowable from the source.
    """

    RULE_ID = "S303"
    RULE_DOC = (
        "string literal outside the facade vocabulary (topology/"
        "reconfig_policy/workload)"
    )
    scope = "file"

    project: Optional[ProjectContext] = None

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        vocab = self.project.vocabulary if self.project else None
        if vocab is None:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = ctx.resolve_name(node.func)
            if dotted not in _SPEC_CALLS:
                continue
            for kw in node.keywords:
                value = kw.value
                if not (
                    isinstance(value, ast.Constant)
                    and isinstance(value.value, str)
                ):
                    continue
                text = value.value
                if kw.arg == "topology" and vocab.topologies:
                    if text not in vocab.topologies:
                        yield self.finding(
                            ctx, value,
                            f"unknown topology {text!r}; choose from "
                            f"{sorted(vocab.topologies)}",
                            value=text,
                        )
                elif kw.arg == "reconfig_policy" and vocab.policies:
                    if text not in vocab.policies and not _STATIC_POLICY_RE.match(
                        text
                    ):
                        yield self.finding(
                            ctx, value,
                            f"unknown reconfig_policy {text!r}; choose from "
                            f"{sorted(vocab.policies)} or 'static-<n>'",
                            value=text,
                        )
                elif kw.arg == "workload" and vocab.workloads:
                    if text not in vocab.workloads:
                        yield self.finding(
                            ctx, value,
                            f"unknown workload {text!r}; profiles are "
                            f"{sorted(vocab.workloads)}",
                            value=text,
                        )
            # first positional argument of simulate()/SimSpec() is the
            # workload; validate string-literal spellings there too
            if node.args and vocab.workloads:
                first = node.args[0]
                if (
                    isinstance(first, ast.Constant)
                    and isinstance(first.value, str)
                    and first.value not in vocab.workloads
                ):
                    yield self.finding(
                        ctx, first,
                        f"unknown workload {first.value!r}; profiles are "
                        f"{sorted(vocab.workloads)}",
                        value=first.value,
                    )


@register_rule
class EventSchemaCoverageRule(Rule):
    """S304: every trace-event kind must be covered by validate_event tests.

    ``EVENT_FIELDS`` in ``repro/observability/events.py`` is the schema
    contract for every downstream trace consumer.  A kind counts as
    covered when a test file that exercises ``validate_event`` either
    names the kind literally or iterates ``EVENT_FIELDS`` itself (the
    exhaustive parametrized form — new kinds are then covered by
    construction, and this rule guards the exhaustive test's existence).

    The test tree is located relative to the *repository root* (walking
    up from ``events.py``), not the analysed path set, because CI lints
    only ``src``/``benchmarks``/``examples``.
    """

    RULE_ID = "S304"
    RULE_DOC = (
        "event kind declared in EVENT_FIELDS but never exercised by the "
        "validate_event tests; the schema contract is untested"
    )
    scope = "project"

    def check(self, project: ProjectContext) -> Iterator[Finding]:
        ctx = project.find_module("repro.observability.events")
        if ctx is None:
            return
        table, kinds = self._event_kinds(ctx)
        if table is None or not kinds:
            return
        sources = self._validate_event_test_sources(ctx.path)
        if not sources:
            yield self.finding(
                ctx, table,
                "no test file under tests/ exercises validate_event; the "
                f"{len(kinds)} declared event kinds are untested",
            )
            return
        generic = any("EVENT_FIELDS" in source for source in sources)
        for kind in sorted(kinds):
            if generic or any(f'"{kind}"' in s or f"'{kind}'" in s
                              for s in sources):
                continue
            yield self.finding(
                ctx, kinds[kind],
                f"event kind {kind!r} is not covered by any validate_event "
                "test (no literal mention, and no test iterates "
                "EVENT_FIELDS exhaustively)",
                kind=kind,
            )

    @staticmethod
    def _event_kinds(ctx: FileContext):
        """The ``EVENT_FIELDS`` assignment node and its kind -> key nodes."""
        for node in ast.walk(ctx.tree):
            targets = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets = [node.target]
            if not any(
                isinstance(t, ast.Name) and t.id == "EVENT_FIELDS"
                for t in targets
            ):
                continue
            value = node.value
            if not isinstance(value, ast.Dict):
                continue
            kinds: Dict[str, ast.AST] = {}
            for key in value.keys:
                if isinstance(key, ast.Constant) and isinstance(
                    key.value, str
                ):
                    kinds[key.value] = key
            return node, kinds
        return None, {}

    @staticmethod
    def _validate_event_test_sources(events_path: pathlib.Path) -> List[str]:
        """Source text of every tests/**/*.py mentioning validate_event."""
        for parent in events_path.resolve().parents:
            tests = parent / "tests"
            if tests.is_dir():
                break
        else:
            return []
        sources = []
        for path in sorted(tests.rglob("*.py")):
            try:
                text = path.read_text(encoding="utf-8")
            except OSError:  # pragma: no cover - unreadable test file
                continue
            if "validate_event" in text:
                sources.append(text)
        return sources
