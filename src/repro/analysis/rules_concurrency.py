"""C-rules: thread/asyncio discipline for the distributed coordinator.

The :class:`~repro.experiments.backends.distributed.DistributedBackend`
runs an asyncio loop on the ``sweep-coordinator`` daemon thread while the
runner keeps calling in from the main thread.  Every bug class this pack
targets is invisible at runtime until a sweep hangs on another machine:

* a blocking call on the loop thread stalls *every* worker connection at
  once (C401);
* a coroutine that is created but never awaited silently does nothing
  (C402);
* an attribute mutated from both threads without a hand-off point is a
  data race that only loses under load (C403);
* threads created outside the backends package escape the one place the
  threading model is documented and reviewed (C404);
* an unbounded ``Queue.get`` / ``join`` / ``result`` turns a dead worker
  into a hung coordinator instead of a :class:`BackendError` (C405).

All checks ride on the :mod:`~repro.analysis.dataflow` layer: call edges
decide whether sync code is *reachable from* an ``async def``, and
statically-known constructor types decide whether ``.get`` is a queue or
a dict.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .context import FileContext
from .dataflow import FunctionInfo, ModuleDataflow, module_dataflow
from .findings import Finding
from .registry import Rule, register_rule
from .symbols import iter_own_nodes

#: dotted call targets that block the calling thread (no asyncio variant
#: in use, or the sync spelling of one); resolved through the import map
BLOCKING_CALLS = frozenset(
    {
        "time.sleep",
        "subprocess.Popen",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "socket.create_connection",
        "socket.socket",
        "os.waitpid",
        "os.wait",
        "select.select",
        "urllib.request.urlopen",
        "requests.get",
        "requests.post",
    }
)

#: builtin callables that block (file I/O has no awaitable spelling here)
BLOCKING_BUILTINS = frozenset({"open", "input"})

#: constructors whose instances carry blocking methods the C401/C405
#: rules track (``queue.Queue().get`` blocks; ``dict.get`` does not)
SYNC_PRIMITIVE_CTORS = frozenset(
    {
        "queue.Queue",
        "queue.SimpleQueue",
        "queue.LifoQueue",
        "queue.PriorityQueue",
        "threading.Thread",
        "threading.Event",
        "threading.Lock",
        "threading.RLock",
        "threading.Condition",
        "threading.Semaphore",
        "threading.BoundedSemaphore",
        "asyncio.run_coroutine_threadsafe",
        "concurrent.futures.ProcessPoolExecutor",
        "concurrent.futures.ThreadPoolExecutor",
    }
)

#: blocking method names on sync primitives (C401 inside async context;
#: C405 when called without a timeout anywhere in the backends).
#: ``put`` is deliberately absent: it blocks only on *bounded* queues,
#: and an unbounded ``queue.Queue.put`` is exactly the sanctioned
#: loop-to-caller hand-off the coordinator is built on.
BLOCKING_METHODS = frozenset({"get", "join", "wait", "result", "acquire"})

#: modules allowed to construct threads: the backends own the threading
#: model (coordinator thread + worker subprocesses) and document it
THREAD_ALLOWLIST = ("repro.experiments.backends",)

#: backends modules that are synchronous *by design* (the worker process
#: blocks on the wire between jobs; that is its job description)
SYNC_BY_DESIGN = frozenset({"repro.experiments.backends.worker"})


def _async_roots(flow: ModuleDataflow) -> List[str]:
    return [q for q, info in flow.functions.items() if info.is_async]


def _blocking_reason(flow: ModuleDataflow, info: FunctionInfo,
                     call: ast.Call) -> Optional[str]:
    """Why ``call`` blocks the thread, or ``None`` if it does not."""
    dotted = flow.ctx.resolve_name(call.func)
    if dotted in BLOCKING_CALLS:
        return dotted
    func = call.func
    if isinstance(func, ast.Name):
        if func.id in BLOCKING_BUILTINS and info.scope.lookup(func.id) is None:
            return f"builtin {func.id}()"
        return None
    if not isinstance(func, ast.Attribute) or (
        func.attr not in BLOCKING_METHODS
    ):
        return None
    ctor = _receiver_ctor(flow, info, func.value)
    if ctor in SYNC_PRIMITIVE_CTORS:
        return f"{ctor}().{func.attr}"
    return None


def _receiver_ctor(flow: ModuleDataflow, info: FunctionInfo,
                   receiver: ast.expr) -> Optional[str]:
    """Constructor dotted path of a method call's receiver, if known.

    Knows two shapes: ``self.X`` where some method assigns ``self.X =
    Ctor(...)``, and a local name bound to ``Ctor(...)`` in this scope.
    """
    if (
        isinstance(receiver, ast.Attribute)
        and isinstance(receiver.value, ast.Name)
        and receiver.value.id == "self"
        and info.class_name is not None
    ):
        return flow.self_attr_types(info.class_name).get(receiver.attr)
    if isinstance(receiver, ast.Name):
        value = flow.local_value(info, receiver.id)
        if isinstance(value, ast.Call):
            return flow.ctx.resolve_name(value.func)
    return None


def _has_timeout(call: ast.Call) -> bool:
    """Does the blocking call bound its wait (any positional arg or a
    ``timeout=`` keyword that is not literally ``None``)?"""
    for kw in call.keywords:
        if kw.arg == "timeout":
            return not (
                isinstance(kw.value, ast.Constant) and kw.value.value is None
            )
        if kw.arg is None:
            return True  # **kwargs splat: assume bounded
    return bool(call.args)


@register_rule
class BlockingCallInAsyncRule(Rule):
    """C401: blocking call on (or reachable from) the event-loop thread.

    Within any module that defines ``async def`` functions, a call to a
    known-blocking target (``time.sleep``, sync subprocess/socket/file
    I/O, a sync-primitive ``.get``/``.join``/...) is flagged when it sits
    inside an ``async def`` body *or* inside a sync function reachable
    from one over the module's call graph.  The sanctioned escape hatch
    is ``loop.run_in_executor(None, fn, ...)``: the callable is passed by
    reference, so no call edge exists and ``fn``'s body is (correctly)
    attributed to the executor thread.
    """

    RULE_ID = "C401"
    RULE_DOC = (
        "blocking call inside (or reachable from) an async def; it would "
        "stall the whole event loop"
    )
    scope = "file"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if "async def" not in ctx.source:
            return
        flow = module_dataflow(ctx)
        roots = _async_roots(flow)
        if not roots:
            return
        on_loop = flow.reachable(roots)
        for qualname in sorted(on_loop):
            info = flow.functions[qualname]
            for node in iter_own_nodes(info.node):
                if not isinstance(node, ast.Call):
                    continue
                reason = _blocking_reason(flow, info, node)
                if reason is None:
                    continue
                if info.is_async:
                    where = f"inside async def {qualname}"
                else:
                    path = flow.call_paths_to(qualname, roots)
                    chain = " -> ".join(path) if path else qualname
                    where = (
                        f"in {qualname}, reachable from the event loop "
                        f"via {chain}"
                    )
                yield self.finding(
                    ctx, node,
                    f"blocking call {reason} {where}; move it off the "
                    "loop (run_in_executor) or use the asyncio variant",
                    target=reason,
                    function=qualname,
                )


@register_rule
class UnawaitedCoroutineRule(Rule):
    """C402: a locally-defined coroutine is called but never awaited.

    Calling an ``async def`` just builds a coroutine object; unless it is
    awaited, returned, or handed to a scheduler (``ensure_future``,
    ``run_coroutine_threadsafe``, ``gather`` — any call argument counts
    as consumed), its body never runs and Python only warns at garbage
    collection time, on some other machine's stderr.
    """

    RULE_ID = "C402"
    RULE_DOC = (
        "coroutine created but never awaited/scheduled; its body will "
        "never run"
    )
    scope = "file"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if "async def" not in ctx.source:
            return
        flow = module_dataflow(ctx)
        for qualname, info in sorted(flow.functions.items()):
            parents = _parent_map(info.node)
            for site in flow.calls_from.get(qualname, ()):
                target = site.local and flow.functions.get(site.local)
                if not target or not target.is_async:
                    continue
                verdict = self._consumption(flow, info, site.node, parents)
                if verdict is None:
                    continue
                yield self.finding(
                    ctx, site.node,
                    f"coroutine {site.local}() is {verdict} in {qualname}; "
                    "await it, return it, or schedule it explicitly",
                    coroutine=site.local,
                    function=qualname,
                )

    @staticmethod
    def _consumption(flow: ModuleDataflow, info: FunctionInfo,
                     call: ast.Call,
                     parents: Dict[ast.AST, ast.AST]) -> Optional[str]:
        """A verdict string when the coroutine is *not* consumed."""
        parent = parents.get(call)
        if isinstance(parent, ast.Expr):
            return "created and immediately discarded"
        if isinstance(parent, ast.Assign):
            targets = parent.targets
            if len(targets) == 1 and isinstance(targets[0], ast.Name):
                name = targets[0].id
                if not flow.name_used_after(info, name, parent.lineno):
                    return f"assigned to {name!r} which is never used again"
        # awaited, returned, yielded, or passed into another call: consumed
        return None


def _parent_map(func_node: ast.AST) -> Dict[ast.AST, ast.AST]:
    parents: Dict[ast.AST, ast.AST] = {}
    for node in iter_own_nodes(func_node):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


@register_rule
class CrossThreadMutationRule(Rule):
    """C403: attribute mutated from both sides of the thread boundary.

    In a class that both starts a ``threading.Thread`` and defines async
    methods (the coordinator pattern), methods partition into *loop-side*
    (async defs plus sync helpers reachable only from them) and
    *caller-side* (the remaining sync methods and their sync-only call
    closure).  An attribute assigned on **both** sides — outside
    ``__init__``/``__post_init__``, and not under a ``with self.<lock>:``
    block — is a cross-thread data race; route it through
    ``call_soon_threadsafe``, a queue, or a lock.
    """

    RULE_ID = "C403"
    RULE_DOC = (
        "attribute written from both the event-loop thread and the "
        "caller thread without a hand-off point"
    )
    scope = "file"

    _SETUP_METHODS = ("__init__", "__post_init__")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if "async def" not in ctx.source or "Thread" not in ctx.source:
            return
        flow = module_dataflow(ctx)
        for class_name in sorted(flow.classes):
            cls = flow.classes[class_name]
            methods = cls.methods
            if not methods or not self._spawns_thread(flow, class_name):
                continue
            async_roots = [
                m.qualname for m in methods.values() if m.is_async
            ]
            if not async_roots:
                continue
            loop_side = flow.reachable(async_roots)
            caller_roots = [
                m.qualname for m in methods.values()
                if not m.is_async
                and m.name not in self._SETUP_METHODS
                and m.qualname not in loop_side
            ]
            caller_side = flow.reachable(
                caller_roots, skip_async_targets=True
            )
            loop_writes = self._writes(flow, loop_side, class_name)
            caller_writes = self._writes(flow, caller_side, class_name)
            for attr in sorted(set(loop_writes) & set(caller_writes)):
                node, loop_method = loop_writes[attr]
                _, caller_method = caller_writes[attr]
                yield self.finding(
                    ctx, node,
                    f"{class_name}.{attr} is written on the loop thread "
                    f"(in {loop_method}) and the caller thread (in "
                    f"{caller_method}) without call_soon_threadsafe or a "
                    "lock",
                    attribute=attr,
                    loop_method=loop_method,
                    caller_method=caller_method,
                )

    @staticmethod
    def _spawns_thread(flow: ModuleDataflow, class_name: str) -> bool:
        cls = flow.classes[class_name]
        for info in cls.methods.values():
            for node in iter_own_nodes(info.node):
                if isinstance(node, ast.Call) and flow.ctx.resolve_name(
                    node.func
                ) == "threading.Thread":
                    return True
        return False

    def _writes(
        self, flow: ModuleDataflow, qualnames: Set[str], class_name: str
    ) -> Dict[str, Tuple[ast.AST, str]]:
        """attr -> (site, method) over the given side, lock-guarded and
        setup-method writes excluded."""
        out: Dict[str, Tuple[ast.AST, str]] = {}
        prefix = f"{class_name}."
        for qualname in sorted(qualnames):
            if not qualname.startswith(prefix):
                continue
            info = flow.functions[qualname]
            if info.name in self._SETUP_METHODS:
                continue
            locked = _lock_guarded_nodes(flow, info)
            for attr, site in flow.attr_writes(qualname).items():
                if site in locked:
                    continue
                out.setdefault(attr, (site, qualname))
        return out


def _lock_guarded_nodes(flow: ModuleDataflow,
                        info: FunctionInfo) -> Set[ast.AST]:
    """Statements inside ``with self.<lock-like>:`` blocks.

    An attribute is lock-like when a method assigns it a
    ``threading.Lock``-family constructor, or as a fallback when its name
    contains ``lock`` or ``mutex``.
    """
    guarded: Set[ast.AST] = set()
    lock_attrs: Set[str] = set()
    if info.class_name is not None:
        for attr, ctor in flow.self_attr_types(info.class_name).items():
            if ctor in (
                "threading.Lock", "threading.RLock", "threading.Condition",
                "threading.Semaphore", "threading.BoundedSemaphore",
            ):
                lock_attrs.add(attr)
    for node in iter_own_nodes(info.node):
        if not isinstance(node, (ast.With, ast.AsyncWith)):
            continue
        for item in node.items:
            expr = item.context_expr
            if (
                isinstance(expr, ast.Attribute)
                and isinstance(expr.value, ast.Name)
                and expr.value.id == "self"
                and (
                    expr.attr in lock_attrs
                    or "lock" in expr.attr.lower()
                    or "mutex" in expr.attr.lower()
                )
            ):
                for stmt in node.body:
                    guarded.add(stmt)
                    guarded.update(ast.walk(stmt))
    return guarded


@register_rule
class ThreadCreationRule(Rule):
    """C404: ``threading.Thread`` constructed outside the backends.

    The execution backends own the project's threading model (one
    coordinator thread, worker *processes* everywhere else) — a thread
    created anywhere else dodges that design review and, worse, can
    outlive a sweep and mutate shared state behind the determinism
    guarantees.  Deliberate exceptions take a justified
    ``# repro: allow[C404]``.
    """

    RULE_ID = "C404"
    RULE_DOC = (
        "threading.Thread created outside repro.experiments.backends; "
        "the backends own the threading model"
    )
    scope = "file"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.module is not None and ctx.module.startswith(THREAD_ALLOWLIST):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call) and ctx.resolve_name(
                node.func
            ) == "threading.Thread":
                yield self.finding(
                    ctx, node,
                    "threading.Thread created outside the backends "
                    "allowlist; spawn work through an ExecutionBackend, "
                    "or justify with # repro: allow[C404]",
                )


@register_rule
class UnboundedBlockingWaitRule(Rule):
    """C405: sync-primitive wait without a timeout in the backends.

    A ``Queue.get()`` / ``Thread.join()`` / ``Future.result()`` with no
    timeout turns any worker death the coordinator failed to notice into
    an eternal hang; every wait in the backends must be bounded so the
    liveness check (``_alive``) gets a turn.  Only receivers whose
    constructor is statically known (``self._q = queue.Queue()``, ``fut =
    run_coroutine_threadsafe(...)``) are judged — a plain ``d.get(k)`` is
    somebody's dict.  The worker module is exempt: it *is* the blocking
    side by design.
    """

    RULE_ID = "C405"
    RULE_DOC = (
        "unbounded blocking wait (no timeout) on a sync primitive in the "
        "execution backends"
    )
    scope = "file"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.module is None or not ctx.module.startswith(THREAD_ALLOWLIST):
            return
        if ctx.module in SYNC_BY_DESIGN:
            return
        flow = module_dataflow(ctx)
        for qualname, info in sorted(flow.functions.items()):
            for node in iter_own_nodes(info.node):
                if not isinstance(node, ast.Call) or not isinstance(
                    node.func, ast.Attribute
                ):
                    continue
                if node.func.attr not in BLOCKING_METHODS:
                    continue
                ctor = _receiver_ctor(flow, info, node.func.value)
                if ctor not in SYNC_PRIMITIVE_CTORS:
                    continue
                if _has_timeout(node):
                    continue
                yield self.finding(
                    ctx, node,
                    f".{node.func.attr}() on a {ctor} without a timeout "
                    f"in {qualname}; a dead worker would hang the sweep "
                    "forever instead of raising BackendError",
                    method=node.func.attr,
                    ctor=ctor,
                    function=qualname,
                )
