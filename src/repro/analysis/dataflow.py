"""Per-module def-use dataflow: functions, call edges, attribute chains.

Built on :mod:`repro.analysis.symbols`, this is the shared layer the
C4xx / P5xx / K6xx rule packs consume.  For one :class:`~.context
.FileContext` it indexes:

* every function/method with its qualified name (``Class.method``,
  ``outer.<locals>.inner``), async-ness and decorator list;
* the intra-module call graph — ``self.m()`` resolves to ``Class.m``,
  bare names resolve through the symbol table to module functions, and
  anything imported resolves to its absolute dotted path;
* per-method ``self.<attr>`` read/write sets, with a transitive variant
  that follows ``self``-method calls (how K602 proves a ``SimSpec``
  field flows into ``to_run_spec``);
* statically-known constructor types of attributes and locals (``self._q
  = queue.Queue()`` -> ``queue.Queue``), which is how the concurrency
  pack tells a ``queue.Queue.get`` from a ``dict.get``.

The view is memoized on the file context (``ctx.dataflow_cache``) so the
three rule packs share one build per file.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .context import FileContext
from .symbols import Binding, Scope, SymbolTable, iter_own_nodes

_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


@dataclass
class FunctionInfo:
    """One function or method of the module."""

    qualname: str
    node: ast.AST
    is_async: bool
    scope: Scope
    class_name: Optional[str] = None
    #: decorator spellings, resolved to absolute dotted paths when the
    #: decorator was imported, else the source spelling (``staticmethod``)
    decorators: List[str] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.qualname.rsplit(".", 1)[-1]


@dataclass
class ClassInfo:
    """One class of the module and its directly-defined methods."""

    name: str
    node: ast.ClassDef
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)


@dataclass
class CallSite:
    """One call expression, resolved as far as statically possible."""

    node: ast.Call
    caller: str  #: qualname of the enclosing function ("" at module level)
    #: qualname when the target is a function/method of this module
    local: Optional[str] = None
    #: absolute dotted path when the target resolves through an import
    dotted: Optional[str] = None


class ModuleDataflow:
    """The def-use view of one parsed module (see module docstring)."""

    def __init__(self, ctx: FileContext) -> None:
        self.ctx = ctx
        self.symbols = SymbolTable(ctx.tree)
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self.calls: List[CallSite] = []
        self.calls_from: Dict[str, List[CallSite]] = {}
        self._qualname_of_node: Dict[ast.AST, str] = {}
        self._index_definitions(ctx.tree, class_name=None, prefix="")
        self._index_calls()

    # ------------------------------------------------------------------
    # definitions

    def _index_definitions(self, node: ast.AST, class_name: Optional[str],
                           prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, _FUNC_NODES):
                scope = self.symbols.scope_for(child)
                if scope is None:  # pragma: no cover - symbols missed it
                    continue
                qualname = scope.qualname()
                info = FunctionInfo(
                    qualname=qualname,
                    node=child,
                    is_async=isinstance(child, ast.AsyncFunctionDef),
                    scope=scope,
                    class_name=class_name,
                    decorators=[self._decorator_name(d)
                                for d in child.decorator_list],
                )
                self.functions[qualname] = info
                self._qualname_of_node[child] = qualname
                if class_name is not None and "." not in qualname.replace(
                    f"{class_name}.", "", 1
                ):
                    self.classes[class_name].methods[child.name] = info
                self._index_definitions(child, class_name=None,
                                        prefix=qualname)
            elif isinstance(child, ast.ClassDef):
                # nested classes are indexed under their plain name too;
                # module-level classes are what the rules care about
                self.classes.setdefault(
                    child.name, ClassInfo(name=child.name, node=child)
                )
                self._index_definitions(child, class_name=child.name,
                                        prefix=child.name)
            else:
                self._index_definitions(child, class_name=class_name,
                                        prefix=prefix)

    def _decorator_name(self, node: ast.expr) -> str:
        target = node.func if isinstance(node, ast.Call) else node
        dotted = self.ctx.resolve_name(target)
        if dotted is not None:
            return dotted
        parts: List[str] = []
        while isinstance(target, ast.Attribute):
            parts.insert(0, target.attr)
            target = target.value
        if isinstance(target, ast.Name):
            parts.insert(0, target.id)
        return ".".join(parts)

    # ------------------------------------------------------------------
    # call graph

    def _index_calls(self) -> None:
        for info in list(self.functions.values()):
            sites = [
                self._resolve_call(node, info)
                for node in iter_own_nodes(info.node)
                if isinstance(node, ast.Call)
            ]
            self.calls_from[info.qualname] = sites
            self.calls.extend(sites)

    def _resolve_call(self, call: ast.Call, info: FunctionInfo) -> CallSite:
        func = call.func
        local: Optional[str] = None
        dotted: Optional[str] = None
        if isinstance(func, ast.Name):
            binding = info.scope.lookup(func.id)
            if binding is not None and binding.kind in ("func", "class"):
                local = self._qualname_of_node.get(binding.node)
                if local is None and binding.kind == "class":
                    dotted = None  # local class construction; opaque here
            elif binding is None or binding.kind == "import":
                dotted = self.ctx.resolve_name(func)
        elif isinstance(func, ast.Attribute):
            if (
                isinstance(func.value, ast.Name)
                and func.value.id in ("self", "cls")
                and info.class_name is not None
            ):
                cls = self.classes.get(info.class_name)
                if cls is not None and func.attr in cls.methods:
                    local = cls.methods[func.attr].qualname
            else:
                dotted = self.ctx.resolve_name(func)
        return CallSite(node=call, caller=info.qualname, local=local,
                        dotted=dotted)

    def reachable(self, roots: Sequence[str], *,
                  skip_async_targets: bool = False) -> Set[str]:
        """Qualnames reachable from ``roots`` over intra-module call edges.

        ``skip_async_targets`` stops traversal *into* async functions:
        calling one from sync code only creates a coroutine object — the
        body runs wherever the coroutine is eventually awaited, which is
        exactly the distinction the thread-affinity rule needs.
        """
        seen: Set[str] = set()
        work = deque(q for q in roots if q in self.functions)
        while work:
            current = work.popleft()
            if current in seen:
                continue
            seen.add(current)
            for site in self.calls_from.get(current, ()):
                target = site.local
                if target is None or target in seen:
                    continue
                target_info = self.functions.get(target)
                if target_info is None:
                    continue
                if skip_async_targets and target_info.is_async:
                    continue
                work.append(target)
        return seen

    def call_paths_to(self, target: str,
                      roots: Sequence[str]) -> Optional[List[str]]:
        """One shortest root -> ... -> target call chain, if any exists."""
        parents: Dict[str, Optional[str]] = {}
        work = deque()
        for root in roots:
            if root in self.functions and root not in parents:
                parents[root] = None
                work.append(root)
        while work:
            current = work.popleft()
            if current == target:
                path = [current]
                while parents[path[0]] is not None:
                    path.insert(0, parents[path[0]])  # type: ignore[arg-type]
                return path
            for site in self.calls_from.get(current, ()):
                nxt = site.local
                if nxt is not None and nxt in self.functions and (
                    nxt not in parents
                ):
                    parents[nxt] = current
                    work.append(nxt)
        return None

    # ------------------------------------------------------------------
    # self.<attr> dataflow

    def attr_writes(self, qualname: str) -> Dict[str, ast.AST]:
        """``self.<attr>`` names assigned in the function, with one site."""
        info = self.functions.get(qualname)
        writes: Dict[str, ast.AST] = {}
        if info is None:
            return writes
        for node in iter_own_nodes(info.node):
            for attr, site in _self_attr_targets(node):
                writes.setdefault(attr, site)
        return writes

    def attr_reads(self, qualname: str) -> Set[str]:
        """``self.<attr>`` names loaded anywhere in the function."""
        info = self.functions.get(qualname)
        reads: Set[str] = set()
        if info is None:
            return reads
        for node in iter_own_nodes(info.node):
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.ctx, ast.Load)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
            ):
                reads.add(node.attr)
        return reads

    def attr_reads_transitive(self, class_name: str, method: str) -> Set[str]:
        """Reads of :meth:`attr_reads`, following ``self.method()`` calls.

        This is the "attribute chain through ``self``" primitive: a field
        read by a helper the entry method calls still counts as flowing
        out of the entry method.
        """
        cls = self.classes.get(class_name)
        if cls is None or method not in cls.methods:
            return set()
        reads: Set[str] = set()
        seen: Set[str] = set()
        work = deque([cls.methods[method].qualname])
        while work:
            current = work.popleft()
            if current in seen:
                continue
            seen.add(current)
            reads |= self.attr_reads(current)
            for site in self.calls_from.get(current, ()):
                if site.local is not None and site.local.startswith(
                    f"{class_name}."
                ):
                    work.append(site.local)
        return reads

    def self_attr_types(self, class_name: str) -> Dict[str, str]:
        """Attribute -> constructor dotted path, where statically known.

        Scans every method of the class for ``self.X = Ctor(...)`` (plain
        or annotated) where ``Ctor`` resolves through the import map;
        e.g. ``{"_completions": "queue.Queue"}``.  Later assignments of
        the same attribute overwrite earlier ones method-by-method in
        definition order — good enough for "is this a sync primitive".
        """
        cls = self.classes.get(class_name)
        types: Dict[str, str] = {}
        if cls is None:
            return types
        for info in cls.methods.values():
            for node in iter_own_nodes(info.node):
                value = getattr(node, "value", None)
                if not isinstance(node, (ast.Assign, ast.AnnAssign)) or (
                    not isinstance(value, ast.Call)
                ):
                    continue
                dotted = self.ctx.resolve_name(value.func)
                if dotted is None:
                    continue
                targets = (
                    node.targets if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        types[target.attr] = dotted
        return types

    # ------------------------------------------------------------------
    # local def-use

    def local_value(self, info: FunctionInfo,
                    name: str) -> Optional[ast.expr]:
        """The RHS expression last bound to ``name`` in ``info``'s scope."""
        binding = info.scope.lookup(name)
        return binding.value if binding is not None else None

    def name_used_after(self, info: FunctionInfo, name: str,
                        lineno: int) -> bool:
        """Is ``name`` loaded anywhere in the function after ``lineno``?"""
        for node in iter_own_nodes(info.node):
            if (
                isinstance(node, ast.Name)
                and node.id == name
                and isinstance(node.ctx, ast.Load)
                and node.lineno > lineno
            ):
                return True
        return False


def _self_attr_targets(
    node: ast.AST,
) -> Iterator[Tuple[str, ast.AST]]:
    """``(attr, site)`` for each ``self.<attr>`` assignment target."""
    targets: List[ast.AST] = []
    if isinstance(node, ast.Assign):
        targets = list(node.targets)
    elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
        targets = [node.target]
    for target in targets:
        for element in _flatten_target(target):
            if (
                isinstance(element, ast.Attribute)
                and isinstance(element.value, ast.Name)
                and element.value.id == "self"
            ):
                yield element.attr, node


def _flatten_target(target: ast.AST) -> Iterator[ast.AST]:
    if isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _flatten_target(element)
    elif isinstance(target, ast.Starred):
        yield from _flatten_target(target.value)
    else:
        yield target


def module_dataflow(ctx: FileContext) -> ModuleDataflow:
    """The (memoized) dataflow view of ``ctx``.

    The three rule packs all call this; the build happens once per file
    per analysis run and is cached on ``ctx.dataflow_cache``.
    """
    cached = ctx.dataflow_cache
    if isinstance(cached, ModuleDataflow):
        return cached
    flow = ModuleDataflow(ctx)
    ctx.dataflow_cache = flow
    return flow
