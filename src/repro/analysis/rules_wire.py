"""P-rules: pickle/wire safety for the RSWP protocol and process pool.

Everything that crosses the RSWP wire (``backends/wire.py``) or the
process-pool boundary travels by pickle.  An unpicklable payload — a
lambda, a closure, an open file handle — raises only once a sweep is
actually distributed, often on another machine (P501).  The payload
*types* are a contract: frozen dataclasses whose fields are transitively
picklable, provable from the source (P502, declared by
``WIRE_SPEC_TYPES`` in the wire module).  And the frame vocabulary
itself drifts silently unless every tag declared in ``FRAME_TYPES`` is
produced and dispatched on *both* ends of the wire (P503, modeled on the
S304 schema-coverage proof).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .context import FileContext, ProjectContext
from .dataflow import module_dataflow
from .findings import Finding
from .registry import Rule, register_rule

#: constructors whose results must never be pickled (handles bound to
#: this process: files, sockets, event loops)
HANDLE_CTORS = frozenset(
    {
        "open",
        "socket.socket",
        "socket.create_connection",
        "asyncio.new_event_loop",
        "asyncio.get_event_loop",
        "asyncio.get_running_loop",
        "threading.Lock",
        "threading.RLock",
        "threading.Thread",
    }
)

#: call targets whose arguments cross a pickle boundary; matched by
#: dotted suffix so fixtures with a different package prefix still hit
_WIRE_CALL_SUFFIXES = (".wire.send", ".wire.write_frame", ".wire.pack",
                      "pickle.dumps", "pickle.dump")

#: builtin scalar annotations that always pickle
_PICKLABLE_LEAVES = frozenset(
    {"int", "float", "str", "bool", "bytes", "complex", "None", "NoneType"}
)

#: generic containers: picklable iff their parameters are
_CONTAINER_HEADS = frozenset(
    {
        "Optional", "Union", "Tuple", "List", "Dict", "Set", "FrozenSet",
        "Sequence", "Mapping", "Iterable", "tuple", "list", "dict", "set",
        "frozenset",
    }
)


def _is_wire_call(ctx: FileContext, call: ast.Call) -> bool:
    dotted = ctx.resolve_name(call.func)
    if dotted is not None and dotted.endswith(_WIRE_CALL_SUFFIXES):
        return True
    # ExecutionBackend.submit / Executor.submit style method calls inside
    # the experiments layer: their arguments reach a worker process
    if (
        isinstance(call.func, ast.Attribute)
        and call.func.attr == "submit"
        and ctx.module is not None
        and ctx.module.startswith("repro.experiments")
    ):
        return True
    return False


@register_rule
class UnpicklablePayloadRule(Rule):
    """P501: unpicklable value in a wire/pool payload expression.

    At every call whose arguments cross a pickle boundary
    (``wire.send``/``write_frame``/``pack``, ``pickle.dumps``, and
    ``.submit(...)`` in the experiments layer), the payload expressions
    are scanned for lambdas, references to *nested* functions or classes
    (closures — module-level callables pickle by reference and pass), and
    names bound to open handles (``open(...)``, sockets, event loops).
    """

    RULE_ID = "P501"
    RULE_DOC = (
        "lambda/closure/open-handle in a payload that crosses the "
        "pickle boundary; it would raise mid-sweep on a worker"
    )
    scope = "file"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        flow = module_dataflow(ctx)
        for qualname, info in sorted(flow.functions.items()):
            for site in flow.calls_from.get(qualname, ()):
                if not _is_wire_call(ctx, site.node):
                    continue
                for payload in list(site.node.args) + [
                    kw.value for kw in site.node.keywords
                ]:
                    yield from self._scan_payload(
                        ctx, flow, info, payload, qualname
                    )

    def _scan_payload(self, ctx, flow, info, payload: ast.expr,
                      qualname: str) -> Iterator[Finding]:
        for node in ast.walk(payload):
            if isinstance(node, ast.Lambda):
                yield self.finding(
                    ctx, node,
                    f"lambda in a pickled payload (in {qualname}); "
                    "lambdas cannot cross the wire — use a module-level "
                    "function or a declarative spec",
                    function=qualname,
                )
            elif isinstance(node, ast.Call):
                dotted = ctx.resolve_name(node.func)
                if dotted in HANDLE_CTORS or (
                    isinstance(node.func, ast.Name)
                    and node.func.id == "open"
                    and info.scope.lookup("open") is None
                ):
                    yield self.finding(
                        ctx, node,
                        f"process-bound handle ({dotted or 'open'}) "
                        f"constructed inside a pickled payload (in "
                        f"{qualname})",
                        function=qualname,
                    )
            elif isinstance(node, ast.Name) and isinstance(
                node.ctx, ast.Load
            ):
                yield from self._scan_name(ctx, info, node, qualname)

    def _scan_name(self, ctx, info, node: ast.Name,
                   qualname: str) -> Iterator[Finding]:
        binding = info.scope.lookup(node.id)
        if binding is None or binding.owner is None:
            return
        nested = binding.owner.is_function_like
        if binding.kind in ("func", "class") and nested:
            what = "function" if binding.kind == "func" else "class"
            yield self.finding(
                ctx, node,
                f"locally-defined {what} {node.id!r} in a pickled payload "
                f"(in {qualname}); nested definitions cannot be pickled "
                "by reference — move it to module level",
                name=node.id,
                function=qualname,
            )
            return
        value = binding.value
        if isinstance(value, ast.Lambda):
            yield self.finding(
                ctx, node,
                f"{node.id!r} is bound to a lambda and pickled in "
                f"{qualname}; lambdas cannot cross the wire",
                name=node.id,
                function=qualname,
            )
        elif isinstance(value, ast.Call):
            dotted = ctx.resolve_name(value.func)
            if dotted in HANDLE_CTORS or (
                isinstance(value.func, ast.Name)
                and value.func.id == "open"
                and info.scope.lookup("open") is None
            ):
                yield self.finding(
                    ctx, node,
                    f"{node.id!r} holds a process-bound handle "
                    f"({dotted or 'open'}) and is pickled in {qualname}",
                    name=node.id,
                    function=qualname,
                )


# ----------------------------------------------------------------------
# shared class-resolution helpers (P502 + K601 both chase annotations)


def find_wire_module(project: ProjectContext,
                     constant: str) -> Optional[Tuple[FileContext, ast.AST]]:
    """The backends wire module declaring ``constant``, plus its node."""
    for ctx in project.repro_files():
        if ctx.module is None or not ctx.module.endswith(".wire"):
            continue
        node = find_constant(ctx, constant)
        if node is not None:
            return ctx, node
    return None


def find_constant(ctx: FileContext, name: str) -> Optional[ast.AST]:
    """The module-level assignment node of ``name``, if present."""
    for node in ast.iter_child_nodes(ctx.tree):
        targets: List[ast.AST] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, ast.AnnAssign):
            targets = [node.target]
        if any(isinstance(t, ast.Name) and t.id == name for t in targets):
            return node
    return None


def resolve_class(
    project: ProjectContext, dotted: str,
    _seen: Optional[Set[str]] = None,
) -> Optional[Tuple[FileContext, ast.ClassDef]]:
    """``repro.x.Y`` -> the defining module and ``ClassDef``.

    Chases re-exports: ``repro.core.ExploreConfig`` resolves through the
    package ``__init__``'s import map to
    ``repro.core.interval_explore.ExploreConfig``.
    """
    seen = _seen if _seen is not None else set()
    if dotted in seen:
        return None
    seen.add(dotted)
    module, _, name = dotted.rpartition(".")
    if not module:
        return None
    ctx = project.find_module(module)
    if ctx is None:
        return None
    for node in ast.iter_child_nodes(ctx.tree):
        if isinstance(node, ast.ClassDef) and node.name == name:
            return ctx, node
    re_export = ctx.import_map.get(name)
    if re_export is not None:
        return resolve_class(project, re_export, seen)
    return None


def resolve_annotation_classes(
    project: ProjectContext, ctx: FileContext, annotation: ast.expr,
) -> Tuple[List[str], List[str]]:
    """Split an annotation into (repro class dotted paths, problems).

    Walks ``Optional``/``Union``/container generics down to their leaves.
    A leaf is fine when it is a picklable builtin scalar or a resolvable
    class; ``object`` and unresolvable names come back as problems.
    """
    classes: List[str] = []
    problems: List[str] = []
    _walk_annotation(project, ctx, annotation, classes, problems)
    return classes, problems


def _walk_annotation(project, ctx: FileContext, node: ast.expr,
                     classes: List[str], problems: List[str]) -> None:
    if isinstance(node, ast.Constant):
        if node.value is None or node.value is Ellipsis:
            return
        if isinstance(node.value, str):  # quoted forward reference
            try:
                parsed = ast.parse(node.value, mode="eval").body
            except SyntaxError:
                problems.append(f"unparseable annotation {node.value!r}")
                return
            _walk_annotation(project, ctx, parsed, classes, problems)
        return
    if isinstance(node, ast.Subscript):
        head = _annotation_head(node.value)
        if head in _CONTAINER_HEADS:
            inner = node.slice
            elements = (
                inner.elts if isinstance(inner, ast.Tuple) else [inner]
            )
            for element in elements:
                _walk_annotation(project, ctx, element, classes, problems)
            return
        problems.append(f"unknown generic {head or ast.dump(node.value)}")
        return
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        _walk_annotation(project, ctx, node.left, classes, problems)
        _walk_annotation(project, ctx, node.right, classes, problems)
        return
    head = _annotation_head(node)
    if head is None:
        problems.append(f"opaque annotation {type(node).__name__}")
        return
    if head == "object":
        problems.append(
            "untyped 'object' (cannot prove the value picklable/stable)"
        )
        return
    if head in _PICKLABLE_LEAVES or head in _CONTAINER_HEADS:
        return
    resolved = _resolve_local_or_imported(project, ctx, node, head)
    if resolved is None:
        problems.append(f"unresolvable type {head!r}")
    else:
        classes.append(resolved)


def _annotation_head(node: ast.expr) -> Optional[str]:
    """Base spelling of an annotation: ``typing.Optional`` -> ``Optional``,
    ``ProcessorConfig`` -> ``ProcessorConfig``."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _resolve_local_or_imported(project, ctx: FileContext, node: ast.expr,
                               head: str) -> Optional[str]:
    """Dotted path of the class an annotation names, if locatable."""
    if ctx.module is not None:
        for child in ast.iter_child_nodes(ctx.tree):
            if isinstance(child, ast.ClassDef) and child.name == head:
                return f"{ctx.module}.{head}"
    dotted = ctx.resolve_name(node) or ctx.import_map.get(head)
    if dotted is not None and resolve_class(project, dotted) is not None:
        return dotted
    return None


def is_frozen_dataclass(cls: ast.ClassDef) -> bool:
    for dec in cls.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        name = target.attr if isinstance(target, ast.Attribute) else (
            target.id if isinstance(target, ast.Name) else ""
        )
        if name != "dataclass":
            continue
        if isinstance(dec, ast.Call):
            for kw in dec.keywords:
                if kw.arg == "frozen" and isinstance(
                    kw.value, ast.Constant
                ):
                    return bool(kw.value.value)
        return False  # bare @dataclass: not frozen
    return False


def is_dataclass(cls: ast.ClassDef) -> bool:
    for dec in cls.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        name = target.attr if isinstance(target, ast.Attribute) else (
            target.id if isinstance(target, ast.Name) else ""
        )
        if name == "dataclass":
            return True
    return False


def class_fields(cls: ast.ClassDef) -> Dict[str, ast.AnnAssign]:
    """Public dataclass field declarations, in source order."""
    fields: Dict[str, ast.AnnAssign] = {}
    for stmt in cls.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(
            stmt.target, ast.Name
        ):
            if not stmt.target.id.startswith("_"):
                fields[stmt.target.id] = stmt
    return fields


def field_has_flag(decl: ast.AnnAssign, flag: str) -> bool:
    """Is the field declared with ``field(<flag>=False)`` (repr/compare)?"""
    value = decl.value
    if not isinstance(value, ast.Call):
        return False
    name = value.func
    fname = name.attr if isinstance(name, ast.Attribute) else (
        name.id if isinstance(name, ast.Name) else ""
    )
    if fname != "field":
        return False
    for kw in value.keywords:
        if kw.arg == flag and isinstance(kw.value, ast.Constant):
            return kw.value.value is False
    return False


@register_rule
class WireTypeRule(Rule):
    """P502: wire payload types must be transitively picklable, frozen.

    The wire module declares its payload roots in ``WIRE_SPEC_TYPES``
    (dotted class paths).  Each root — and every class reachable through
    its field annotations — must be a ``@dataclass(frozen=True)`` whose
    fields are picklable builtin scalars, containers of such, or other
    checked dataclasses.  ``object`` annotations fail: they hide exactly
    the unpicklable values P501 hunts at call sites.
    """

    RULE_ID = "P502"
    RULE_DOC = (
        "wire payload type is not provably a frozen dataclass with "
        "transitively picklable fields"
    )
    scope = "project"

    def check(self, project: ProjectContext) -> Iterator[Finding]:
        found = find_wire_module(project, "WIRE_SPEC_TYPES")
        if found is None:
            return
        wire_ctx, decl = found
        roots = _string_tuple(decl)
        if not roots:
            yield self.finding(
                wire_ctx, decl,
                "WIRE_SPEC_TYPES is declared but names no types; the "
                "wire payload contract is unchecked",
            )
            return
        checked: Set[str] = set()
        queue = list(roots)
        while queue:
            dotted = queue.pop(0)
            if dotted in checked:
                continue
            checked.add(dotted)
            resolved = resolve_class(project, dotted)
            if resolved is None:
                yield self.finding(
                    wire_ctx, decl,
                    f"WIRE_SPEC_TYPES names {dotted!r} but no such class "
                    "is in the analysed tree",
                    type=dotted,
                )
                continue
            cls_ctx, cls = resolved
            if not is_frozen_dataclass(cls):
                yield self.finding(
                    cls_ctx, cls,
                    f"{dotted} crosses the wire but is not a "
                    "@dataclass(frozen=True); wire types must be "
                    "immutable value objects",
                    type=dotted,
                )
            for name, field_decl in class_fields(cls).items():
                classes, problems = resolve_annotation_classes(
                    project, cls_ctx, field_decl.annotation
                )
                queue.extend(classes)
                for problem in problems:
                    yield self.finding(
                        cls_ctx, field_decl,
                        f"{dotted}.{name}: {problem}; every wire field "
                        "must be provably picklable from its annotation",
                        type=dotted,
                        field=name,
                    )


def _string_tuple(decl: ast.AST) -> List[str]:
    value = getattr(decl, "value", None)
    if not isinstance(value, (ast.Tuple, ast.List)):
        return []
    return [
        e.value for e in value.elts
        if isinstance(e, ast.Constant) and isinstance(e.value, str)
    ]


@register_rule
class FrameDispatchRule(Rule):
    """P503: every wire frame tag needs both a producer and a dispatcher.

    ``FRAME_TYPES`` in the wire module is the machine-readable frame
    vocabulary (tag -> direction).  Each declared tag must appear as a
    string literal in *both* the coordinator module (``.distributed``)
    and the worker module (``.worker``) of the same package — a tag one
    side sends and the other never matches is schema drift that
    manifests as a hung or mis-attributed sweep.  Conversely, any
    ``{"type": "..."}`` frame built in those modules with an undeclared
    tag fails too.
    """

    RULE_ID = "P503"
    RULE_DOC = (
        "wire frame tag not handled by both coordinator and worker "
        "dispatch (or sent without being declared)"
    )
    scope = "project"

    def check(self, project: ProjectContext) -> Iterator[Finding]:
        found = find_wire_module(project, "FRAME_TYPES")
        if found is None:
            return
        wire_ctx, decl = found
        tags = _dict_string_keys(decl)
        if not tags:
            yield self.finding(
                wire_ctx, decl,
                "FRAME_TYPES declares no frame tags; the protocol "
                "vocabulary is unchecked",
            )
            return
        package = wire_ctx.module.rsplit(".", 1)[0] if wire_ctx.module else ""
        sides = {
            "coordinator": project.find_module(f"{package}.distributed"),
            "worker": project.find_module(f"{package}.worker"),
        }
        for side, ctx in sorted(sides.items()):
            if ctx is None:
                yield self.finding(
                    wire_ctx, decl,
                    f"FRAME_TYPES is declared but the {side} module "
                    f"({package}.{'distributed' if side == 'coordinator' else 'worker'}) "
                    "is not in the analysed tree to check against",
                    side=side,
                )
                continue
            literals = _string_literals(ctx)
            for tag, key_node in sorted(tags.items()):
                if tag not in literals:
                    yield self.finding(
                        wire_ctx, key_node,
                        f"frame tag {tag!r} is declared in FRAME_TYPES "
                        f"but never appears in the {side} module "
                        f"({ctx.module}); one side of the protocol "
                        "cannot handle it",
                        tag=tag,
                        side=side,
                    )
            for tag, site in sorted(_produced_tags(ctx).items()):
                if tag not in tags:
                    yield self.finding(
                        ctx, site,
                        f"frame tag {tag!r} is sent by the {side} but "
                        "not declared in FRAME_TYPES; declare it so both "
                        "dispatch arms are provable",
                        tag=tag,
                        side=side,
                    )


def _dict_string_keys(decl: ast.AST) -> Dict[str, ast.AST]:
    value = getattr(decl, "value", None)
    if not isinstance(value, ast.Dict):
        return {}
    return {
        key.value: key
        for key in value.keys
        if isinstance(key, ast.Constant) and isinstance(key.value, str)
    }


def _string_literals(ctx: FileContext) -> Set[str]:
    return {
        node.value
        for node in ast.walk(ctx.tree)
        if isinstance(node, ast.Constant) and isinstance(node.value, str)
    }


def _produced_tags(ctx: FileContext) -> Dict[str, ast.AST]:
    """Tags of ``{"type": <literal>, ...}`` dicts built in the module."""
    produced: Dict[str, ast.AST] = {}
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Dict):
            continue
        for key, value in zip(node.keys, node.values):
            if (
                isinstance(key, ast.Constant) and key.value == "type"
                and isinstance(value, ast.Constant)
                and isinstance(value.value, str)
            ):
                produced.setdefault(value.value, node)
    return produced
