"""The finding record every rule emits, plus its JSON spelling."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    ``path`` is repo-relative (or as given on the command line) so findings
    are stable across machines; ``line``/``col`` are 1-based/0-based to
    match compiler convention.  ``detail`` carries rule-specific context
    (e.g. the missing field name) for the JSON output.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str
    detail: Dict[str, Any] = field(default_factory=dict, compare=False)

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def render(self) -> str:
        return f"{self.location()}: {self.rule} {self.message}"

    def to_json(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }
        if self.detail:
            payload["detail"] = self.detail
        return payload

    def baseline_key(self) -> "tuple[str, str, str]":
        """The identity used for baseline matching.

        Deliberately excludes the line number: a baselined finding should
        survive unrelated edits that shift it a few lines, and a finding
        that genuinely changes (new message) should resurface.
        """
        return (self.rule, self.path, self.message)
