"""Committed-baseline support.

Adopting a new analyzer on a living tree must not require fixing every
historical finding in one PR.  A baseline file records the findings that
existed at adoption time; ``python -m repro.analysis --baseline FILE``
subtracts them, so only *new* findings fail the build, and
``--write-baseline`` regenerates the file once debt is paid down.

Matching is by ``(rule, path, message)`` — line numbers are deliberately
excluded so unrelated edits that shift a baselined finding do not
resurface it — and is count-aware: two identical findings with one
baseline entry means one new finding.
"""

from __future__ import annotations

import json
import pathlib
from collections import Counter
from typing import Dict, List, Tuple

from .findings import Finding

BASELINE_VERSION = 1

#: default baseline location, repo-root relative
DEFAULT_BASELINE_NAME = "analysis-baseline.json"


def load_baseline(path: pathlib.Path) -> Counter:
    """The baseline as a multiset of finding keys (empty if absent)."""
    if not path.exists():
        return Counter()
    payload = json.loads(path.read_text(encoding="utf-8"))
    if payload.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"unsupported baseline version {payload.get('version')!r} in "
            f"{path} (expected {BASELINE_VERSION})"
        )
    keys = Counter()
    for entry in payload.get("entries", []):
        key = (entry["rule"], entry["path"], entry["message"])
        keys[key] += int(entry.get("count", 1))
    return keys


def write_baseline(path: pathlib.Path, findings: List[Finding]) -> None:
    """Persist ``findings`` as the new baseline (sorted, count-collapsed)."""
    counts: Counter = Counter(f.baseline_key() for f in findings)
    entries = [
        {"rule": rule, "path": fpath, "message": message, "count": count}
        for (rule, fpath, message), count in sorted(counts.items())
    ]
    payload = {"version": BASELINE_VERSION, "entries": entries}
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def split_by_baseline(
    findings: List[Finding], baseline: Counter
) -> Tuple[List[Finding], List[Finding]]:
    """Partition into (new, baselined) against the baseline multiset."""
    remaining = Counter(baseline)
    new: List[Finding] = []
    old: List[Finding] = []
    for finding in findings:
        key = finding.baseline_key()
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            old.append(finding)
        else:
            new.append(finding)
    return new, old


def stale_entries(findings: List[Finding], baseline: Counter) -> Dict[Tuple, int]:
    """Baseline entries no longer matched by any finding (debt paid)."""
    present: Counter = Counter(f.baseline_key() for f in findings)
    stale: Dict[Tuple, int] = {}
    for key, count in baseline.items():
        unused = count - min(count, present.get(key, 0))
        if unused:
            stale[key] = unused
    return stale
