"""SARIF 2.1.0 serialization of analysis findings.

SARIF (Static Analysis Results Interchange Format) is the schema GitHub
code scanning ingests, so ``--format sarif`` lets the CI analysis job
surface findings as inline PR annotations instead of a wall of log text.
Only the fields code scanning actually reads are emitted — one ``run``
with a rule catalogue and one ``result`` per finding.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

from .findings import Finding
from .registry import all_rules

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def _rule_descriptor(rule_id: str, doc: str) -> Dict[str, Any]:
    # SARIF wants a short one-liner and a full description; our RULE_DOC
    # first line serves as both short text and the help head.
    head = doc.strip().splitlines()[0] if doc.strip() else rule_id
    return {
        "id": rule_id,
        "shortDescription": {"text": head},
        "fullDescription": {"text": doc.strip() or head},
        "defaultConfiguration": {"level": "error"},
    }


def _result(finding: Finding) -> Dict[str, Any]:
    result: Dict[str, Any] = {
        "ruleId": finding.rule,
        "level": "error",
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path,
                        "uriBaseId": "%SRCROOT%",
                    },
                    "region": {
                        "startLine": finding.line,
                        # findings use 0-based columns (compiler
                        # convention); SARIF columns are 1-based
                        "startColumn": finding.col + 1,
                    },
                }
            }
        ],
    }
    if finding.detail:
        result["properties"] = dict(finding.detail)
    return result


def to_sarif(findings: Sequence[Finding]) -> Dict[str, Any]:
    """Render ``findings`` as a complete SARIF 2.1.0 log object."""
    rules: List[Dict[str, Any]] = [
        _rule_descriptor(rule.RULE_ID, rule.RULE_DOC) for rule in all_rules()
    ]
    known = {r["id"] for r in rules}
    # P000 (parse error) is synthesized by the runner, not registered
    for finding in findings:
        if finding.rule not in known:
            rules.append(_rule_descriptor(finding.rule, "file does not parse"))
            known.add(finding.rule)
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro.analysis",
                        "rules": rules,
                    }
                },
                "results": [_result(f) for f in findings],
                "columnKind": "utf16CodeUnits",
            }
        ],
    }
