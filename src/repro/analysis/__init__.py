"""Static-analysis pass enforcing the reproduction's correctness invariants.

The dynamic layers built in earlier PRs — golden fingerprints, sampled
invariant checking, the naive-vs-event equivalence oracle — catch
determinism and conservation bugs *at run time*, after a sweep has already
burned CPU.  This package catches the same classes of bug *at lint time*,
from the source alone:

* **D-rules (determinism)** — unseeded ``random`` calls, wall-clock reads
  inside the simulator model, iteration over sets in hot paths, ``id()``
  used for ordering, ad-hoc ``os.environ`` reads.
* **L-rules (layering)** — the one-directional import architecture
  (``workloads/frontend/clusters/interconnect/memory -> pipeline -> core
  -> experiments -> api -> cli``) and the ban on the deprecated pre-facade
  call spellings now that :mod:`repro.api` is the stable surface.
* **S-rules (stats/config)** — every :class:`~repro.stats.SimStats` field
  must be handled by ``SimStats.merge`` (so new counters cannot silently
  vanish in parallel sweeps), and ``simulate``/``sweep``/``SimSpec``
  keyword usage plus topology/policy/workload string literals are checked
  against the facade vocabulary.

Run it with ``python -m repro.analysis [paths...]``; see
``docs/ANALYSIS.md`` for the rule catalogue, suppression syntax
(``# repro: allow[RULE]``), and the baseline mechanism.

This package is deliberately self-contained (standard library only, no
imports from the simulator) so it can lint a broken tree.
"""

from .findings import Finding
from .registry import Rule, all_rules, get_rule, register_rule
from .runner import AnalysisResult, analyze_paths

__all__ = [
    "AnalysisResult",
    "Finding",
    "Rule",
    "all_rules",
    "analyze_paths",
    "get_rule",
    "register_rule",
]
