"""Shared slot-reservation primitive for bandwidth-limited resources.

Network links, cache-bank ports, and the L2 port all grant a bounded number
of operations per cycle.  Requests arrive out of time order (the simulator
schedules communication lazily, at first use), so a monotone next-free
counter would let one far-future booking starve earlier slots.
:class:`SlotReserver` books the first genuinely free cycle at or after the
requested one.
"""

from __future__ import annotations

from typing import Dict, List


class SlotReserver:
    """Per-resource calendar of booked cycles with bounded capacity."""

    def __init__(self, resources: int, capacity_per_slot: int = 1) -> None:
        if resources < 1 or capacity_per_slot < 1:
            raise ValueError("resources and capacity_per_slot must be positive")
        self.resources = resources
        self.capacity = capacity_per_slot
        self._booked: List[Dict[int, int]] = [{} for _ in range(resources)]

    def reserve(self, resource: int, earliest: int) -> int:
        """Book and return the first cycle >= ``earliest`` with capacity."""
        calendar = self._booked[resource]
        cycle = earliest
        if self.capacity == 1:
            while cycle in calendar:
                cycle += 1
            calendar[cycle] = 1
        else:
            while calendar.get(cycle, 0) >= self.capacity:
                cycle += 1
            calendar[cycle] = calendar.get(cycle, 0) + 1
        return cycle

    def occupancy(self, resource: int, cycle: int) -> int:
        return self._booked[resource].get(cycle, 0)

    def reset(self) -> None:
        self._booked = [{} for _ in range(self.resources)]
