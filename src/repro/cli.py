"""Command-line interface.

Examples::

    python -m repro list                          # the nine benchmarks
    python -m repro run gzip --clusters 4         # one static simulation
    python -m repro run swim --controller explore # dynamic reconfiguration
    python -m repro run swim --controller explore --trace out/  # + trace
    python -m repro figure3 --length 20000        # regenerate an exhibit
    python -m repro figure5 --jobs 4 --resume     # restart a killed sweep
    python -m repro table4 --benchmarks swim,crafty

The static-analysis pass is a separate entry point (it must work even on
an import-broken tree): ``python -m repro.analysis`` — see
``docs/ANALYSIS.md``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from .api import simulate
from .experiments import (
    fig_multiprog,
    fig_resilience,
    figure3,
    figure5,
    figure6,
    figure7,
    figure8,
    print_fig_multiprog,
    print_fig_resilience,
    print_figure3,
    print_figure5,
    print_figure6,
    print_figure7,
    print_figure8,
    print_table3,
    print_table4,
    table3,
    table4,
)
from .errors import SweepError, SweepInterrupted
from .experiments.reporting import format_failure_table, format_sweep_metrics
from .experiments.sweep import SweepConfig, SweepRunner, default_cache_dir
from .workloads.profiles import BENCHMARK_NAMES, PAPER_TABLE3, get_profile

_EXHIBITS = {
    "figure3": (figure3, print_figure3),
    "figure5": (figure5, print_figure5),
    "figure6": (figure6, print_figure6),
    "figure7": (figure7, print_figure7),
    "figure8": (figure8, print_figure8),
    "table3": (table3, print_table3),
    "table4": (table4, print_table4),
    "fig_multiprog": (fig_multiprog, print_fig_multiprog),
    "fig_resilience": (fig_resilience, print_fig_resilience),
}

_MACHINES = ("ring", "grid", "decentralized", "monolithic")


def _parse_benchmarks(spec: Optional[str]) -> Sequence[str]:
    if not spec:
        return BENCHMARK_NAMES
    names = tuple(s.strip() for s in spec.split(",") if s.strip())
    for n in names:
        if n not in BENCHMARK_NAMES:
            raise SystemExit(f"unknown benchmark {n!r}; choose from {BENCHMARK_NAMES}")
    return names


_EPILOG = """\
sweep execution flags (every exhibit command):
  --jobs N --no-cache --timeout SECONDS      parallelism and caching
  --backend serial|process-pool|distributed|batch  how specs execute (auto)
  --workers LANES / --lanes LANES            distributed lanes, e.g. "local,4"
                                             or "hostA:9000,8;hostB:9000,8"
  --batch-size N                             lockstep simulations per process
                                             (implies --backend batch)
  --metrics-json PATH                        sweep metrics snapshot as JSON
  --journal PATH / --resume                  checkpoint + restart a killed sweep
  --trace DIR                                per-run timings + Perfetto trace

multiprogrammed runs:
  python -m repro fig_multiprog              arbiters x fabrics weighted-speedup
  python -m repro fig_multiprog --benchmarks gzip,swim,mgrid

architectural faults:
  python -m repro fig_resilience             IPC vs fault rate, topologies x
                                             controllers (--benchmarks names
                                             the one carrier benchmark)

other tools:
  python -m repro.analysis [PATH ...]        static-analysis pass: determinism
                                             (D1xx), layering (L2xx), and
                                             stats/vocabulary (S3xx) rules

docs: docs/SWEEPS.md (sweep engine), docs/OBSERVABILITY.md (tracing),
docs/MULTIPROG.md (co-scheduling), docs/ANALYSIS.md (linter),
docs/ARCHITECTURE.md (package map)
"""


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Clustered-processor reconfiguration reproduction (ISCA 2003)",
        epilog=_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the nine benchmark profiles")

    run = sub.add_parser("run", help="simulate one benchmark")
    run.add_argument("benchmark", choices=BENCHMARK_NAMES)
    run.add_argument("--length", type=int, default=30_000)
    run.add_argument("--seed", type=int, default=7)
    run.add_argument("--clusters", type=int, default=16,
                     help="active clusters for the static controller")
    run.add_argument("--machine", choices=_MACHINES, default="ring")
    run.add_argument(
        "--controller",
        choices=["static", "explore", "no-explore", "finegrain", "subroutine"],
        default="static",
    )
    run.add_argument("--warmup", type=int, default=4_000)
    run.add_argument("--trace", default=None, metavar="DIR",
                     help="write structured trace output (events.jsonl, "
                          "timeline.csv, Perfetto trace.json) to DIR")

    for name in _EXHIBITS:
        ex = sub.add_parser(name, help=f"regenerate {name}")
        ex.add_argument("--benchmarks", default="",
                        help="comma-separated subset (default: all nine)")
        ex.add_argument("--length", type=int, default=None,
                        help="trace length (default: 60000 x REPRO_TRACE_SCALE)")
        ex.add_argument("--jobs", type=int, default=None,
                        help="worker processes for the sweep "
                             "(default: REPRO_JOBS or cpu_count-1)")
        ex.add_argument("--backend", default="auto",
                        choices=["auto", "serial", "process-pool",
                                 "distributed", "batch"],
                        help="execution backend (default: auto — "
                             "REPRO_SWEEP_BACKEND, else distributed when "
                             "lanes are given, else batch when a batch "
                             "size is given, else serial/process-pool "
                             "by job count)")
        ex.add_argument("--batch-size", type=int, default=None,
                        metavar="N", dest="batch_size",
                        help="lockstep simulations per process for the "
                             "batch backend (implies --backend batch; "
                             "composes with --jobs)")
        ex.add_argument("--workers", "--lanes", dest="lanes", default=None,
                        metavar="LANES",
                        help="worker lanes for the distributed backend: "
                             "a count (\"4\"), \"local,N\", or "
                             "\"host:port,slots\" entries joined by ';' "
                             "(default: REPRO_LANES)")
        ex.add_argument("--no-cache", action="store_true",
                        help="bypass the on-disk result cache "
                             "(REPRO_CACHE_DIR or ~/.cache/repro)")
        ex.add_argument("--timeout", type=float, default=None,
                        help="per-run timeout in seconds")
        ex.add_argument("--metrics-json", default=None, metavar="PATH",
                        help="write sweep metrics (cache hits, latency "
                             "percentiles, utilization) as JSON")
        ex.add_argument("--journal", default=None, metavar="PATH",
                        help="append every completed run to this JSONL "
                             "checkpoint journal (default with --resume: "
                             "<cache dir>/journals/<exhibit>.jsonl)")
        ex.add_argument("--resume", action="store_true",
                        help="skip runs already completed in the journal "
                             "(restart a killed sweep where it died)")
        ex.add_argument("--trace", default=None, metavar="DIR",
                        help="write per-run sweep timings (sweep_metrics.json)"
                             " and a Perfetto worker-utilization trace "
                             "(sweep_trace.json) to DIR")
    return parser


def _cmd_list() -> int:
    for name in BENCHMARK_NAMES:
        profile = get_profile(name)
        ipc, interval = PAPER_TABLE3[name]
        print(f"{name:8s} paper IPC {ipc:4.2f}, mispredict interval {interval:>6d}  "
              f"— {profile.description}")
    return 0


def _run_policy(machine: str, controller: str, clusters: int) -> str:
    """Map the ``run`` subcommand's flags to a facade ``reconfig_policy``."""
    if machine == "monolithic":
        return "none"
    if controller == "static":
        return f"static-{clusters}"
    return controller


def _cmd_run(args: argparse.Namespace) -> int:
    result = simulate(
        args.benchmark,
        trace_length=args.length,
        seed=args.seed,
        topology=args.machine,
        reconfig_policy=_run_policy(args.machine, args.controller, args.clusters),
        warmup=args.warmup,
        trace=args.trace,
    )
    s = result.stats
    print(f"{args.benchmark} on {args.machine} "
          f"({args.controller}{'' if args.controller != 'static' else f'-{args.clusters}'})")
    print(f"  IPC                {result.ipc:.3f}")
    print(f"  cycles             {result.cycles}")
    print(f"  branch accuracy    {s.branch_accuracy:.1%}")
    print(f"  mispredict intvl   {result.mispredict_interval:.0f}")
    print(f"  L1 hit rate        {s.l1_hit_rate:.1%}")
    print(f"  avg active clstrs  {result.avg_active_clusters:.1f}")
    print(f"  reconfigurations   {result.reconfigurations}")
    if args.trace:
        print(f"[trace written to {args.trace}]", file=sys.stderr)
    return 0


def _journal_path(name: str, args: argparse.Namespace):
    """Resolve the checkpoint journal path for an exhibit command."""
    if args.journal:
        return args.journal
    if args.resume:
        return default_cache_dir() / "journals" / f"{name}.jsonl"
    return None


def _cmd_exhibit(name: str, args: argparse.Namespace) -> int:
    generate, render = _EXHIBITS[name]
    benchmarks = _parse_benchmarks(args.benchmarks)
    if name == "fig_multiprog":
        # the multiprog exhibit co-schedules its benchmarks as one thread
        # mix rather than iterating them, so "all nine" is not a default
        if not args.benchmarks:
            from .experiments.figures import MULTIPROG_MIX

            benchmarks = MULTIPROG_MIX
        elif not 2 <= len(benchmarks) <= 4:
            raise SystemExit(
                "fig_multiprog co-schedules 2-4 benchmarks, got "
                f"{len(benchmarks)}: {','.join(benchmarks)}"
            )
    if name == "fig_resilience":
        # one carrier benchmark swept across topologies x policies x rates
        from .experiments.figures import RESILIENCE_BENCH

        if not args.benchmarks:
            benchmarks = (RESILIENCE_BENCH,)
        elif len(benchmarks) != 1:
            raise SystemExit(
                "fig_resilience takes exactly one carrier benchmark, got "
                f"{len(benchmarks)}: {','.join(benchmarks)}"
            )
    runner = SweepRunner(
        SweepConfig(
            backend=args.backend,
            jobs=args.jobs,
            lanes=args.lanes,
            batch_size=args.batch_size,
            use_cache=not args.no_cache,
            timeout=args.timeout,
            journal=_journal_path(name, args),
            resume=args.resume,
            trace_dir=args.trace,
        )
    )
    try:
        if name == "fig_resilience":
            results = generate(
                benchmark=benchmarks[0],
                trace_length=args.length,
                runner=runner,
            )
        else:
            results = generate(
                benchmarks=benchmarks,
                trace_length=args.length,
                runner=runner,
            )
    except SweepInterrupted as interrupt:
        print(f"\n{interrupt}", file=sys.stderr)
        if runner.journal is not None:
            print(f"[resume with: python -m repro {name} --resume"
                  f" --journal {runner.journal.path}]", file=sys.stderr)
        return 130
    except SweepError as failure:
        # never present an exhibit with silent holes in its matrix: show
        # the failure table and exit nonzero
        print(format_failure_table(failure.records), file=sys.stderr)
        print(f"\n{format_sweep_metrics(runner.metrics)}", file=sys.stderr)
        return 1
    if name == "fig_multiprog":
        print(render(results, benchmarks))
    elif name == "fig_resilience":
        print(render(results, benchmarks[0]))
    else:
        print(render(results))
    print(f"\n{format_sweep_metrics(runner.metrics)}", file=sys.stderr)
    if args.metrics_json:
        import json

        with open(args.metrics_json, "w") as fh:
            json.dump(runner.metrics.snapshot(), fh, indent=2)
        print(f"[sweep metrics written to {args.metrics_json}]", file=sys.stderr)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args)
    return _cmd_exhibit(args.command, args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
