"""Distant-ILP measurement (Sections 4.3 and 4.4).

An instruction is *distant* if, when it issued, it was at least
``4 x regfile_size`` (= 120) entries younger than the oldest instruction in
the ROB — i.e. it could only have been reached with more than four clusters'
worth of in-flight window.  The pipeline marks each committed instruction;
this module provides:

* :class:`DistantWindow` — the hardware structure of Section 4.4: a queue of
  the last 360 committed instructions with a running count of how many were
  distant.  When a branch becomes the oldest entry of the queue, the counter
  value *is* that branch's degree of distant ILP, and the window emits a
  (pc, count) sample.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

#: the paper tracks the 360 committed instructions following a branch
#: (three clusters' worth beyond the 120 supported by four clusters)
DEFAULT_WINDOW = 360


class DistantWindow:
    """Sliding window of committed instructions with a distant-ILP counter."""

    __slots__ = ("window", "_queue", "_count")

    def __init__(self, window: int = DEFAULT_WINDOW) -> None:
        if window < 1:
            raise ValueError("window must be positive")
        self.window = window
        # entries: (branch_pc or -1, distant flag)
        self._queue: Deque[Tuple[int, bool]] = deque()
        self._count = 0

    @property
    def distant_count(self) -> int:
        """Distant instructions currently inside the window."""
        return self._count

    def push(self, branch_pc: int, distant: bool) -> Optional[Tuple[int, int]]:
        """Add a committed instruction (``branch_pc`` is -1 for non-branches).

        Returns a (pc, distant_count) sample when a *branch* exits the
        window — the count of distant instructions among the ``window``
        instructions that followed it.
        """
        self._queue.append((branch_pc, distant))
        if distant:
            self._count += 1
        if len(self._queue) <= self.window:
            return None
        old_pc, old_distant = self._queue.popleft()
        if old_distant:
            self._count -= 1
        if old_pc >= 0:
            # the counter now covers exactly the `window` instructions that
            # committed after this branch
            return (old_pc, self._count)
        return None
