"""The paper's contribution: dynamic cluster-count reconfiguration."""

from .controller import (
    IntervalController,
    ReconfigurationController,
    StaticController,
)
from .distant_ilp import DEFAULT_WINDOW, DistantWindow
from .finegrain import FineGrainConfig, FineGrainController, ReconfigTable
from .instability import (
    InstabilityProfile,
    RecordingController,
    instability_factor,
    instability_profile,
    record_intervals,
)
from .interval_explore import ExploreConfig, IntervalExploreController
from .interval_noexplore import DistantILPController, NoExploreConfig
from .phase import (
    PhaseDetectConfig,
    PhaseReference,
    PhaseSignals,
    compare_to_reference,
)
from .subroutine import SubroutineController, subroutine_config

__all__ = [
    "DEFAULT_WINDOW",
    "DistantILPController",
    "DistantWindow",
    "ExploreConfig",
    "FineGrainConfig",
    "FineGrainController",
    "InstabilityProfile",
    "IntervalController",
    "IntervalExploreController",
    "NoExploreConfig",
    "PhaseDetectConfig",
    "PhaseReference",
    "PhaseSignals",
    "ReconfigTable",
    "ReconfigurationController",
    "RecordingController",
    "StaticController",
    "SubroutineController",
    "compare_to_reference",
    "instability_factor",
    "instability_profile",
    "record_intervals",
    "subroutine_config",
]
