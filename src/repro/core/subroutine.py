"""Fine-grained reconfiguration at subroutine boundaries (Section 4.4).

The second fine-grained variant attempts configuration changes only at
subroutine calls and returns, using three samples per site (the paper notes
Huang et al.'s positional adaptation as the related idea).  It reuses the
branch-boundary machinery but tracks and acts on call/return instructions
only.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from ..workloads.instruction import Instr
from .finegrain import FineGrainConfig, FineGrainController


def subroutine_config(base: Optional[FineGrainConfig] = None) -> FineGrainConfig:
    """The paper's call/return variant: every boundary, three samples."""
    base = base or FineGrainConfig()
    return replace(base, branch_stride=1, samples_needed=3)


class SubroutineController(FineGrainController):
    """Reconfigures at every subroutine call and return."""

    def __init__(self, config: Optional[FineGrainConfig] = None) -> None:
        super().__init__(config or subroutine_config())

    def _tracked_pc(self, instr: Instr) -> int:
        if instr.is_branch and (instr.is_call or instr.is_return):
            return instr.pc
        return -1

    def _should_attempt(self, instr: Instr) -> bool:
        return instr.is_branch and (instr.is_call or instr.is_return)
