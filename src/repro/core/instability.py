"""Instability analysis (Section 4.1, Table 4).

The paper records IPC, branch frequency, and memory-reference frequency at
a fine interval granularity over a long run, then — offline, per candidate
interval length — walks the intervals marking each 'stable' or 'unstable'
relative to the reference interval at the start of its phase.  The
*instability factor* of an interval length is the fraction of unstable
intervals; the *minimum acceptable interval* is the shortest length whose
instability factor is below 5%.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..config import ProcessorConfig, default_config
from ..stats import IntervalRecord, merge_records
from ..workloads.instruction import Trace
from .controller import IntervalController
from .phase import PhaseDetectConfig, PhaseReference, compare_to_reference


class RecordingController(IntervalController):
    """Never reconfigures; records an IntervalRecord every ``granularity``
    committed instructions for offline analysis."""

    def __init__(self, granularity: int) -> None:
        super().__init__(granularity)
        self.records: List[IntervalRecord] = []

    def on_interval(self, window, cycle: int) -> None:
        self.records.append(
            IntervalRecord(
                committed=window.committed,
                cycles=window.cycles,
                branches=window.branches,
                memrefs=window.memrefs,
            )
        )


def record_intervals(
    trace: Trace,
    config: Optional[ProcessorConfig] = None,
    granularity: int = 100,
    max_instructions: Optional[int] = None,
) -> List[IntervalRecord]:
    """Simulate ``trace`` once, recording statistics every ``granularity``
    committed instructions."""
    from ..pipeline.processor import ClusteredProcessor

    controller = RecordingController(granularity)
    processor = ClusteredProcessor(trace, config or default_config(), controller)
    processor.run(max_instructions)
    return controller.records


def instability_factor(
    records: Sequence[IntervalRecord],
    detect: PhaseDetectConfig = PhaseDetectConfig(),
) -> float:
    """Fraction of intervals flagged unstable (phase-change frequency).

    Walks the recorded intervals exactly as Section 4.1 describes: the
    first interval of each phase is the reference; an interval whose IPC,
    branch count, or memory-reference count differs significantly starts a
    new phase and counts as unstable.
    """
    if not records:
        return 0.0
    interval_length = records[0].committed
    reference: Optional[PhaseReference] = None
    unstable = 0
    for record in records:
        window_like = record  # IntervalRecord quacks like IntervalWindow here
        if reference is None:
            reference = PhaseReference(
                branches=record.branches, memrefs=record.memrefs, ipc=record.ipc
            )
            continue
        signals = compare_to_reference(window_like, reference, interval_length, detect)
        if signals.counts_changed or signals.ipc:
            unstable += 1
            reference = PhaseReference(
                branches=record.branches, memrefs=record.memrefs, ipc=record.ipc
            )
    return unstable / len(records)


@dataclass(frozen=True)
class InstabilityProfile:
    """Instability factors across interval lengths for one program."""

    granularity: int
    factors: Dict[int, float]  # interval length (instructions) -> factor

    def minimum_acceptable_interval(self, threshold: float = 0.05) -> Optional[int]:
        """The shortest interval length with instability below ``threshold``
        (Table 4's 'minimum acceptable interval length')."""
        for length in sorted(self.factors):
            if self.factors[length] < threshold:
                return length
        return None


def instability_profile(
    records: Sequence[IntervalRecord],
    granularity: int,
    factors_of: Sequence[int] = (1, 2, 4, 8, 16, 32, 64),
    detect: PhaseDetectConfig = PhaseDetectConfig(),
) -> InstabilityProfile:
    """Reanalyse one fine-grained recording at several interval lengths.

    ``factors_of`` are multipliers of the recording granularity; interval
    length ``granularity * f`` gets an instability factor for each ``f``.
    """
    factors: Dict[int, float] = {}
    for f in factors_of:
        merged = merge_records(list(records), f)
        if len(merged) < 4:
            break
        factors[granularity * f] = instability_factor(merged, detect)
    return InstabilityProfile(granularity=granularity, factors=factors)
