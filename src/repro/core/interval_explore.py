"""Interval-based reconfiguration with exploration (Section 4.2, Figure 4).

At the start of each program phase the controller runs every candidate
configuration (2, 4, 8, 16 clusters) for one interval, records the IPCs,
picks the best, and keeps it until a phase change is detected.  Phase
changes are flagged by significant shifts in branch or memory-reference
counts (microarchitecture-independent, hence safe during exploration) or —
once a configuration is chosen — in IPC, filtered through the
``num_ipc_variations`` noise tolerance of Figure 4.

The interval length itself adapts: every phase change bumps an
``instability`` score (decayed slightly by each stable interval); when the
score exceeds a threshold the interval length doubles.  If the interval
length exceeds its cap the controller gives up and locks the most popular
configuration (Figure 4's ``discontinue_algorithm``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..stats import IntervalWindow
from .controller import IntervalController
from .phase import (
    PhaseDetectConfig,
    PhaseReference,
    PhaseSignals,
    compare_to_reference,
    signal_fields,
)


@dataclass(frozen=True)
class ExploreConfig:
    """Constants of the Figure 4 algorithm.

    The paper's values are ``initial_interval=10_000``,
    ``max_interval=1_000_000_000`` (one billion instructions), thresholds of
    5, and candidate configurations (2, 4, 8, 16).  ``scaled`` produces a
    laptop-trace variant with everything shrunk proportionally.
    """

    initial_interval: int = 10_000
    max_interval: int = 1_000_000_000
    candidates: Tuple[int, ...] = (2, 4, 8, 16)
    ipc_variation_threshold: float = 5.0  # THRESH1
    instability_threshold: float = 5.0  # THRESH2
    instability_increment: float = 1.0
    stability_decay: float = 0.125
    #: the hierarchical outer loop of Figure 4: statistics are inspected at
    #: this coarse granularity (the paper uses 100 billion instructions),
    #: and a *macrophase* change re-initializes the whole algorithm — the
    #: interval length, the give-up flag, everything.  0 disables it.
    macro_interval: int = 100_000_000_000
    #: cycles the software handler steals per interval invocation
    invocation_overhead: int = 0
    detect: PhaseDetectConfig = field(default_factory=PhaseDetectConfig)

    @classmethod
    def scaled(
        cls,
        initial_interval: int = 1_000,
        max_interval: int = 64_000,
        candidates: Tuple[int, ...] = (2, 4, 8, 16),
        ipc_tolerance: float = 0.20,
    ) -> "ExploreConfig":
        """Constants scaled for traces of 10^4-10^6 instructions.

        Sub-1K intervals measure IPC with far more sampling noise than the
        paper's 10K+ intervals, so the scaled variant widens the IPC
        significance threshold and doubles the interval length more
        aggressively (instability_increment 2 means three phase changes in
        quick succession trigger a doubling).
        """
        return cls(
            initial_interval=initial_interval,
            max_interval=max_interval,
            candidates=candidates,
            instability_increment=2.0,
            detect=PhaseDetectConfig(ipc_tolerance=ipc_tolerance),
        )


class IntervalExploreController(IntervalController):
    """The Figure 4 run-time algorithm."""

    _UNSTABLE = "unstable"
    _EXPLORING = "exploring"
    _STABLE = "stable"

    def __init__(self, config: Optional[ExploreConfig] = None) -> None:
        self.algo = config or ExploreConfig()
        super().__init__(
            self.algo.initial_interval, self.algo.invocation_overhead
        )
        self._state = self._UNSTABLE
        self._reference: Optional[PhaseReference] = None
        self._explored: Dict[int, float] = {}
        self._explore_pos = 0
        self._num_ipc_variations = 0.0
        self._instability = 0.0
        self.discontinued = False
        #: how often each configuration was chosen (for the give-up pick and
        #: for reporting the paper's "8.3 of 16 clusters disabled" figure)
        self.choice_counts: Dict[int, int] = {}
        self.phase_changes = 0
        # hierarchical macrophase detection
        self._macro_count = 0
        self._macro_ref: Optional[Tuple[int, int]] = None
        self._macro_branches = 0
        self._macro_memrefs = 0
        self.macrophase_changes = 0

    # ------------------------------------------------------------------
    def attach(self, processor) -> None:
        super().attach(processor)
        self._candidates = tuple(
            c for c in self.algo.candidates if c <= processor.config.num_clusters
        ) or (processor.config.num_clusters,)

    # ------------------------------------------------------------------
    # macrophase hierarchy

    def on_commit(self, instr, cycle: int, distant: bool) -> None:
        super().on_commit(instr, cycle, distant)
        if not self.algo.macro_interval:
            return
        self._macro_count += 1
        if self._macro_count >= self.algo.macro_interval:
            self._macro_boundary()

    def _macro_boundary(self) -> None:
        stats = self.processor.stats
        window = (
            stats.branches - self._macro_branches,
            stats.memrefs - self._macro_memrefs,
        )
        self._macro_count = 0
        self._macro_branches = stats.branches
        self._macro_memrefs = stats.memrefs
        if self._macro_ref is not None:
            threshold = self.algo.macro_interval / self.algo.detect.count_divisor
            if (
                abs(window[0] - self._macro_ref[0]) > threshold
                or abs(window[1] - self._macro_ref[1]) > threshold
            ):
                self.macrophase_changes += 1
                if self.tracer.enabled:
                    self._trace("macrophase", count=self.macrophase_changes)
                self._reinitialize()
        self._macro_ref = window

    def on_fault(self, event, cycle: int) -> None:
        """Exploration results measured on the old machine shape are
        meaningless on the new one: restart the whole algorithm, exactly
        like a macrophase change (Figure 4's re-initialization)."""
        super().on_fault(event, cycle)
        self._reinitialize()

    def _reinitialize(self) -> None:
        """Figure 4: a new macrophase re-initializes every variable,
        including the adapted interval length and the give-up flag."""
        self.interval_length = self.algo.initial_interval
        self._since_boundary = 0
        self._state = self._UNSTABLE
        self._reference = None
        self._explored = {}
        self._explore_pos = 0
        self._num_ipc_variations = 0.0
        self._instability = 0.0
        self.discontinued = False
        self.choice_counts = {}

    # ------------------------------------------------------------------
    def _begin_exploration(self, window: IntervalWindow, cycle: int) -> None:
        """The first clean interval of a new phase seeds the reference point
        and starts the exploration sweep."""
        self._reference = PhaseReference(
            branches=window.branches, memrefs=window.memrefs
        )
        self._explored = {}
        self._explore_pos = 0
        self._state = self._EXPLORING
        if self.tracer.enabled:
            self._trace("explore_start", candidates=list(self._candidates))
        self.processor.set_active_clusters(self._candidates[0], reason="explore")

    def _finish_exploration(self, cycle: int) -> None:
        best = max(self._explored, key=lambda c: self._explored[c])
        self._state = self._STABLE
        self._reference.ipc = self._explored[best]
        self._num_ipc_variations = 0.0
        self.choice_counts[best] = self.choice_counts.get(best, 0) + 1
        if self.tracer.enabled:
            self._trace(
                "explore_decision",
                chosen=best,
                explored=[[c, ipc] for c, ipc in sorted(self._explored.items())],
            )
        self.processor.set_active_clusters(best, reason="chosen")

    def _phase_change(
        self, cycle: int, signals: Optional[PhaseSignals] = None
    ) -> None:
        self.phase_changes += 1
        self._state = self._UNSTABLE
        self._reference = None
        self._num_ipc_variations = 0.0
        self._instability += self.algo.instability_increment
        if self.tracer.enabled:
            self._trace(
                "phase_change",
                instability=self._instability,
                interval_length=self.interval_length,
                **signal_fields(signals),
            )
        if self._instability > self.algo.instability_threshold:
            self.interval_length *= 2
            self._instability = 0.0
            if self.tracer.enabled:
                self._trace("interval_grow", interval_length=self.interval_length)
            if self.interval_length > self.algo.max_interval:
                self._discontinue(cycle)

    def _discontinue(self, cycle: int) -> None:
        """Give up reconfiguring; lock the most frequently chosen config."""
        self.discontinued = True
        if self.choice_counts:
            popular = max(self.choice_counts, key=lambda c: self.choice_counts[c])
        else:
            popular = self._candidates[-1]
        if self.tracer.enabled:
            self._trace("discontinue", locked=popular)
        self.processor.set_active_clusters(popular, reason="discontinued")

    # ------------------------------------------------------------------
    def on_interval(self, window: IntervalWindow, cycle: int) -> None:
        if self.discontinued:
            return

        if self._state == self._UNSTABLE:
            self._begin_exploration(window, cycle)
            return

        signals = compare_to_reference(
            window, self._reference, self.interval_length, self.algo.detect
        )

        if self._state == self._EXPLORING:
            if signals.counts_changed:
                self._phase_change(cycle, signals)
                return
            self._explored[self.processor.active_clusters] = window.ipc
            if self.tracer.enabled:
                self._trace(
                    "explore_sample",
                    clusters=self.processor.active_clusters,
                    ipc=window.ipc,
                )
            self._explore_pos += 1
            if self._explore_pos >= len(self._candidates):
                self._finish_exploration(cycle)
            else:
                self.processor.set_active_clusters(
                    self._candidates[self._explore_pos], reason="explore"
                )
            return

        # stable state
        if signals.counts_changed or (
            signals.ipc
            and self._num_ipc_variations > self.algo.ipc_variation_threshold
        ):
            self._phase_change(cycle, signals)
        elif signals.ipc:
            self._num_ipc_variations += 2.0
        else:
            self._num_ipc_variations = max(
                -2.0, self._num_ipc_variations - self.algo.stability_decay
            )
            self._instability = max(0.0, self._instability - self.algo.stability_decay)
