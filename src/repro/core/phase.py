"""Phase-change detection shared by the interval-based controllers.

The paper defines a phase by three metrics gathered per interval: IPC,
branch frequency, and memory-reference frequency.  Branch and memory counts
are microarchitecture-independent, so they detect phase changes even while
the controller is exploring different configurations; IPC is compared only
once a configuration has been chosen.  A count differs "significantly" when
it moves by more than ``interval_length / count_divisor`` (the paper uses
interval_length/100).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..stats import IntervalWindow


@dataclass
class PhaseReference:
    """The statistics of the first interval of the current phase."""

    branches: int
    memrefs: int
    ipc: Optional[float] = None  # set once a configuration is chosen


@dataclass(frozen=True)
class PhaseDetectConfig:
    """Significance thresholds for phase-change detection."""

    count_divisor: int = 100
    ipc_tolerance: float = 0.10

    def count_threshold(self, interval_length: int) -> float:
        return interval_length / self.count_divisor


@dataclass(frozen=True)
class PhaseSignals:
    """Which metrics changed significantly this interval."""

    memrefs: bool
    branches: bool
    ipc: bool

    @property
    def counts_changed(self) -> bool:
        return self.memrefs or self.branches


def compare_to_reference(
    window: IntervalWindow,
    reference: PhaseReference,
    interval_length: int,
    detect: PhaseDetectConfig = PhaseDetectConfig(),
) -> PhaseSignals:
    """Classify an interval against the phase's reference point."""
    threshold = detect.count_threshold(interval_length)
    mem_changed = abs(window.memrefs - reference.memrefs) > threshold
    br_changed = abs(window.branches - reference.branches) > threshold
    ipc_changed = False
    if reference.ipc is not None and reference.ipc > 0:
        ipc_changed = (
            abs(window.ipc - reference.ipc) / reference.ipc > detect.ipc_tolerance
        )
    return PhaseSignals(memrefs=mem_changed, branches=br_changed, ipc=ipc_changed)


def signal_fields(signals: Optional[PhaseSignals]) -> Dict[str, bool]:
    """Flatten :class:`PhaseSignals` into ``phase_change`` event fields.

    The controllers attach these to their trace events (see
    :mod:`repro.observability.events`) so a trace records *which* metric
    tripped the detector.  ``None`` (no comparison was made) reads as
    nothing-changed.
    """
    if signals is None:
        return {"branches_changed": False, "memrefs_changed": False, "ipc_changed": False}
    return {
        "branches_changed": signals.branches,
        "memrefs_changed": signals.memrefs,
        "ipc_changed": signals.ipc,
    }
