"""Interval-based reconfiguration without exploration (Section 4.3).

Instead of trying every configuration, the controller runs the first
interval of each phase with all 16 clusters while measuring the *degree of
distant ILP* (instructions that issued >= 120 entries younger than the ROB
head).  If the distant count exceeds a threshold (the paper uses 160 per
1000-instruction interval), the phase gets 16 clusters; otherwise it gets 4
(the paper's two most meaningful configurations).  Because there is no
exploration the reaction to a phase change is fast, so short fixed interval
lengths (1K instructions) become usable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..stats import IntervalWindow
from .controller import IntervalController
from .phase import (
    PhaseDetectConfig,
    PhaseReference,
    compare_to_reference,
    signal_fields,
)


@dataclass(frozen=True)
class NoExploreConfig:
    """Constants of the Section 4.3 scheme."""

    interval_length: int = 1_000
    #: distant instructions per interval above which the phase is judged to
    #: have distant ILP (paper: 160 per 1000)
    distant_fraction: float = 0.16
    small_config: int = 4
    large_config: int = 16
    #: intervals to let the pipeline refill after switching to the large
    #: configuration before trusting the distant-ILP measurement
    settle_intervals: int = 0
    detect: PhaseDetectConfig = field(default_factory=PhaseDetectConfig)

    @property
    def distant_threshold(self) -> float:
        return self.distant_fraction * self.interval_length

    @classmethod
    def scaled(cls, interval_length: int = 1_000) -> "NoExploreConfig":
        """Constants scaled for the trace-driven laptop model.

        This simulator never fetches wrong-path instructions (fetch stalls
        at a mispredicted branch and resumes on the correct path), so the
        in-flight window stays deep even for branchy serial code and the
        *absolute* distant-instruction fraction runs far above the paper's
        execution-driven measurements; the discriminating boundary sits near
        62% here versus the paper's 16%.  Short intervals also measure IPC
        noisily and straddle the drain/refill transient after a
        configuration switch, hence the settle interval and the wider IPC
        tolerance.
        """
        # the measurement may only start once the instructions issued under
        # the previous configuration have drained: one full ROB (480) of
        # commits, rounded up to whole intervals
        settle = max(1, -(-480 // interval_length))
        return cls(
            interval_length=interval_length,
            distant_fraction=0.62,
            settle_intervals=settle,
            detect=PhaseDetectConfig(ipc_tolerance=0.20),
        )


class DistantILPController(IntervalController):
    """The no-exploration interval scheme driven by the distant-ILP metric."""

    _MEASURING = "measuring"
    _SETTLED = "settled"

    def __init__(self, config: Optional[NoExploreConfig] = None) -> None:
        self.algo = config or NoExploreConfig()
        super().__init__(self.algo.interval_length)
        self._state = self._MEASURING
        self._settle_left = self.algo.settle_intervals  # cold-start fill
        self._reference: Optional[PhaseReference] = None
        self.phase_changes = 0
        self.choice_counts = {self.algo.small_config: 0, self.algo.large_config: 0}

    def attach(self, processor) -> None:
        super().attach(processor)
        self._large = min(self.algo.large_config, processor.config.num_clusters)
        self._small = min(self.algo.small_config, self._large)
        # measure with the full machine first
        if self.tracer.enabled:
            self._trace("measure_start", settle=self._settle_left)
        processor.set_active_clusters(self._large, reason="measure")

    def _enter_measurement(self) -> None:
        self._state = self._MEASURING
        self._settle_left = self.algo.settle_intervals
        self._reference = None
        if self.tracer.enabled:
            self._trace("measure_start", settle=self._settle_left)
        self.processor.set_active_clusters(self._large, reason="measure")

    def on_fault(self, event, cycle: int) -> None:
        """Re-measure the distant-ILP content on the degraded machine (the
        previous decision was made against hardware that no longer
        exists)."""
        super().on_fault(event, cycle)
        self._enter_measurement()

    def on_interval(self, window: IntervalWindow, cycle: int) -> None:
        if self._state == self._MEASURING:
            if self._settle_left > 0:
                self._settle_left -= 1
                return
            # decide from the distant-ILP content of the measured interval
            wants_large = window.distant_commits > self.algo.distant_threshold
            chosen = self._large if wants_large else self._small
            self.choice_counts[chosen] = self.choice_counts.get(chosen, 0) + 1
            self._reference = PhaseReference(
                branches=window.branches, memrefs=window.memrefs, ipc=None
            )
            self._state = self._SETTLED
            if self.tracer.enabled:
                self._trace(
                    "distant_decision",
                    distant=window.distant_commits,
                    threshold=self.algo.distant_threshold,
                    chosen=chosen,
                )
            self.processor.set_active_clusters(chosen, reason="distant-ilp")
            return

        signals = compare_to_reference(
            window, self._reference, self.interval_length, self.algo.detect
        )
        if self._reference.ipc is None:
            # first settled interval establishes the IPC reference
            self._reference.ipc = window.ipc
            return
        if signals.counts_changed or signals.ipc:
            self.phase_changes += 1
            if self.tracer.enabled:
                self._trace(
                    "phase_change",
                    instability=0.0,
                    interval_length=self.interval_length,
                    **signal_fields(signals),
                )
            self._enter_measurement()
