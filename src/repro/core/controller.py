"""Reconfiguration controller interface and the static baselines.

A controller observes the committed instruction stream through two hooks
(the paper's "hardware event counters" view) and reconfigures the machine by
calling ``processor.set_active_clusters(n)``:

* ``on_commit(instr, cycle, distant)`` — every committed instruction, with
  its distant-ILP mark;
* ``on_dispatch(instr, cycle)`` — every dispatched instruction, delivered
  only when the controller sets ``needs_dispatch_events`` (used by the
  fine-grained schemes, which react at branch boundaries in the front end).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..observability.tracer import NULL_TRACER, Tracer
from ..stats import IntervalTracker
from ..workloads.instruction import Instr

if TYPE_CHECKING:  # pragma: no cover
    from ..pipeline.processor import ClusteredProcessor


class ReconfigurationController:
    """Base class; does nothing (the machine stays fully enabled)."""

    needs_dispatch_events = False

    def __init__(self) -> None:
        self.processor: Optional["ClusteredProcessor"] = None
        #: picked up from the processor at attach; stays the no-op default
        #: under bare test harnesses that attach mock processors
        self.tracer: Tracer = NULL_TRACER

    def attach(self, processor: "ClusteredProcessor") -> None:
        self.processor = processor
        self.tracer = getattr(processor, "tracer", NULL_TRACER)

    def _trace(self, kind: str, **fields: object) -> None:
        """Emit one event stamped with the current simulated position.

        Call sites still guard on ``self.tracer.enabled`` first so the
        keyword-argument dict is never built for a disabled tracer.
        """
        tracer = self.tracer
        if tracer.enabled:
            processor = self.processor
            tracer.emit(
                kind,
                cycle=processor.cycle,
                committed=processor.stats.committed,
                **fields,
            )

    def on_commit(self, instr: Instr, cycle: int, distant: bool) -> None:
        """Called once per committed instruction."""

    def on_dispatch(self, instr: Instr, cycle: int) -> None:
        """Called once per dispatched instruction (opt-in)."""

    def on_fault(self, event, cycle: int) -> None:
        """Called after an architectural fault event is applied (see
        :mod:`repro.resilience`).  Default: nothing — static policies
        simply live on the remapped machine."""


class StaticController(ReconfigurationController):
    """Fixes the active cluster count once at the start of the run.

    ``StaticController(4)`` on a 16-cluster machine is the paper's "static 4"
    base case: 4 active clusters but the full 16-cluster communication
    geometry (the disabled clusters still occupy ring positions).
    """

    def __init__(self, num_clusters: int) -> None:
        super().__init__()
        if num_clusters < 1:
            raise ValueError("num_clusters must be positive")
        self.num_clusters = num_clusters

    def attach(self, processor: "ClusteredProcessor") -> None:
        super().attach(processor)
        processor.set_active_clusters(self.num_clusters, reason="static")


class IntervalController(ReconfigurationController):
    """Shared machinery for interval-based controllers: fires
    ``on_interval(window)`` every ``interval_length`` committed instructions.

    Subclasses may change ``interval_length`` between intervals (the
    variable-interval mechanism of Section 4.2).
    """

    def __init__(self, interval_length: int, invocation_overhead: int = 0) -> None:
        super().__init__()
        if interval_length < 1:
            raise ValueError("interval_length must be positive")
        if invocation_overhead < 0:
            raise ValueError("invocation_overhead must be non-negative")
        self.interval_length = interval_length
        #: cycles the software handler steals per invocation (the paper
        #: estimates well under 1% even at 10K-instruction intervals)
        self.invocation_overhead = invocation_overhead
        self._tracker: Optional[IntervalTracker] = None
        self._since_boundary = 0

    def attach(self, processor: "ClusteredProcessor") -> None:
        super().attach(processor)
        self._tracker = IntervalTracker(processor.stats)
        self._since_boundary = 0

    def on_commit(self, instr: Instr, cycle: int, distant: bool) -> None:
        self._since_boundary += 1
        if self._since_boundary >= self.interval_length:
            self._since_boundary = 0
            if self.invocation_overhead:
                self.processor.stall_dispatch_for(self.invocation_overhead)
            window = self._tracker.since_last()
            if self.tracer.enabled:
                self._trace(
                    "interval",
                    controller=type(self).__name__,
                    interval_length=self.interval_length,
                    ipc=window.ipc,
                    branches=window.branches,
                    memrefs=window.memrefs,
                    distant=window.distant_commits,
                )
            self.on_interval(window, cycle)

    def on_fault(self, event, cycle: int) -> None:
        """The machine changed shape mid-interval, so the window's counters
        mix measurements from two different machines; restart the interval
        boundary cleanly."""
        self._since_boundary = 0
        if self._tracker is not None:
            self._tracker.since_last()

    def on_interval(self, window, cycle: int) -> None:
        raise NotImplementedError
