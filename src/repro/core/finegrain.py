"""Fine-grained reconfiguration at branch boundaries (Section 4.4).

Every Nth branch is a potential reconfiguration point.  A *reconfiguration
table* indexed by branch PC advises 4 or 16 clusters; a branch with no entry
runs with 16 clusters so its distant-ILP behaviour can be measured.  The
measurement hardware is the :class:`DistantWindow`: when a branch exits the
360-instruction committed window, the window's counter is one *sample* of
the distant ILP following that branch.  After M samples, the advised
configuration is computed and the entry becomes active.  The table is
flushed periodically so stale advice does not persist (Section 4.4 rebuilds
it every 10M instructions at negligible cost).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..workloads.instruction import Instr
from .controller import ReconfigurationController
from .distant_ilp import DEFAULT_WINDOW, DistantWindow


@dataclass(frozen=True)
class FineGrainConfig:
    """Constants of the branch-boundary scheme (paper defaults)."""

    branch_stride: int = 5  # attempt reconfiguration at every Nth branch
    samples_needed: int = 10  # M samples before an entry goes live
    window: int = DEFAULT_WINDOW
    #: distant instructions within the window above which the advice is the
    #: large configuration.  The paper's value is 160/1000 scaled to the
    #: 360-instruction window (= 58); this trace-driven model never fetches
    #: wrong-path instructions, keeps much deeper windows, and so runs far
    #: higher absolute distant fractions — the discriminating boundary sits
    #: near 62% (see NoExploreConfig.scaled), i.e. 223 of 360.
    distant_threshold: int = 223
    #: the paper's unscaled threshold, for reference and experiments
    paper_distant_threshold: int = 58
    table_entries: int = 16 * 1024
    flush_period: int = 10_000_000
    small_config: int = 4
    large_config: int = 16


class _TableEntry:
    __slots__ = ("samples", "advised")

    def __init__(self) -> None:
        self.samples: List[int] = []
        self.advised: Optional[int] = None


class ReconfigTable:
    """The PC-indexed advice table.

    Modelled as tag-checked (a 16K-entry table made aliasing "a non-issue"
    in the paper, so we keep exact PC keys) with a bounded entry count.
    """

    def __init__(self, max_entries: int) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self._entries: Dict[int, _TableEntry] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, pc: int) -> Optional[int]:
        entry = self._entries.get(pc)
        return entry.advised if entry is not None else None

    def add_sample(
        self, pc: int, distant_count: int, config: FineGrainConfig
    ) -> Optional[int]:
        """Record one distant-ILP sample; on the Mth, compute the advice.

        Returns the advised configuration on the sample that brings the
        entry live (so callers can trace the training event), else None.
        """
        entry = self._entries.get(pc)
        if entry is None:
            if len(self._entries) >= self.max_entries:
                return None
            entry = _TableEntry()
            self._entries[pc] = entry
        if entry.advised is not None:
            return None  # paper: after M samples, stop updating
        entry.samples.append(distant_count)
        if len(entry.samples) >= config.samples_needed:
            mean = sum(entry.samples) / len(entry.samples)
            entry.advised = (
                config.large_config
                if mean >= config.distant_threshold
                else config.small_config
            )
            entry.samples = []
            return entry.advised
        return None

    def flush(self) -> None:
        self._entries.clear()


class FineGrainController(ReconfigurationController):
    """Reconfigures at every Nth branch using the reconfiguration table."""

    needs_dispatch_events = True

    def __init__(self, config: Optional[FineGrainConfig] = None) -> None:
        super().__init__()
        self.algo = config or FineGrainConfig()
        self.table = ReconfigTable(self.algo.table_entries)
        self.window = DistantWindow(self.algo.window)
        self._branch_count = 0
        self._since_flush = 0
        self.table_hits = 0
        self.table_misses = 0
        # hit/miss totals at the previous flush, for per-period trace deltas
        self._hits_at_flush = 0
        self._misses_at_flush = 0

    def attach(self, processor) -> None:
        super().attach(processor)
        self._large = min(self.algo.large_config, processor.config.num_clusters)
        self._small = min(self.algo.small_config, self._large)
        processor.set_active_clusters(self._large, reason="finegrain-init")

    # ------------------------------------------------------------------
    # measurement side (commit stream)

    def _tracked_pc(self, instr: Instr) -> int:
        """Which branches get samples recorded (subclasses narrow this)."""
        return instr.pc if instr.is_branch else -1

    def on_commit(self, instr: Instr, cycle: int, distant: bool) -> None:
        sample = self.window.push(self._tracked_pc(instr), distant)
        if sample is not None:
            pc, count = sample
            advised = self.table.add_sample(pc, count, self.algo)
            if advised is not None and self.tracer.enabled:
                self._trace("table_train", pc=pc, advised=advised)
        self._since_flush += 1
        if self._since_flush >= self.algo.flush_period:
            self._since_flush = 0
            if self.tracer.enabled:
                self._trace(
                    "table_flush",
                    entries=len(self.table),
                    hits=self.table_hits - self._hits_at_flush,
                    misses=self.table_misses - self._misses_at_flush,
                )
            self._hits_at_flush = self.table_hits
            self._misses_at_flush = self.table_misses
            self.table.flush()

    def on_fault(self, event, cycle: int) -> None:
        """Table advice was learned on the healthy machine; drop it and
        relearn against the degraded one (the regular periodic flush in
        miniature)."""
        if self.tracer.enabled:
            self._trace(
                "table_flush",
                entries=len(self.table),
                hits=self.table_hits - self._hits_at_flush,
                misses=self.table_misses - self._misses_at_flush,
            )
        self._hits_at_flush = self.table_hits
        self._misses_at_flush = self.table_misses
        self.table.flush()

    # ------------------------------------------------------------------
    # reconfiguration side (dispatch stream)

    def _should_attempt(self, instr: Instr) -> bool:
        if not instr.is_branch:
            return False
        self._branch_count += 1
        return self._branch_count % self.algo.branch_stride == 0

    def on_dispatch(self, instr: Instr, cycle: int) -> None:
        if not self._should_attempt(instr):
            return
        advised = self.table.lookup(instr.pc)
        if self.tracer.enabled:
            self._trace(
                "table_lookup",
                pc=instr.pc,
                hit=advised is not None,
                advised=advised,
            )
        if advised is None:
            self.table_misses += 1
            self.processor.set_active_clusters(self._large, reason="measure")
        else:
            self.table_hits += 1
            self.processor.set_active_clusters(
                min(advised, self._large), reason="table"
            )
