"""Stable public facade of the reproduction.

Callers should use this module (or the identical re-exports at the package
root) instead of reaching into ``repro.pipeline.processor``,
``repro.experiments.runner``, or ``repro.experiments.sweep`` — those are
engine internals whose signatures may change; this facade will not.

Two entry points cover everything:

* :func:`simulate` — one simulation, in process, returning a
  :class:`SimResult`.
* :func:`sweep` — a matrix of simulations fanned out over worker processes
  with caching, checkpointing, and structured failures, returning a
  :class:`SweepResult`.

Both speak one keyword vocabulary (:class:`SimSpec`):

``workload``
    A benchmark profile name (``"gzip"``, ``"swim"``, ... — see
    ``repro.workloads``) or an explicit :class:`~repro.workloads.Trace`.
``max_instructions``
    Commit-bounded instruction limit; ``None`` runs the whole trace.  The
    run stops at the first cycle boundary at or past the limit, so the
    committed count may overshoot by at most ``commit_width - 1``.
``seed`` / ``trace_length``
    Trace-generation parameters (profile-name workloads only).
``topology``
    Machine shape: ``"ring"`` (default), ``"grid"``, ``"torus"``,
    ``"ring-of-rings"``, ``"decentralized"`` (ring + per-cluster cache
    banks), or ``"monolithic"``.
``reconfig_policy``
    ``"none"``, ``"static-<n>"``, ``"explore"``, ``"no-explore"``,
    ``"finegrain"``, ``"subroutine"``, or an explicit
    :class:`~repro.experiments.sweep.ControllerSpec`.
``faults``
    An optional :class:`~repro.resilience.FaultSchedule` of cycle-keyed
    architectural faults (cluster kills, link severs/degrades, FU
    disables); the run degrades gracefully and the statistics grow
    fault/recovery counters (see ``docs/RESILIENCE.md``).

Example::

    >>> from repro.api import simulate
    >>> result = simulate("gzip", trace_length=10_000, reconfig_policy="static-4")
    >>> 0.0 < result.ipc <= 16.0
    True
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple, Union

from .config import (
    ProcessorConfig,
    decentralized_config,
    default_config,
    grid_config,
    monolithic_config,
    ring_of_rings_config,
    torus_config,
)
from .errors import ConfigError
from .multiprog import MultiProgResult, MultiProgSpec, run_multiprog
from .resilience import FaultSchedule
from .stats import SimStats
from .workloads.instruction import Trace
from .workloads.profiles import get_profile

__all__ = [
    "MultiProgResult",
    "MultiProgSpec",
    "SimSpec",
    "SimResult",
    "SweepResult",
    "simulate",
    "sweep",
]

#: topology name -> ProcessorConfig factory (takes the cluster count)
_TOPOLOGIES: Dict[str, Callable[[int], ProcessorConfig]] = {
    "ring": default_config,
    "grid": grid_config,
    "torus": torus_config,
    "ring-of-rings": ring_of_rings_config,
    "decentralized": decentralized_config,
}

_POLICIES = ("none", "explore", "no-explore", "finegrain", "subroutine")


# ----------------------------------------------------------------------
# the unified vocabulary


@dataclass(frozen=True)
class SimSpec:
    """Declarative description of one simulation in the facade vocabulary.

    Every field has a sensible default except ``workload``; see the module
    docstring for the vocabulary.  ``processor`` overrides
    ``topology``/``clusters`` with an explicit
    :class:`~repro.config.ProcessorConfig`.
    """

    workload: Union[str, Trace]
    max_instructions: Optional[int] = None
    seed: int = 7
    topology: str = "ring"
    reconfig_policy: Union[str, object] = "none"
    clusters: int = 16
    trace_length: Optional[int] = None
    warmup: int = 0
    processor: Optional[ProcessorConfig] = None
    #: steering override: ``("mod-n", 3)`` or ``("first-fit",)``
    steering: Optional[Tuple] = None
    #: architectural fault schedule; the run degrades gracefully around
    #: the declared faults — see ``docs/RESILIENCE.md``
    faults: Optional[FaultSchedule] = None
    label: str = ""

    def resolved_label(self) -> str:
        if self.label:
            return self.label
        policy = self.reconfig_policy
        return policy if isinstance(policy, str) else type(policy).__name__

    # -- resolution helpers -------------------------------------------
    def processor_config(self) -> ProcessorConfig:
        if self.processor is not None:
            return self.processor
        if self.topology == "monolithic":
            return monolithic_config()
        factory = _TOPOLOGIES.get(self.topology)
        if factory is None:
            raise ConfigError(
                f"unknown topology {self.topology!r}; choose from "
                f"{sorted(_TOPOLOGIES) + ['monolithic']}"
            )
        return factory(self.clusters)

    def controller_spec(self):
        """The :class:`ControllerSpec` equivalent of ``reconfig_policy``."""
        from .experiments.sweep import ControllerSpec

        policy = self.reconfig_policy
        if isinstance(policy, ControllerSpec):
            return policy
        if not isinstance(policy, str):
            raise ConfigError(
                f"reconfig_policy must be a string or ControllerSpec, "
                f"got {type(policy).__name__}"
            )
        if policy in ("none", ""):
            return ControllerSpec.none()
        if policy.startswith("static-"):
            return ControllerSpec.static(int(policy.split("-", 1)[1]))
        if policy == "static":
            return ControllerSpec.static(self.clusters)
        if policy == "explore":
            return ControllerSpec.explore()
        if policy == "no-explore":
            return ControllerSpec.no_explore()
        if policy == "finegrain":
            return ControllerSpec.finegrain()
        if policy == "subroutine":
            return ControllerSpec.subroutine()
        raise ConfigError(
            f"unknown reconfig_policy {policy!r}; choose from "
            f"{_POLICIES + ('static-<n>',)}"
        )

    def to_run_spec(self):
        """The sweep-engine :class:`RunSpec` for this simulation.

        Only profile-name workloads convert: a :class:`Trace` cannot be
        shipped to worker processes by value (specs are regenerated from
        ``(profile, trace_length, seed)`` on the worker side).
        """
        from .experiments.runner import scaled_length
        from .experiments.sweep import RunSpec

        if not isinstance(self.workload, str):
            raise ConfigError(
                "sweep() needs profile-name workloads (traces are "
                "regenerated inside workers); use simulate() for an "
                "explicit Trace"
            )
        return RunSpec(
            profile=self.workload,
            trace_length=self.trace_length or scaled_length(),
            seed=self.seed,
            config=self.processor_config(),
            controller=self.controller_spec(),
            warmup=self.warmup,
            label=self.resolved_label(),
            steering=self.steering,
            max_instructions=self.max_instructions,
            faults=self.faults,
        )


@dataclass(frozen=True)
class SimResult:
    """Steady-state outcome of one simulation (measurement excludes warmup)."""

    name: str
    label: str
    ipc: float
    committed: int
    cycles: int
    mispredict_interval: float
    avg_active_clusters: float
    reconfigurations: int
    stats: SimStats

    def speedup_over(self, other: "SimResult") -> float:
        if other.ipc == 0:
            return float("inf")
        return self.ipc / other.ipc


def _to_sim_result(run_result) -> SimResult:
    return SimResult(
        name=run_result.name,
        label=run_result.label,
        ipc=run_result.ipc,
        committed=run_result.committed,
        cycles=run_result.cycles,
        mispredict_interval=run_result.mispredict_interval,
        avg_active_clusters=run_result.avg_active_clusters,
        reconfigurations=run_result.reconfigurations,
        stats=run_result.stats,
    )


# ----------------------------------------------------------------------
# simulate


def _resolve_tracer(trace):
    """``trace=`` keyword -> ``(tracer, session_to_close)``.

    A string/path names an export directory: a
    :class:`~repro.observability.TraceSession` is created and closed (files
    written) when the run finishes.  An explicit
    :class:`~repro.observability.Tracer` is used as-is and left open — the
    caller owns its lifecycle.
    """
    if trace is None:
        return None, None
    from .observability import Tracer, TraceSession

    if isinstance(trace, Tracer):
        return trace, None
    session = TraceSession(trace)
    return session, session


def simulate(
    workload,
    *,
    trace=None,
    **kwargs,
) -> Union[SimResult, MultiProgResult]:
    """Run one simulation and return its :class:`SimResult`.

    ``workload`` is a :class:`SimSpec`, a profile name, or a
    :class:`~repro.workloads.Trace`; every other parameter is a
    :class:`SimSpec` field passed by keyword::

        simulate("swim", trace_length=20_000, reconfig_policy="explore")
        simulate(my_trace, processor=my_config, warmup=2_000)
        simulate(SimSpec(workload="gzip", topology="grid"))

    ``trace`` (not a :class:`SimSpec` field — tracers are stateful) turns
    on observability: pass a directory path to get ``events.jsonl``,
    ``timeline.csv``, and a Perfetto-loadable ``trace.json`` written there,
    or a :class:`repro.observability.Tracer` instance to sink events
    yourself.  Tracing is passive — the returned result is bit-identical
    to an untraced run (see ``docs/OBSERVABILITY.md``).

    Multiprogrammed runs use the same entry point: pass a
    :class:`~repro.multiprog.MultiProgSpec`, or a tuple of profile names
    plus :class:`MultiProgSpec` fields by keyword, and the multiprog
    co-scheduler runs instead, returning a
    :class:`~repro.multiprog.MultiProgResult`::

        simulate(("gzip", "swim"), topology="torus", arbiter="round-robin")

    The pre-facade spelling ``simulate(trace, config, controller)`` was
    removed after its deprecation cycle (analysis rule L202 guards
    against its return); every parameter except the workload is
    keyword-only.
    """
    if isinstance(workload, MultiProgSpec) or isinstance(workload, (tuple, list)):
        return _simulate_multiprog(workload, trace, kwargs)

    if isinstance(workload, SimSpec):
        spec = dataclasses.replace(workload, **kwargs) if kwargs else workload
    else:
        spec = SimSpec(workload, **kwargs)

    from .experiments.runner import run_trace, scaled_length
    from .workloads.generator import generate_trace

    if isinstance(spec.workload, Trace):
        workload_trace = spec.workload
    else:
        workload_trace = generate_trace(
            get_profile(spec.workload),
            spec.trace_length or scaled_length(),
            spec.seed,
        )
    controller_obj = spec.controller_spec().build()
    steering_factory = None
    if spec.steering is not None:
        from .experiments.sweep import _build_steering

        steering_factory = _build_steering(spec.steering)
    tracer, session = _resolve_tracer(trace)
    try:
        result = run_trace(
            workload_trace,
            spec.processor_config(),
            controller_obj,
            warmup=spec.warmup,
            label=spec.resolved_label(),
            steering=steering_factory,
            max_instructions=spec.max_instructions,
            tracer=tracer,
            fault_schedule=spec.faults,
        )
    finally:
        if session is not None:
            session.close()
    return _to_sim_result(result)


def _simulate_multiprog(workload, trace, kwargs) -> MultiProgResult:
    """The multiprogrammed arm of :func:`simulate`."""
    if isinstance(workload, MultiProgSpec):
        spec = dataclasses.replace(workload, **kwargs) if kwargs else workload
    else:
        if not workload or not all(isinstance(w, str) for w in workload):
            raise ConfigError(
                "a multiprogrammed workload is a non-empty tuple of "
                f"profile names, got {workload!r}"
            )
        allowed = {f.name for f in dataclasses.fields(MultiProgSpec)}
        unknown = sorted(set(kwargs) - allowed)
        if unknown:
            raise ConfigError(
                f"unknown multiprog arguments {unknown}; choose from "
                f"{sorted(allowed - {'workloads'})}"
            )
        spec = MultiProgSpec(workloads=tuple(workload), **kwargs)
    tracer, session = _resolve_tracer(trace)
    try:
        return run_multiprog(spec, tracer=tracer)
    finally:
        if session is not None:
            session.close()


# ----------------------------------------------------------------------
# sweep


@dataclass
class SweepResult:
    """Outcome of one sweep: per-spec records plus engine metrics.

    ``records`` line up with the input specs (one
    :class:`~repro.experiments.sweep.RunRecord` each, in order).
    ``results`` holds the corresponding :class:`SimResult` for successful
    runs and ``None`` for structured failures.
    """

    records: List[object] = field(default_factory=list)
    metrics: Optional[object] = None

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.records)

    @property
    def failures(self) -> List[object]:
        return [r for r in self.records if not r.ok]

    @property
    def results(self) -> List[Optional[SimResult]]:
        return [
            _to_sim_result(r.result) if r.ok and r.result is not None else None
            for r in self.records
        ]

    def require_ok(self) -> "SweepResult":
        """Raise :class:`~repro.errors.SweepError` on any failed record."""
        from .experiments.sweep import require_ok

        require_ok(self.records)
        return self

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)


def sweep(
    specs: Iterable[object],
    *,
    backend: Union[str, object] = "auto",
    lanes: Optional[str] = None,
    jobs: Optional[int] = None,
    batch_size: Optional[int] = None,
    cache: bool = True,
    cache_dir=None,
    journal=None,
    resume: bool = False,
    timeout: Optional[float] = None,
    retries: int = 1,
    progress=None,
    trace=None,
) -> SweepResult:
    """Fan a matrix of simulations out across an execution backend.

    ``specs`` may mix :class:`SimSpec`,
    :class:`~repro.multiprog.MultiProgSpec`, and raw
    :class:`~repro.experiments.sweep.RunSpec` entries.  Parallelism,
    caching, checkpoint journals, and fault tolerance are the sweep
    engine's (see ``docs/SWEEPS.md``); this facade only translates the
    vocabulary.  Failures come back as structured records — call
    :meth:`SweepResult.require_ok` to raise instead.

    ``backend`` picks the execution mechanism — ``"auto"`` (serial for
    one job, a local process pool otherwise, distributed when ``lanes``
    is given, batch when ``batch_size`` is given), ``"serial"``,
    ``"process-pool"``, ``"distributed"`` (a TCP coordinator feeding
    worker processes; ``lanes`` lists them: ``"local,4"`` spawns four
    local workers, ``"host:port,8"`` opens eight connections to a
    standing worker agent on another machine, ``;`` separates lanes), or
    ``"batch"`` (``batch_size`` independent simulations advance in
    lockstep per process through the fused cycle loop — see
    ``docs/BATCHING.md``; composes with ``jobs`` for pool fan-out).
    Every backend returns bit-identical records; see ``docs/SWEEPS.md``.

    ``trace`` names a directory to receive the sweep's observability
    artifacts: ``sweep_metrics.json`` (the extended metrics snapshot with
    per-spec queue/run timings and backend lifecycle events) and
    ``sweep_trace.json`` (Chrome trace-event spans of every executed
    run, lane-packed to show worker utilization; open in Perfetto).
    """
    from .experiments.sweep import (
        RunSpec,
        SweepConfig,
        SweepRunner,
        multiprog_run_spec,
    )

    run_specs: List[RunSpec] = []
    for spec in specs:
        if isinstance(spec, SimSpec):
            run_specs.append(spec.to_run_spec())
        elif isinstance(spec, MultiProgSpec):
            run_specs.append(multiprog_run_spec(spec))
        elif isinstance(spec, RunSpec):
            run_specs.append(spec)
        else:
            raise ConfigError(
                f"sweep() takes SimSpec, MultiProgSpec, or RunSpec "
                f"entries, got {type(spec).__name__}"
            )
    runner = SweepRunner(
        SweepConfig(
            backend=backend,
            lanes=lanes,
            jobs=jobs,
            batch_size=batch_size,
            cache_dir=cache_dir,
            use_cache=cache,
            timeout=timeout,
            retries=retries,
            journal=journal,
            resume=resume,
            trace_dir=trace,
        ),
        progress=progress,
    )
    records = runner.run(run_specs)
    return SweepResult(records=records, metrics=runner.metrics)
