"""Package version, in a leaf module.

Lives below every layer so that low-level code (e.g. the sweep cache key,
which folds the version into its content hash) can read it without
importing the package root — the root imports the whole stack, so a
``import repro`` from inside the stack is a layering back-edge.
"""

__version__ = "1.0.0"
