"""Drives a processor through a :class:`FaultSchedule`.

The manager is owned by :class:`~repro.pipeline.processor.ClusteredProcessor`
and polled from the top of ``step()`` with a single integer compare per
cycle (the same next-event pattern the tracer sampling uses), so a run
without a schedule pays one comparison and is bit-identical to a build
without this module.

Fault semantics (the graceful-degradation contract):

* **cluster_kill** — the cluster leaves the steerable set immediately
  (advance-warning model: the failure is announced before hard loss, so
  in-flight work drains naturally, exactly like the paper's
  reconfiguration drain).  Decentralized cache banks are remapped onto
  the surviving clusters (which flushes the L1, like any resize), a
  ``remap_start`` event fires, and when the dead cluster has fully
  drained a ``remap_done`` event records the recovery latency.
* **cluster_restore** — the cluster rejoins the steerable set; banks are
  remapped back.
* **link_sever / link_degrade / link_restore** — delegated to the
  :class:`~repro.interconnect.network.Network`, which recomputes routes
  around severed links (raising
  :class:`~repro.errors.UnreachableCluster` rather than inventing
  latencies when the fabric is partitioned).  The route-table invariant
  check re-arms after every link event so the recomputed tables are
  re-validated.
* **fu_disable / fu_enable** — flips the per-cluster steering mask for
  one functional-unit pool; queued instructions still issue and drain.

After every applied event the processor's controller is notified through
its ``on_fault`` hook so interval/exploration state can restart against
the new machine shape.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from .schedule import FaultEvent, FaultSchedule

#: poll sentinel: far beyond any reachable simulation cycle
NEVER = 1 << 60


class FaultManager:
    """Applies a :class:`FaultSchedule` to one processor, deterministically."""

    def __init__(self, schedule: FaultSchedule, processor) -> None:
        schedule.validate_for(processor.config)
        self.processor = processor
        self.schedule = schedule
        self._events: List[FaultEvent] = list(schedule.events)
        self._pos = 0
        #: clusters killed and not yet restored
        self.dead: Set[int] = set()
        #: killed clusters still draining in-flight work -> kill cycle
        self._draining: Dict[int, int] = {}
        #: per-cluster disabled functional-unit pools
        self._disabled: Dict[int, Set[str]] = {}
        #: start of the current degraded interval (None = healthy)
        self._degraded_since: Optional[int] = None
        # validate link endpoints against the actual topology up front, so
        # a bad schedule fails at construction instead of mid-run
        network = processor.network
        for event in self._events:
            if event.kind.startswith("link_"):
                network.require_link(event.src, event.dst)

    @property
    def next_cycle(self) -> int:
        """First cycle the processor must poll :meth:`advance` at."""
        if self._draining:
            return self.processor.cycle + 1
        if self._pos < len(self._events):
            return self._events[self._pos].cycle
        return NEVER

    # ------------------------------------------------------------------
    def advance(self, cycle: int) -> int:
        """Apply every event due at ``cycle`` and progress pending drains.

        Returns the next cycle the processor must call back at (``NEVER``
        once the schedule is exhausted and nothing is draining).
        """
        events = self._events
        while self._pos < len(events) and events[self._pos].cycle <= cycle:
            self._apply(events[self._pos], cycle)
            self._pos += 1
        if self._draining:
            self._check_drains(cycle)
        self._update_degraded(cycle)
        if self._draining:
            return cycle + 1
        if self._pos < len(events):
            return events[self._pos].cycle
        return NEVER

    def finalize(self, cycle: int) -> None:
        """Close the open degraded interval at end of run."""
        if self._degraded_since is not None:
            self.processor.stats.degraded_cycles += cycle - self._degraded_since
            self._degraded_since = None

    # ------------------------------------------------------------------
    def _apply(self, event: FaultEvent, cycle: int) -> None:
        p = self.processor
        kind = event.kind
        if kind == "cluster_kill":
            if event.cluster in self.dead:
                return  # idempotent: already dead
            self._count(event, "cluster_kills")
            self.dead.add(event.cluster)
            cluster = p.clusters[event.cluster]
            cluster.live = False
            cluster.refresh_steer_mask(self._disabled.get(event.cluster, ()))
            self._draining[event.cluster] = cycle
            p.refresh_live_clusters()
            self._emit(
                "remap_start",
                target=event.target_label(),
                live=p.config.num_clusters - len(self.dead),
            )
        elif kind == "cluster_restore":
            if event.cluster not in self.dead:
                return  # idempotent: not dead
            self._count(event, None)
            self.dead.discard(event.cluster)
            self._draining.pop(event.cluster, None)
            cluster = p.clusters[event.cluster]
            cluster.live = True
            cluster.refresh_steer_mask(self._disabled.get(event.cluster, ()))
            p.refresh_live_clusters()
        elif kind == "fu_disable":
            units = self._disabled.setdefault(event.cluster, set())
            if event.unit in units:
                return
            units.add(event.unit)
            self._count(event, "fu_faults")
            p.clusters[event.cluster].refresh_steer_mask(units)
        elif kind == "fu_enable":
            units = self._disabled.get(event.cluster)
            if not units or event.unit not in units:
                return
            units.discard(event.unit)
            self._count(event, None)
            p.clusters[event.cluster].refresh_steer_mask(units)
        elif kind == "link_sever":
            if not p.network.sever_link(event.src, event.dst):
                return
            self._count(event, "links_severed")
            self._recheck_topology()
        elif kind == "link_degrade":
            if not p.network.degrade_link(event.src, event.dst, event.factor):
                return
            self._count(event, "links_degraded")
            self._recheck_topology()
        elif kind == "link_restore":
            if not p.network.restore_link(event.src, event.dst):
                return
            self._count(event, None)
            self._recheck_topology()
        on_fault = getattr(p.controller, "on_fault", None)
        if on_fault is not None:
            on_fault(event, cycle)

    def _count(self, event: FaultEvent, counter: Optional[str]) -> None:
        stats = self.processor.stats
        stats.faults_injected += 1
        if counter is not None:
            setattr(stats, counter, getattr(stats, counter) + 1)
        self._emit("fault_inject", fault=event.kind, target=event.target_label())

    def _check_drains(self, cycle: int) -> None:
        p = self.processor
        stats = p.stats
        for cid in sorted(self._draining):
            if p.clusters[cid].reset_for_drain_check():
                start = self._draining.pop(cid)
                latency = cycle - start
                stats.recovery_cycles += latency
                self._emit(
                    "remap_done", target=f"cluster:{cid}", latency=latency
                )

    def _update_degraded(self, cycle: int) -> None:
        degraded = (
            bool(self.dead)
            or any(self._disabled.values())
            or self.processor.network.is_degraded
        )
        stats = self.processor.stats
        if degraded:
            if self._degraded_since is None:
                self._degraded_since = cycle
        elif self._degraded_since is not None:
            stats.degraded_cycles += cycle - self._degraded_since
            self._degraded_since = None

    def _recheck_topology(self) -> None:
        """Re-arm the one-shot route-table walk after a reroute."""
        invariants = self.processor.invariants
        if invariants is not None:
            invariants._topology_checked = False

    def _emit(self, kind: str, **fields) -> None:
        p = self.processor
        if p.tracer.enabled:
            p.tracer.emit(
                kind, cycle=p.cycle, committed=p.stats.committed, **fields
            )
