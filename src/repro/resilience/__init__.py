"""Architectural fault model with reconfiguration-driven degradation.

The paper's reconfiguration machinery (drain in-flight work, restrict
dispatch, remap cache banks) is exactly what a resilient processor needs
when part of the fabric *fails*.  This package supplies:

* :class:`FaultSchedule` / :class:`FaultEvent` — a deterministic,
  cycle-scheduled description of architectural faults (cluster
  kill/restore, link sever/degrade/restore, functional-unit
  stuck-at-disabled), declared per run and keyed only to simulated
  cycles — never wall-clock time.
* :class:`FaultManager` — drives a :class:`ClusteredProcessor` through
  the schedule: marks clusters dead so steering stops targeting them,
  drains their in-flight work exactly like a reconfiguration step,
  remaps decentralized cache banks onto the surviving clusters, and
  reroutes the interconnect around severed links.

Everything here is deterministic and tracer-passive: a faulted run is
bit-identical traced vs. untraced and serial vs. parallel (pinned by the
fingerprint suite).  See ``docs/RESILIENCE.md``.
"""

from .schedule import FAULT_KINDS, FU_POOLS, FaultEvent, FaultSchedule
from .manager import FaultManager

__all__ = [
    "FAULT_KINDS",
    "FU_POOLS",
    "FaultEvent",
    "FaultManager",
    "FaultSchedule",
]
