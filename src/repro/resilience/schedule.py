"""Declarative, deterministic architectural fault schedules.

A :class:`FaultSchedule` is a frozen, picklable value object: it travels
inside :class:`~repro.experiments.sweep.RunSpec` to worker processes,
participates in the result-cache key via its ``repr``, and is replayed
bit-identically on resume.  Faults are keyed to *simulated cycles only* —
wall-clock scheduling would break the determinism contract every other
subsystem rests on.

Event kinds:

``cluster_kill`` / ``cluster_restore``
    Take a cluster out of (back into) the steerable set.  In-flight work
    in a killed cluster drains naturally (the advance-warning model: an
    ECC-threshold or thermal trip announces the failure before hard loss,
    exactly the window the paper's reconfiguration drain needs).
``link_sever`` / ``link_degrade`` / ``link_restore``
    Address a directed interconnect link by its ``(src, dst)`` endpoint
    pair; both directions of the physical wire are affected.  Severing
    removes the link from routing (routes are recomputed around it);
    degrading multiplies its latency by ``factor``.
``fu_disable`` / ``fu_enable``
    Mark one functional-unit pool of a cluster stuck-at-disabled: the
    steering heuristics stop sending matching instructions there (already
    queued work still issues and drains).

The home cluster is fault-protected: it hosts the front end, the L2, and
the centralized LSQ, so killing it (or disabling its units) is not a
*degraded* machine but a dead one.  Schedules targeting it are rejected
at validation time.
"""

from __future__ import annotations

import json
import random
from dataclasses import asdict, dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from ..errors import ConfigError

#: every recognised fault-event kind
FAULT_KINDS = (
    "cluster_kill",
    "cluster_restore",
    "link_sever",
    "link_degrade",
    "link_restore",
    "fu_disable",
    "fu_enable",
)

#: functional-unit pools a ``fu_disable`` event may target (the four pools
#: of :class:`~repro.clusters.functional_units.FunctionalUnits`)
FU_POOLS = ("int_alu", "int_mul", "fp_alu", "fp_mul")

_CLUSTER_KINDS = ("cluster_kill", "cluster_restore")
_LINK_KINDS = ("link_sever", "link_degrade", "link_restore")
_FU_KINDS = ("fu_disable", "fu_enable")


@dataclass(frozen=True)
class FaultEvent:
    """One cycle-scheduled architectural fault (see module docstring)."""

    cycle: int
    kind: str
    #: target cluster (cluster_* and fu_* kinds)
    cluster: int = -1
    #: directed link endpoints (link_* kinds)
    src: int = -1
    dst: int = -1
    #: functional-unit pool (fu_* kinds)
    unit: str = ""
    #: latency multiplier (link_degrade only)
    factor: int = 2

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigError(
                f"unknown fault kind {self.kind!r}; choose from {FAULT_KINDS}"
            )
        if self.cycle < 1:
            raise ConfigError(
                f"fault cycle must be >= 1, got {self.cycle} ({self.kind})"
            )
        if self.kind in _CLUSTER_KINDS or self.kind in _FU_KINDS:
            if self.cluster < 0:
                raise ConfigError(f"{self.kind} needs a target cluster >= 0")
        if self.kind in _LINK_KINDS:
            if self.src < 0 or self.dst < 0 or self.src == self.dst:
                raise ConfigError(
                    f"{self.kind} needs distinct link endpoints src/dst >= 0, "
                    f"got ({self.src}, {self.dst})"
                )
        if self.kind in _FU_KINDS and self.unit not in FU_POOLS:
            raise ConfigError(
                f"{self.kind} needs unit in {FU_POOLS}, got {self.unit!r}"
            )
        if self.kind == "link_degrade" and self.factor < 2:
            raise ConfigError(
                f"link_degrade factor must be >= 2, got {self.factor}"
            )

    def target_label(self) -> str:
        """Stable human-readable target for trace events."""
        if self.kind in _LINK_KINDS:
            return f"link:{self.src}->{self.dst}"
        if self.kind in _FU_KINDS:
            return f"fu:{self.cluster}:{self.unit}"
        return f"cluster:{self.cluster}"


@dataclass(frozen=True)
class FaultSchedule:
    """An ordered set of :class:`FaultEvent` (stably sorted by cycle)."""

    events: Tuple[FaultEvent, ...] = field(default=())

    def __post_init__(self) -> None:
        events = tuple(self.events)
        for event in events:
            if not isinstance(event, FaultEvent):
                raise ConfigError(
                    f"FaultSchedule events must be FaultEvent, got "
                    f"{type(event).__name__}"
                )
        # stable sort: same-cycle events keep their declaration order,
        # which is the order the manager applies them in
        object.__setattr__(
            self, "events", tuple(sorted(events, key=lambda e: e.cycle))
        )

    def __bool__(self) -> bool:
        return bool(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def validate_for(self, config) -> None:
        """Reject schedules that cannot apply to ``config``.

        The home cluster (front end, L2, centralized LSQ) is
        fault-protected, and every cluster index must exist.  Link
        endpoints are validated later against the actual topology by the
        :class:`~repro.resilience.manager.FaultManager`.
        """
        n = config.num_clusters
        home = config.home_cluster
        for event in self.events:
            if event.kind in _CLUSTER_KINDS or event.kind in _FU_KINDS:
                if event.cluster >= n:
                    raise ConfigError(
                        f"{event.kind} targets cluster {event.cluster}, but "
                        f"the machine has {n} clusters"
                    )
                if event.cluster == home and event.kind in (
                    "cluster_kill",
                    "fu_disable",
                ):
                    raise ConfigError(
                        f"{event.kind} may not target the home cluster "
                        f"{home} (front end / L2 / centralized LSQ live "
                        "there; killing it is machine death, not "
                        "degradation)"
                    )
            if event.kind in _LINK_KINDS:
                if event.src >= n or event.dst >= n:
                    raise ConfigError(
                        f"{event.kind} endpoints ({event.src}, {event.dst}) "
                        f"exceed the {n}-cluster fabric"
                    )

    # -- serialization -------------------------------------------------
    def to_json(self) -> str:
        return json.dumps({"events": [asdict(e) for e in self.events]})

    @classmethod
    def from_json(cls, text: str) -> "FaultSchedule":
        """Strict parse: unknown keys or wrong-typed fields raise."""
        data = json.loads(text)
        if not isinstance(data, dict):
            raise ConfigError("fault schedule JSON must be an object")
        unknown = sorted(set(data) - {"events"})
        if unknown:
            raise ConfigError(
                f"unknown fault schedule key {unknown[0]!r}"
            )
        events = []
        allowed = {
            "cycle",
            "kind",
            "cluster",
            "src",
            "dst",
            "unit",
            "factor",
        }
        for entry in data.get("events", ()):
            if not isinstance(entry, dict):
                raise ConfigError("each fault event must be an object")
            bad = sorted(set(entry) - allowed)
            if bad:
                raise ConfigError(f"unknown fault event key {bad[0]!r}")
            events.append(FaultEvent(**entry))
        return cls(events=tuple(events))

    # -- generation ----------------------------------------------------
    @classmethod
    def seeded(
        cls,
        seed: int,
        *,
        cycles: int,
        num_clusters: int = 16,
        faults: int = 2,
        kinds: Sequence[str] = ("cluster", "fu"),
        home_cluster: int = 0,
        links: Sequence[Tuple[int, int]] = (),
        repair_after: int = 0,
        window: Optional[Tuple[int, int]] = None,
    ) -> "FaultSchedule":
        """A deterministic random schedule from ``random.Random(seed)``.

        ``kinds`` draws from ``"cluster"`` (kill, plus a restore
        ``repair_after`` cycles later when nonzero), ``"fu"`` (pool
        disable), and ``"link"`` (sever one of ``links``; requires a
        non-empty ``links`` sequence of valid ``(src, dst)`` pairs for
        the topology the run uses).  Fault cycles land in ``window``
        (default: the middle half of ``[1, cycles]``).
        """
        if faults < 0:
            raise ConfigError(f"faults must be >= 0, got {faults}")
        if "link" in kinds and not links:
            raise ConfigError(
                "seeded link faults need candidate (src, dst) pairs via "
                "links="
            )
        rng = random.Random(seed)
        lo, hi = window if window is not None else (
            max(1, cycles // 4),
            max(2, cycles // 2),
        )
        targets = [c for c in range(num_clusters) if c != home_cluster]
        events = []
        killed: set = set()
        for _ in range(faults):
            kind = kinds[rng.randrange(len(kinds))]
            at = rng.randrange(lo, max(lo + 1, hi))
            if kind == "cluster":
                alive = [c for c in targets if c not in killed]
                if len(alive) <= 1:
                    continue  # keep at least one non-home cluster alive
                target = alive[rng.randrange(len(alive))]
                events.append(
                    FaultEvent(cycle=at, kind="cluster_kill", cluster=target)
                )
                if repair_after > 0:
                    events.append(
                        FaultEvent(
                            cycle=at + repair_after,
                            kind="cluster_restore",
                            cluster=target,
                        )
                    )
                else:
                    killed.add(target)
            elif kind == "fu":
                target = targets[rng.randrange(len(targets))]
                unit = FU_POOLS[rng.randrange(len(FU_POOLS))]
                events.append(
                    FaultEvent(
                        cycle=at, kind="fu_disable", cluster=target, unit=unit
                    )
                )
            elif kind == "link":
                src, dst = links[rng.randrange(len(links))]
                events.append(
                    FaultEvent(cycle=at, kind="link_degrade", src=src, dst=dst)
                )
            else:
                raise ConfigError(
                    f"unknown seeded fault family {kind!r}; choose from "
                    "('cluster', 'fu', 'link')"
                )
        return cls(events=tuple(events))


def link_id_map(topology) -> Dict[Tuple[int, int], int]:
    """Reverse the topology's link table: ``(src, dst) -> link id``."""
    return {ends: link for link, ends in topology.link_endpoints().items()}
