"""Structured tracing and metrics export (off by default, cheap when off).

The simulator's dynamic behaviour — exploration sweeps, instability-driven
interval growth, fine-grained table advice — is the paper's whole point,
but a run normally reports only its final :class:`~repro.stats.SimStats`.
This package adds an opt-in window into *why* a controller did what it did:

* :class:`Tracer` — the sink interface.  The default :data:`NULL_TRACER`
  is disabled and every emission site guards on ``tracer.enabled``, so an
  untraced run pays one attribute check per interval boundary and nothing
  per committed instruction.  Tracing is strictly read-only: a traced run
  is bit-identical to an untraced one.
* :class:`MemoryTracer` / :class:`JsonlTracer` — in-memory and streaming
  JSONL sinks.
* :class:`TraceSession` — directory sink: collects events, then writes
  ``events.jsonl``, ``timeline.csv``, and ``trace.json`` (Chrome
  trace-event format, loadable in Perfetto / ``chrome://tracing``).
* :mod:`~repro.observability.events` — the typed event schema
  (``EVENT_FIELDS``), pinned by a golden-file test.
* :mod:`~repro.observability.exporters` — JSONL / CSV / Chrome-trace
  converters, usable on any recorded event list.

Events are keyed by simulated time only (``cycle``, ``committed`` — never
wall-clock), so traces are deterministic and diffable across runs.

See ``docs/OBSERVABILITY.md`` for the event catalogue and a Perfetto
walkthrough.
"""

from __future__ import annotations

from .events import BASE_FIELDS, EVENT_FIELDS, validate_event
from .exporters import (
    chrome_trace,
    read_jsonl,
    spans_chrome_trace,
    write_chrome_trace,
    write_jsonl,
    write_timeline_csv,
)
from .tracer import (
    NULL_TRACER,
    JsonlTracer,
    MemoryTracer,
    Tracer,
    TraceSession,
)

__all__ = [
    "BASE_FIELDS",
    "EVENT_FIELDS",
    "JsonlTracer",
    "MemoryTracer",
    "NULL_TRACER",
    "TraceSession",
    "Tracer",
    "chrome_trace",
    "read_jsonl",
    "spans_chrome_trace",
    "validate_event",
    "write_chrome_trace",
    "write_jsonl",
    "write_timeline_csv",
]
