"""Exporters: JSONL, CSV timeline, and Chrome trace-event format.

All exporters are pure functions over a recorded event list (dicts in the
:mod:`repro.observability.events` schema), so any sink that buffers events
— :class:`~repro.observability.tracer.MemoryTracer`, a parsed JSONL file —
can be converted after the fact.

The Chrome trace-event output follows the ``traceEvents`` JSON array
format understood by Perfetto (https://ui.perfetto.dev) and
``chrome://tracing``.  Timestamps are microseconds; we map one simulated
cycle to one microsecond, so the viewer's time axis reads directly in
cycles.
"""

from __future__ import annotations

import csv
import json
import os
from typing import Dict, Iterable, List, Mapping, Sequence, Union

_PathLike = Union[str, os.PathLike]

#: timeline.csv column order (the fields of a ``sample`` event)
TIMELINE_COLUMNS = ("cycle", "committed", "ipc", "active_clusters", "rob")

#: Chrome-trace thread ids: counters on one track, controller events on another
_TID_TIMELINE = 0
_TID_CONTROLLER = 1


# ----------------------------------------------------------------------
# JSONL


def to_jsonl_lines(events: Iterable[Mapping[str, object]]) -> List[str]:
    """One compact JSON object per event, field order preserved."""
    return [json.dumps(dict(event), separators=(", ", ": ")) for event in events]


def write_jsonl(events: Iterable[Mapping[str, object]], path: _PathLike) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        for line in to_jsonl_lines(events):
            fh.write(line)
            fh.write("\n")


def read_jsonl(path: _PathLike) -> List[Dict[str, object]]:
    """Parse a JSONL event stream back into the recorded list of dicts."""
    events: List[Dict[str, object]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


# ----------------------------------------------------------------------
# CSV timeline


def write_timeline_csv(
    events: Iterable[Mapping[str, object]], path: _PathLike
) -> None:
    """Flatten the periodic ``sample`` events into a CSV table.

    Columns: ``cycle, committed, ipc, active_clusters, rob`` — ready for
    pandas/gnuplot without a JSON parser in sight.
    """
    with open(path, "w", encoding="utf-8", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(TIMELINE_COLUMNS)
        for event in events:
            if event.get("kind") == "sample":
                writer.writerow([event[column] for column in TIMELINE_COLUMNS])


# ----------------------------------------------------------------------
# Chrome trace-event format


def chrome_trace(events: Sequence[Mapping[str, object]]) -> Dict[str, object]:
    """Convert a simulator event stream to Chrome trace-event JSON.

    Layout in the viewer:

    * thread ``timeline`` — counter tracks for IPC, active clusters, and
      ROB occupancy (from ``sample`` and ``reconfig`` events);
    * thread ``controller`` — an instant marker per controller event, plus
      one duration slice per exploration sweep (``explore_start`` ..
      ``explore_decision``/``phase_change``).
    """
    trace: List[Dict[str, object]] = [
        _meta("process_name", {"name": "repro simulation"}),
        _meta("thread_name", {"name": "timeline"}, tid=_TID_TIMELINE),
        _meta("thread_name", {"name": "controller"}, tid=_TID_CONTROLLER),
    ]
    explore_open = False
    last_ts = 0
    for event in events:
        kind = str(event["kind"])
        ts = int(event["cycle"])  # type: ignore[arg-type]
        last_ts = ts if ts > last_ts else last_ts
        if kind == "sample":
            trace.append(_counter("IPC", ts, {"ipc": event["ipc"]}))
            trace.append(
                _counter("active clusters", ts, {"clusters": event["active_clusters"]})
            )
            trace.append(_counter("ROB", ts, {"entries": event["rob"]}))
            continue
        if kind == "reconfig":
            trace.append(_counter("active clusters", ts, {"clusters": event["after"]}))
        if kind == "explore_start" and not explore_open:
            explore_open = True
            trace.append(_span("explore", "B", ts))
        elif kind in ("explore_decision", "phase_change", "discontinue") and explore_open:
            explore_open = False
            trace.append(_span("explore", "E", ts))
        args = {
            key: value
            for key, value in event.items()
            if key not in ("kind", "cycle")
        }
        trace.append(
            {
                "name": kind,
                "ph": "i",
                "ts": ts,
                "pid": 0,
                "tid": _TID_CONTROLLER,
                "s": "t",
                "args": args,
            }
        )
    if explore_open:
        trace.append(_span("explore", "E", last_ts))
    return {"traceEvents": trace, "displayTimeUnit": "ns"}


def write_chrome_trace(
    events: Sequence[Mapping[str, object]], path: _PathLike
) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(chrome_trace(events), fh)


def _meta(name: str, args: Dict[str, object], tid: int = 0) -> Dict[str, object]:
    return {"name": name, "ph": "M", "pid": 0, "tid": tid, "args": args}


def _counter(name: str, ts: int, args: Dict[str, object]) -> Dict[str, object]:
    return {
        "name": name,
        "ph": "C",
        "ts": ts,
        "pid": 0,
        "tid": _TID_TIMELINE,
        "args": args,
    }


def _span(name: str, phase: str, ts: int) -> Dict[str, object]:
    return {"name": name, "ph": phase, "ts": ts, "pid": 0, "tid": _TID_CONTROLLER}


# ----------------------------------------------------------------------
# wall-clock span traces (sweep engine)


def spans_chrome_trace(
    spans: Sequence[Mapping[str, object]], process_name: str = "repro sweep"
) -> Dict[str, object]:
    """Chrome trace of wall-clock spans, e.g. a sweep's per-spec runs.

    Each span is ``{"name": str, "start": seconds, "end": seconds}`` plus
    optional ``"args"``.  Overlapping spans are packed onto lanes
    (one viewer thread per lane) greedily by start time, which visualizes
    worker-pool utilization without needing real worker identities.
    """
    ordered = sorted(spans, key=lambda span: (span["start"], span["end"]))
    lane_free_at: List[float] = []
    trace: List[Dict[str, object]] = [_meta("process_name", {"name": process_name})]
    for span in ordered:
        start = float(span["start"])  # type: ignore[arg-type]
        end = float(span["end"])  # type: ignore[arg-type]
        lane = -1
        for index, free_at in enumerate(lane_free_at):
            if free_at <= start:
                lane = index
                break
        if lane < 0:
            lane = len(lane_free_at)
            lane_free_at.append(0.0)
            trace.append(_meta("thread_name", {"name": f"lane {lane}"}, tid=lane))
        lane_free_at[lane] = end
        trace.append(
            {
                "name": str(span["name"]),
                "ph": "X",
                "ts": int(start * 1e6),
                "dur": max(1, int((end - start) * 1e6)),
                "pid": 0,
                "tid": lane,
                "args": dict(span.get("args", {})),  # type: ignore[arg-type]
            }
        )
    return {"traceEvents": trace, "displayTimeUnit": "ms"}
