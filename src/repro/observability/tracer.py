"""Tracer sinks: no-op, in-memory, streaming JSONL, and directory session.

The contract every emission site relies on:

* ``tracer.enabled`` is a plain attribute, checked *before* building the
  event's keyword arguments — a disabled tracer costs one attribute read
  and a branch, never a dict construction.
* ``emit(kind, cycle=..., committed=..., **fields)`` records one event.
  Field order is the schema order (:mod:`repro.observability.events`);
  sinks preserve it (dicts are insertion-ordered), so serialized traces
  are byte-stable.
* ``sample_period`` (cycles) throttles the processor's periodic timeline
  samples; ``0`` disables sampling even on an enabled tracer.
* Tracers are passive observers: they must never touch simulator state,
  which is what makes a traced run bit-identical to an untraced one.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Dict, List, Optional, TextIO, Union

from .exporters import write_chrome_trace, write_jsonl, write_timeline_csv

#: default cycles between periodic timeline samples
DEFAULT_SAMPLE_PERIOD = 1_000


class Tracer:
    """The sink interface; the base class is the disabled no-op."""

    #: emission sites skip all work when this is False
    enabled: bool = False
    #: cycles between processor timeline samples (0 = no sampling)
    sample_period: int = 0

    def emit(self, kind: str, **fields: object) -> None:
        """Record one event (no-op here)."""

    def close(self) -> None:
        """Flush and release any resources (no-op here)."""


#: the shared disabled tracer; ``is``-comparable and stateless
NULL_TRACER = Tracer()


class MemoryTracer(Tracer):
    """Collects events as dicts on ``self.events`` (tests, exporters)."""

    enabled = True

    def __init__(self, sample_period: int = DEFAULT_SAMPLE_PERIOD) -> None:
        self.sample_period = max(0, int(sample_period))
        self.events: List[Dict[str, object]] = []

    def emit(self, kind: str, **fields: object) -> None:
        event: Dict[str, object] = {"kind": kind}
        event.update(fields)
        self.events.append(event)


class JsonlTracer(Tracer):
    """Streams events to a JSONL file, one compact JSON object per line.

    Suits runs too long to buffer in memory; the file is valid after every
    line, so a killed run still leaves a readable prefix.
    """

    enabled = True

    def __init__(
        self,
        path: Union[str, os.PathLike],
        sample_period: int = DEFAULT_SAMPLE_PERIOD,
    ) -> None:
        self.sample_period = max(0, int(sample_period))
        self.path = pathlib.Path(path)
        self._fh: Optional[TextIO] = open(self.path, "w", encoding="utf-8")

    def emit(self, kind: str, **fields: object) -> None:
        fh = self._fh
        if fh is None:
            raise ValueError(f"JsonlTracer({self.path}) is closed")
        event: Dict[str, object] = {"kind": kind}
        event.update(fields)
        fh.write(json.dumps(event, separators=(", ", ": ")))
        fh.write("\n")

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


class TraceSession(MemoryTracer):
    """Directory sink: records in memory, exports everything on close.

    ``close()`` (idempotent) writes three files into ``directory``:

    * ``events.jsonl`` — the full event stream, one JSON object per line;
    * ``timeline.csv`` — the periodic ``sample`` events as a flat table
      (cycle, committed, ipc, active_clusters, rob);
    * ``trace.json`` — Chrome trace-event format: open it in Perfetto
      (https://ui.perfetto.dev) or ``chrome://tracing``.

    This is what ``repro.api.simulate(..., trace="some/dir")`` builds.
    """

    def __init__(
        self,
        directory: Union[str, os.PathLike],
        sample_period: int = DEFAULT_SAMPLE_PERIOD,
    ) -> None:
        super().__init__(sample_period)
        self.directory = pathlib.Path(directory)
        self.closed = False

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        self.directory.mkdir(parents=True, exist_ok=True)
        write_jsonl(self.events, self.directory / "events.jsonl")
        write_timeline_csv(self.events, self.directory / "timeline.csv")
        write_chrome_trace(self.events, self.directory / "trace.json")
