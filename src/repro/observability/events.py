"""The typed event schema.

Every event is a flat JSON-serializable dict.  Three fields are universal:

``kind``
    The event type (a key of :data:`EVENT_FIELDS`).
``cycle`` / ``committed``
    The simulated-time position: the processor's cycle counter and
    cumulative committed-instruction count at emission.  Events carry no
    wall-clock timestamps — a trace is a pure function of the run's inputs,
    so two runs with the same seed produce byte-identical traces.

:data:`EVENT_FIELDS` maps each kind to the exact tuple of additional
fields it carries, in emission order.  The schema is pinned by a
golden-file test (``tests/observability/test_schema_golden.py``); extending
it means regenerating the golden and documenting the new fields in
``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

from typing import Dict, Mapping, Tuple

#: fields present on every event, in order, after ``kind``
BASE_FIELDS: Tuple[str, ...] = ("cycle", "committed")

#: event kind -> additional fields (beyond ``kind`` + BASE_FIELDS), in order
EVENT_FIELDS: Dict[str, Tuple[str, ...]] = {
    # -- pipeline/processor.py ------------------------------------------
    # one per run, at construction
    "run_start": ("workload", "instructions", "clusters"),
    # periodic timeline sample (every ``tracer.sample_period`` cycles):
    # IPC over the elapsed window, active cluster count, ROB occupancy
    "sample": ("ipc", "active_clusters", "rob"),
    # every *effective* active-cluster change (no-op requests are absorbed
    # by the processor and emit nothing)
    "reconfig": ("before", "after", "reason"),
    # -- core/controller.py ---------------------------------------------
    # every interval boundary of an interval-based controller
    "interval": (
        "controller",
        "interval_length",
        "ipc",
        "branches",
        "memrefs",
        "distant",
    ),
    # -- core/interval_explore.py (Figure 4) ----------------------------
    "explore_start": ("candidates",),
    "explore_sample": ("clusters", "ipc"),
    # ``explored`` is ``[[clusters, ipc], ...]`` sorted by cluster count
    "explore_decision": ("chosen", "explored"),
    "phase_change": (
        "instability",
        "interval_length",
        "branches_changed",
        "memrefs_changed",
        "ipc_changed",
    ),
    # instability exceeded its threshold: the interval length doubled
    "interval_grow": ("interval_length",),
    # Figure 4's discontinue_algorithm: locked the most popular config
    "discontinue": ("locked",),
    "macrophase": ("count",),
    # -- core/interval_noexplore.py (Section 4.3) -----------------------
    "measure_start": ("settle",),
    "distant_decision": ("distant", "threshold", "chosen"),
    # -- core/finegrain.py (Section 4.4) --------------------------------
    # a table entry accumulated its Mth sample and went live
    "table_train": ("pc", "advised"),
    # a reconfiguration-point branch consulted the table (``advised`` is
    # null on a miss, which falls back to the large configuration)
    "table_lookup": ("pc", "hit", "advised"),
    "table_flush": ("entries", "hits", "misses"),
    # -- multiprog/scheduler.py -----------------------------------------
    # the arbiter granted a free cluster to a thread; ``owned`` is the
    # thread's cluster count after the grant
    "arb_grant": ("thread", "cluster", "arbiter", "owned"),
    # the arbiter reclaimed a cluster from a thread (it drains before it
    # becomes grantable); ``owned`` is the count after the reclaim
    "arb_reclaim": ("thread", "cluster", "arbiter", "owned"),
    # -- resilience/manager.py ------------------------------------------
    # an architectural fault event was applied; ``fault`` is the event
    # kind, ``target`` the stable label ("cluster:3", "link:2->3",
    # "fu:3:int_alu")
    "fault_inject": ("fault", "target"),
    # a cluster kill began the drain-and-remap sequence; ``live`` is the
    # number of live clusters after the kill
    "remap_start": ("target", "live"),
    # the killed cluster finished draining; ``latency`` is the recovery
    # latency in cycles since the kill
    "remap_done": ("target", "latency"),
}


def validate_event(event: Mapping[str, object]) -> None:
    """Raise ``ValueError`` unless ``event`` matches the schema exactly.

    Checks the kind is known and the fields are precisely
    ``("kind",) + BASE_FIELDS + EVENT_FIELDS[kind]`` — no extras, nothing
    missing.  Used by the sink tests and available to downstream consumers.
    """
    kind = event.get("kind")
    if not isinstance(kind, str) or kind not in EVENT_FIELDS:
        raise ValueError(f"unknown event kind {kind!r}")
    expected = ("kind",) + BASE_FIELDS + EVENT_FIELDS[kind]
    actual = tuple(event.keys())
    if sorted(actual) != sorted(expected):
        missing = set(expected) - set(actual)
        extra = set(actual) - set(expected)
        raise ValueError(
            f"event {kind!r} fields do not match schema: "
            f"missing {sorted(missing)}, unexpected {sorted(extra)}"
        )
