"""Two-level bank predictor for the decentralized cache (after Yoaz et al.).

At rename time the steering heuristic must guess which cache bank a load or
store will touch so it can be sent to the cluster holding that bank.  The
predictor is branch-predictor-like (Section 5): a first-level table of
per-PC bank-history registers selecting a second-level table of predicted
bank numbers.  Table sizes follow the paper: 1024 first-level entries, 4096
second-level entries.
"""

from __future__ import annotations


class TwoLevelBankPredictor:
    """Predicts the full (maximum-width) bank number for a memory PC.

    The prediction is the bank index in the *16-cluster* mapping; when fewer
    clusters are active the caller keeps only the low-order bits
    (``predicted % active``), exactly as described in Section 5 ("the two
    lower order bits of the prediction indicate the correct bank").
    """

    def __init__(
        self,
        l1_size: int = 1024,
        l2_size: int = 4096,
        history_bits: int = 6,
        max_banks: int = 16,
    ) -> None:
        for value, name in ((l1_size, "l1_size"), (l2_size, "l2_size")):
            if value < 1 or value & (value - 1):
                raise ValueError(f"{name} must be a positive power of two")
        if max_banks < 1:
            raise ValueError("max_banks must be positive")
        self.l1_size = l1_size
        self.l2_size = l2_size
        self.history_bits = history_bits
        self.max_banks = max_banks
        self._bank_bits = max(1, (max_banks - 1).bit_length())
        self._history = [0] * l1_size
        self._table = [0] * l2_size
        # speculative-mode state, per first-level entry:
        # [last_committed_bank, stride, confidence, inflight_count]
        self._stride = [[0, 0, 0, 0] for _ in range(l1_size)]

    def _l1_index(self, pc: int) -> int:
        return (pc >> 2) & (self.l1_size - 1)

    def _l2_index(self, pc: int, history: int) -> int:
        # concatenate PC bits above the history bits: the history only spans
        # 2^history_bits values, so XOR folding would squeeze every site
        # into the same small corner of the table and they would destroy
        # each other's patterns
        return ((pc >> 2) << self.history_bits | history) & (self.l2_size - 1)

    def _shift(self, history: int, bank: int) -> int:
        mask = (1 << self.history_bits) - 1
        return ((history << self._bank_bits) | bank) & mask

    def predict(self, pc: int) -> int:
        history = self._history[self._l1_index(pc)]
        return self._table[self._l2_index(pc, history)]

    def update(self, pc: int, actual_bank: int) -> None:
        if not 0 <= actual_bank < self.max_banks:
            raise ValueError(f"bank {actual_bank} out of range")
        i1 = self._l1_index(pc)
        history = self._history[i1]
        self._table[self._l2_index(pc, history)] = actual_bank
        self._history[i1] = self._shift(history, actual_bank)

    # ------------------------------------------------------------------
    # speculative interface (used by the decentralized memory system)
    #
    # Bank prediction happens at rename, but the training information (the
    # real address) only arrives later.  With a deep window many accesses of
    # the same PC are in flight, so a single history would lag by the
    # in-flight count and never lock onto strided bank patterns.  The
    # standard fix: predictions extend a *speculative* history immediately;
    # an *architectural* history advances in commit order and trains the
    # table under the true pre-access context; a misprediction resyncs the
    # speculative history from the architectural one.

    def predict_speculative(self, pc: int):
        """Returns (predicted_bank, token); pass the token to resolve().

        In the pipeline the predictor is consulted at rename but trained at
        commit, with up to a full window of same-PC accesses in flight
        between the two.  Any pure history scheme then predicts from a
        context that lags by the in-flight count and never locks onto a
        strided bank walk, so the speculative mode uses the lag-tolerant
        structure: per-PC last-committed bank + bank stride + confidence,
        extrapolated past the ``inflight`` not-yet-committed accesses
        (``bank = last + stride * (inflight + 1)``).  Strided walks predict
        exactly under any lag; irregular streams drop to low confidence and
        fall back to the last committed bank.
        """
        i1 = self._l1_index(pc)
        entry = self._stride[i1]
        last, stride, confidence, inflight = entry
        if confidence >= 2:
            predicted = (last + stride * (inflight + 1)) % self.max_banks
        else:
            predicted = last
        entry[3] = inflight + 1
        return predicted, (i1, predicted)

    def resolve(self, token, actual_bank: int) -> None:
        """Train with the actual bank, in program (commit) order."""
        if not 0 <= actual_bank < self.max_banks:
            raise ValueError(f"bank {actual_bank} out of range")
        i1, _predicted = token
        entry = self._stride[i1]
        last, stride, confidence, inflight = entry
        observed = (actual_bank - last) % self.max_banks
        if observed == stride:
            confidence = min(3, confidence + 1)
        elif confidence > 0:
            confidence -= 1
        else:
            stride = observed
        entry[0] = actual_bank
        entry[1] = stride
        entry[2] = confidence
        entry[3] = max(0, inflight - 1)
