"""Distributed load-store queue for the decentralized cache (Section 5).

Each cluster owns a 15-entry LSQ slice guarding its cache bank.  A store
whose effective address is unknown at rename occupies a *dummy slot* in
every active cluster's slice; loads behind a dummy slot may not proceed.
When the store's address is computed it is broadcast, and every dummy slot
except the one in the store's actual bank cluster is freed on broadcast
arrival (we model the broadcast on the register/cache data network, as the
paper does).
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Set, Tuple

from ..errors import SimulationError
from .lsq import MemAccess


class DistributedLSQ:
    """Per-cluster LSQ slices with the dummy-slot store protocol."""

    def __init__(self, num_clusters: int, capacity_per_cluster: int) -> None:
        if num_clusters < 1 or capacity_per_cluster < 1:
            raise ValueError("num_clusters and capacity must be positive")
        self.num_clusters = num_clusters
        self.capacity = capacity_per_cluster
        self._occupancy = [0] * num_clusters
        # (release_cycle, cluster) heap for dummy slots freed by broadcasts
        self._releases: List[Tuple[int, int]] = []
        self._entries: Dict[int, MemAccess] = {}
        #: store entries only, so load scheduling never scans the loads
        self._stores: Dict[int, MemAccess] = {}
        self._unresolved_stores: Set[int] = set()
        self._pending_loads: Dict[int, MemAccess] = {}
        #: clusters each in-flight entry currently occupies
        self._held: Dict[int, List[int]] = {}

    # ------------------------------------------------------------------
    # capacity

    def occupancy(self, cluster: int) -> int:
        return self._occupancy[cluster]

    def can_allocate_load(self, cluster: int) -> bool:
        return self._occupancy[cluster] < self.capacity

    def can_allocate_store(self, banks) -> bool:
        """``banks`` is the dispatch-eligible bank clusters: an iterable of
        cluster ids, or an int meaning the healthy prefix ``range(n)``."""
        if isinstance(banks, int):
            banks = range(banks)
        occupancy = self._occupancy
        return all(occupancy[k] < self.capacity for k in banks)

    def tick(self, cycle: int) -> None:
        """Free dummy slots whose broadcast has arrived by ``cycle``."""
        while self._releases and self._releases[0][0] <= cycle:
            _, cluster = heapq.heappop(self._releases)
            self._occupancy[cluster] -= 1

    # ------------------------------------------------------------------
    # allocation

    def allocate_load(self, access: MemAccess) -> None:
        if not self.can_allocate_load(access.cluster):
            raise SimulationError("distributed LSQ load allocate on full slice")
        self._entries[access.index] = access
        self._occupancy[access.cluster] += 1
        self._held[access.index] = [access.cluster]

    def allocate_store(self, access: MemAccess, banks) -> None:
        """Occupy a dummy slot in every bank's slice (int = ``range(n)``)."""
        if isinstance(banks, int):
            banks = range(banks)
        held = list(banks)
        if not self.can_allocate_store(held):
            raise SimulationError("distributed LSQ store allocate on full slice")
        self._entries[access.index] = access
        self._stores[access.index] = access
        self._unresolved_stores.add(access.index)
        for k in held:
            self._occupancy[k] += 1
        self._held[access.index] = held

    # ------------------------------------------------------------------
    # address resolution

    def load_address_ready(self, index: int, arrival: int) -> None:
        access = self._entries[index]
        access.addr_arrival = arrival
        self._pending_loads[index] = access

    def store_address_ready(
        self, index: int, bank_cluster: int, arrivals: Dict[int, int]
    ) -> None:
        """The store's address was broadcast; ``arrivals`` maps cluster ->
        broadcast arrival cycle.  All dummy slots except the bank cluster's
        are scheduled for release at their arrival cycles."""
        access = self._entries[index]
        access.arrivals = arrivals
        access.addr_arrival = max(arrivals.values()) if arrivals else 0
        self._unresolved_stores.discard(index)
        kept: List[int] = []
        for cluster in self._held[index]:
            if cluster == bank_cluster:
                kept.append(cluster)
            else:
                heapq.heappush(
                    self._releases, (arrivals.get(cluster, 0), cluster)
                )
        if not kept:
            # bank cluster was not among the active set at allocate time
            # (cannot normally happen); keep the entry accounted somewhere
            kept = [bank_cluster]
            self._occupancy[bank_cluster] += 1
        self._held[index] = kept

    def schedulable_loads(self) -> List[MemAccess]:
        if not self._pending_loads:
            return []
        barrier = min(self._unresolved_stores) if self._unresolved_stores else None
        ready: List[MemAccess] = []
        for index in sorted(self._pending_loads):
            if barrier is not None and index > barrier:
                break
            ready.append(self._pending_loads.pop(index))
        return ready

    def probe_constraints(self, load: MemAccess, bank_cluster: int) -> Tuple[int, bool]:
        """(latest earlier-store broadcast arrival at ``bank_cluster``,
        forwarding possible from an earlier in-flight store to same word)."""
        latest = 0
        forward = False
        best_store = -1
        for index, entry in self._stores.items():
            if index >= load.index:
                continue
            if entry.arrivals is None:
                raise SimulationError("probe_constraints on a blocked load")
            arrival = entry.arrivals.get(bank_cluster, entry.addr_arrival or 0)
            if arrival > latest:
                latest = arrival
            if entry.word == load.word and index > best_store:
                best_store = index
                forward = True
        return latest, forward

    def release(self, index: int) -> MemAccess:
        access = self._entries.pop(index)
        self._stores.pop(index, None)
        self._unresolved_stores.discard(index)
        self._pending_loads.pop(index, None)
        for cluster in self._held.pop(index):
            self._occupancy[cluster] -= 1
        return access
