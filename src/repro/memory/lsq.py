"""Centralized load-store queue (Section 2.1).

All loads and stores allocate an entry at dispatch.  A load may probe the
cache only when every earlier store still in the queue has a known address
("loads are issued when they are known to not conflict with earlier
stores"); if an earlier in-flight store to the same word exists, the load is
satisfied by forwarding instead of a cache access.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..errors import SimulationError


class MemAccess:
    """One in-flight memory instruction's LSQ state."""

    __slots__ = (
        "index",
        "cluster",
        "addr",
        "word",
        "is_store",
        "addr_arrival",
        "arrivals",
    )

    def __init__(self, index: int, cluster: int, addr: int, is_store: bool) -> None:
        self.index = index
        self.cluster = cluster
        self.addr = addr
        #: word address, precomputed: disambiguation compares it per probe
        #: against every earlier in-flight store
        self.word = addr >> 2
        self.is_store = is_store
        #: cycle the address becomes known at the (centralized) LSQ
        self.addr_arrival: Optional[int] = None
        #: decentralized: per-cluster broadcast arrival cycles
        self.arrivals: Optional[Dict[int, int]] = None


class CentralizedLSQ:
    """The single LSQ co-located with the home cluster (capacity 15N).

    Two disambiguation policies:

    * ``conservative=False`` (default, SimpleScalar-like): a load waits only
      for earlier in-flight stores to the *same word*; once those have
      computed their addresses the load probes (or forwards).
    * ``conservative=True``: a load waits until *every* earlier store in the
      queue has a known address.
    """

    def __init__(self, capacity: int, conservative: bool = False) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.conservative = conservative
        self._entries: Dict[int, MemAccess] = {}
        #: store entries only, so load scheduling never scans the loads
        self._stores: Dict[int, MemAccess] = {}
        self._unresolved_stores: Set[int] = set()
        self._pending_loads: Dict[int, MemAccess] = {}

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    def allocate(self, access: MemAccess) -> None:
        if self.full:
            raise SimulationError("LSQ allocate on a full queue")
        self._entries[access.index] = access
        if access.is_store:
            self._stores[access.index] = access
            self._unresolved_stores.add(access.index)

    def load_address_ready(self, index: int, arrival: int) -> None:
        access = self._entries[index]
        access.addr_arrival = arrival
        self._pending_loads[index] = access

    def store_address_ready(self, index: int, arrival: int) -> None:
        access = self._entries[index]
        access.addr_arrival = arrival
        self._unresolved_stores.discard(index)

    def _blocked(self, load: MemAccess) -> bool:
        if not self._unresolved_stores:
            return False
        if self.conservative:
            return min(self._unresolved_stores) < load.index
        word = load.word
        entries = self._entries
        # Order-independent any-match over int indices: the result cannot
        # depend on hash iteration order, and sorting here would cost the
        # hot path for nothing.
        for index in self._unresolved_stores:  # repro: allow[D103]
            if index < load.index and entries[index].word == word:
                return True
        return False

    def schedulable_loads(self) -> List[MemAccess]:
        """Pop and return loads no longer blocked by unresolved stores."""
        pending = self._pending_loads
        if not pending:
            return []
        if not self._unresolved_stores:
            # no store can block anything: every pending load drains
            ready = [pending[index] for index in sorted(pending)]
            pending.clear()
            return ready
        ready = []
        for index in sorted(pending):
            if not self._blocked(pending[index]):
                ready.append(pending.pop(index))
        return ready

    def probe_constraints(self, load: MemAccess) -> Tuple[int, bool]:
        """For a schedulable load: (latest relevant earlier-store address
        arrival, whether an earlier in-flight store to the same word can
        forward).  Under the conservative policy every earlier store is
        relevant; otherwise only same-word stores are."""
        latest = 0
        forward = False
        load_index = load.index
        load_word = load.word
        conservative = self.conservative
        for index, entry in self._stores.items():
            if index >= load_index:
                continue
            same_word = entry.word == load_word
            if entry.addr_arrival is None:
                if conservative or same_word:
                    raise SimulationError("probe_constraints on a blocked load")
                continue
            if (conservative or same_word) and entry.addr_arrival > latest:
                latest = entry.addr_arrival
            if same_word:
                forward = True
        return latest, forward

    def release(self, index: int) -> MemAccess:
        """Remove an entry at commit."""
        access = self._entries.pop(index)
        self._stores.pop(index, None)
        self._unresolved_stores.discard(index)
        self._pending_loads.pop(index, None)
        return access
