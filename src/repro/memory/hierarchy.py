"""Memory system facades: centralized and decentralized L1 organizations.

Both share an L2 (2MB, 8-way, 25 cycles, co-located with the home cluster)
backed by a 160-cycle memory (Table 1).  The processor talks to a
:class:`MemorySystem` through a narrow interface:

* ``preferred_cluster(instr)`` — steering hint (decentralized only: the
  cluster predicted to cache the data);
* ``can_dispatch`` / ``dispatch`` — LSQ allocation at rename;
* ``address_ready(instr, cycle)`` — the effective address was computed in
  the instruction's cluster; the memory system schedules communication,
  disambiguation, and cache access, and later reports load completions;
* ``drain_completions()`` — (instr_index, data_ready_cycle) pairs;
* ``commit(index, cycle)`` — retire the LSQ entry (stores write the cache);
* ``set_banks(banks, cycle)`` — reconfiguration/fault hook naming the
  dispatch-eligible bank clusters; the decentralized cache must flush
  (returns the stall in cycles).  ``set_active_clusters(n, cycle)`` is the
  healthy-prefix shorthand ``set_banks(range(n), cycle)``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..config import MemoryConfig, ProcessorConfig
from ..errors import ConfigError
from ..interconnect.network import Network
from ..stats import SimStats
from ..workloads.instruction import Instr
from .bank_predictor import TwoLevelBankPredictor
from .cache import BankScheduler, SetAssocCache
from .distributed_lsq import DistributedLSQ
from .lsq import CentralizedLSQ, MemAccess

_L2_CONFIG_SIZE = 2 * 1024 * 1024
_L2_ASSOC = 8
_L2_LINE = 64
_FLUSH_FIXED_OVERHEAD = 8  # cycles to quiesce before a reconfiguration flush


class _SharedL2:
    """The unified L2 at the home cluster plus the memory behind it."""

    def __init__(self, config: MemoryConfig, stats: SimStats) -> None:
        from ..config import CacheConfig

        self.config = config
        self.stats = stats
        self.cache = SetAssocCache(
            CacheConfig(
                size=_L2_CONFIG_SIZE,
                assoc=_L2_ASSOC,
                line_size=_L2_LINE,
                latency=config.l2_latency,
                banks=1,
            ),
            name="L2",
        )
        self.port = BankScheduler(banks=1, ports_per_bank=1)

    def access(self, addr: int, start: int, is_write: bool = False) -> int:
        """Returns the cycle data is available at the home cluster."""
        begin = self.port.reserve(0, start)
        result = self.cache.access(addr, is_write)
        if result.hit:
            self.stats.l2_hits += 1
            return begin + self.config.l2_latency
        self.stats.l2_misses += 1
        return begin + self.config.l2_latency + self.config.memory_latency

    def absorb_writebacks(self, count: int, start: int) -> int:
        """Flush traffic: the L2 port accepts one line per cycle; returns
        the cycle the flush completes."""
        finish = start
        for _ in range(count):
            finish = self.port.reserve(0, finish) + 1
        return finish


class MemorySystem:
    """Common interface; see module docstring."""

    def __init__(self, config: ProcessorConfig, network: Network, stats: SimStats) -> None:
        self.config = config
        self.network = network
        self.stats = stats
        self.home = config.home_cluster
        self.l2 = _SharedL2(config.memory, stats)
        self._completions: List[Tuple[int, int]] = []
        self._cluster_of: Dict[int, int] = {}
        self.active_clusters = config.num_clusters

    # -- steering hint -------------------------------------------------
    def preferred_cluster(self, instr: Instr) -> Optional[int]:
        return None

    # -- dispatch ------------------------------------------------------
    def can_dispatch(self, instr: Instr) -> bool:
        raise NotImplementedError

    def dispatch(self, instr: Instr, cluster: int, cycle: int) -> None:
        raise NotImplementedError

    def address_ready(self, instr: Instr, cycle: int) -> None:
        raise NotImplementedError

    def commit(self, instr: Instr, cycle: int) -> None:
        raise NotImplementedError

    def drain_completions(self) -> List[Tuple[int, int]]:
        done = self._completions
        self._completions = []
        return done

    def tick(self, cycle: int) -> None:
        """Per-cycle housekeeping (default: none)."""

    def set_banks(self, banks, cycle: int) -> int:
        """Remap the dispatch-eligible bank clusters; returns stall cycles.

        ``banks`` is an iterable of cluster ids (sorted, non-empty).  The
        centralized organization keeps all data at home, so only the
        count matters to it."""
        self.active_clusters = len(tuple(banks))
        return 0

    def set_active_clusters(self, n: int, cycle: int) -> int:
        """Healthy-prefix shorthand for :meth:`set_banks`."""
        return self.set_banks(range(n), cycle)


class CentralizedMemory(MemorySystem):
    """Section 2.1: word-interleaved central cache + central LSQ at home."""

    def __init__(self, config: ProcessorConfig, network: Network, stats: SimStats) -> None:
        super().__init__(config, network, stats)
        if config.memory.organization != "centralized":
            raise ConfigError("CentralizedMemory needs a centralized MemoryConfig")
        l1 = config.memory.l1
        self.l1 = SetAssocCache(l1, name="L1")
        self.banks = BankScheduler(l1.banks, l1.ports_per_bank)
        self.lsq = CentralizedLSQ(
            config.memory.lsq_size_per_cluster * config.num_clusters,
            conservative=config.memory.conservative_disambiguation,
        )

    def can_dispatch(self, instr: Instr) -> bool:
        return not self.lsq.full

    def dispatch(self, instr: Instr, cluster: int, cycle: int) -> None:
        self._cluster_of[instr.index] = cluster
        self.lsq.allocate(
            MemAccess(instr.index, cluster, instr.addr, instr.is_store)
        )

    def address_ready(self, instr: Instr, cycle: int) -> None:
        cluster = self._cluster_of[instr.index]
        arrival = self.network.transfer(cluster, self.home, cycle, kind="memory")
        if instr.is_store:
            self.lsq.store_address_ready(instr.index, arrival)
        else:
            self.lsq.load_address_ready(instr.index, arrival)
        for load in self.lsq.schedulable_loads():
            self._schedule_load(load)

    def _schedule_load(self, load: MemAccess) -> None:
        barrier, forward = self.lsq.probe_constraints(load)
        probe = max(load.addr_arrival or 0, barrier)
        l1cfg = self.config.memory.l1
        if forward:
            data_at_home = probe + 1  # LSQ forwarding
            self.stats.l1_hits += 1
        else:
            bank = (load.addr >> 2) % l1cfg.banks
            begin = self.banks.reserve(bank, probe)
            self.stats.bank_conflict_cycles += begin - probe
            result = self.l1.access(load.addr, is_write=False)
            if result.hit:
                self.stats.l1_hits += 1
                data_at_home = begin + l1cfg.latency
            else:
                self.stats.l1_misses += 1
                data_at_home = self.l2.access(load.addr, begin + l1cfg.latency)
        ready = self.network.transfer(self.home, load.cluster, data_at_home, kind="memory")
        self._completions.append((load.index, ready))

    def commit(self, instr: Instr, cycle: int) -> None:
        access = self.lsq.release(instr.index)
        self._cluster_of.pop(instr.index, None)
        if not access.is_store:
            return
        l1cfg = self.config.memory.l1
        bank = (access.addr >> 2) % l1cfg.banks
        begin = self.banks.reserve(bank, cycle)
        result = self.l1.access(access.addr, is_write=True)
        if result.hit:
            self.stats.l1_hits += 1
        else:
            self.stats.l1_misses += 1
            self.l2.access(access.addr, begin + l1cfg.latency, is_write=False)


class DecentralizedMemory(MemorySystem):
    """Section 5: a word-interleaved bank per cluster, distributed LSQ,
    bank prediction, store-address broadcast, flush-on-reconfigure."""

    def __init__(self, config: ProcessorConfig, network: Network, stats: SimStats) -> None:
        super().__init__(config, network, stats)
        if config.memory.organization != "decentralized":
            raise ConfigError("DecentralizedMemory needs a decentralized MemoryConfig")
        l1 = config.memory.l1
        self.bank_caches = [
            SetAssocCache(l1, name=f"L1[{k}]") for k in range(config.num_clusters)
        ]
        self.ports = BankScheduler(config.num_clusters, l1.ports_per_bank)
        self.lsq = DistributedLSQ(
            config.num_clusters, config.memory.lsq_size_per_cluster
        )
        self.predictor = TwoLevelBankPredictor(
            l1_size=config.memory.bank_predictor_l1_size,
            l2_size=config.memory.bank_predictor_l2_size,
            history_bits=config.memory.bank_predictor_history_bits,
            max_banks=config.num_clusters,
        )
        #: per-in-flight-instruction (prediction, predictor token)
        self._pred_tokens: Dict[int, tuple] = {}
        #: byte interleave across banks (Table 2: 8-byte lines/banks)
        self.interleave = l1.line_size
        #: dispatch-eligible bank clusters, in id order.  Healthy machines
        #: use the prefix 0..active-1 (making ``banks[x % len]`` identical
        #: to the historical ``x % active``); after a cluster fault the
        #: list skips the dead clusters.
        self._banks = tuple(range(config.num_clusters))

    # -- mapping -------------------------------------------------------
    def bank_cluster(self, addr: int) -> int:
        banks = self._banks
        return banks[(addr // self.interleave) % len(banks)]

    def full_bank(self, addr: int) -> int:
        return (addr // self.interleave) % self.config.num_clusters

    def preferred_cluster(self, instr: Instr) -> Optional[int]:
        if not instr.is_mem:
            return None
        token = self._pred_tokens.get(instr.index)
        if token is None:
            predicted, tok = self.predictor.predict_speculative(instr.pc)
            self._pred_tokens[instr.index] = (predicted, tok)
        else:
            predicted = token[0]
        return self._banks[predicted % len(self._banks)]

    # -- dispatch ------------------------------------------------------
    def can_dispatch(self, instr: Instr) -> bool:
        if instr.is_store:
            return self.lsq.can_allocate_store(self._banks)
        # loads allocate where they are steered; be conservative and
        # require a free slot in the predicted cluster
        target = self.preferred_cluster(instr)
        return self.lsq.can_allocate_load(target if target is not None else 0)

    def dispatch(self, instr: Instr, cluster: int, cycle: int) -> None:
        self._cluster_of[instr.index] = cluster
        access = MemAccess(instr.index, cluster, instr.addr, instr.is_store)
        if instr.is_store:
            self.lsq.allocate_store(access, self._banks)
        else:
            self.lsq.allocate_load(access)

    # -- execution -----------------------------------------------------
    def address_ready(self, instr: Instr, cycle: int) -> None:
        cluster = self._cluster_of[instr.index]
        actual = self.bank_cluster(instr.addr)
        self.stats.bank_predictions += 1
        pending = self._pred_tokens.get(instr.index)
        if pending is not None:
            predicted, _token = pending
            if self._banks[predicted % len(self._banks)] != actual:
                self.stats.bank_mispredictions += 1
        elif cluster != actual:
            self.stats.bank_mispredictions += 1

        if instr.is_store:
            # broadcast the address to every active bank's LSQ slice
            # (a circulating ring broadcast, one link-traversal per link)
            all_arrivals = self.network.broadcast_arrivals(cluster, cycle, kind="memory")
            arrivals = {
                k: all_arrivals.get(k, cycle) for k in self._banks
            }
            self.stats.store_broadcasts += 1
            self.lsq.store_address_ready(instr.index, actual, arrivals)
        else:
            # a mis-directed load forwards its address to the right cluster
            arrival = (
                cycle
                if cluster == actual
                else self.network.transfer(cluster, actual, cycle, kind="memory")
            )
            self.lsq.load_address_ready(instr.index, arrival)
        for load in self.lsq.schedulable_loads():
            self._schedule_load(load)

    def _schedule_load(self, load: MemAccess) -> None:
        bank = self.bank_cluster(load.addr)
        barrier, forward = self.lsq.probe_constraints(load, bank)
        probe = max(load.addr_arrival or 0, barrier)
        l1cfg = self.config.memory.l1
        if forward:
            data_at_bank = probe + 1
            self.stats.l1_hits += 1
        else:
            begin = self.ports.reserve(bank, probe)
            self.stats.bank_conflict_cycles += begin - probe
            result = self.bank_caches[bank].access(load.addr, is_write=False)
            if result.hit:
                self.stats.l1_hits += 1
                data_at_bank = begin + l1cfg.latency
            else:
                self.stats.l1_misses += 1
                to_l2 = self.network.transfer(bank, self.home, begin + l1cfg.latency, kind="memory")
                at_home = self.l2.access(load.addr, to_l2)
                data_at_bank = self.network.transfer(self.home, bank, at_home, kind="memory")
        ready = self.network.transfer(bank, load.cluster, data_at_bank, kind="memory")
        self._completions.append((load.index, ready))

    def commit(self, instr: Instr, cycle: int) -> None:
        access = self.lsq.release(instr.index)
        self._cluster_of.pop(instr.index, None)
        # train the bank predictor in commit (program) order
        pending = self._pred_tokens.pop(instr.index, None)
        if pending is not None:
            self.predictor.resolve(pending[1], self.full_bank(access.addr))
        if not access.is_store:
            return
        bank = self.bank_cluster(access.addr)
        l1cfg = self.config.memory.l1
        begin = self.ports.reserve(bank, cycle)
        result = self.bank_caches[bank].access(access.addr, is_write=True)
        if result.hit:
            self.stats.l1_hits += 1
        else:
            self.stats.l1_misses += 1
            self.l2.access(access.addr, begin + l1cfg.latency, is_write=False)

    def tick(self, cycle: int) -> None:
        self.lsq.tick(cycle)

    # -- reconfiguration / fault remap ---------------------------------
    def set_banks(self, banks, cycle: int) -> int:
        """Changing the bank set remaps data to physical lines, so the L1
        must be flushed to L2 (Section 5).  Returns the stall in cycles.

        The bank predictor is *not* flushed: the raw 16-wide prediction
        stays valid and is folded onto the current bank list at use."""
        banks = tuple(banks)
        if banks == self._banks:
            return 0
        self._banks = banks
        self.active_clusters = len(banks)
        writebacks = 0
        for cache in self.bank_caches:
            writebacks += cache.flush()
        finish = self.l2.absorb_writebacks(writebacks, cycle + _FLUSH_FIXED_OVERHEAD)
        stall = finish - cycle
        self.stats.cache_flushes += 1
        self.stats.flush_writebacks += writebacks
        self.stats.flush_stall_cycles += stall
        return stall


def build_memory(config: ProcessorConfig, network: Network, stats: SimStats) -> MemorySystem:
    """Factory selecting the L1 organization from the configuration."""
    if config.memory.organization == "centralized":
        return CentralizedMemory(config, network, stats)
    return DecentralizedMemory(config, network, stats)
