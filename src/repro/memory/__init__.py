"""Memory hierarchy: caches, LSQs, bank prediction, and the system facades."""

from .bank_predictor import TwoLevelBankPredictor
from .cache import AccessResult, BankScheduler, SetAssocCache
from .distributed_lsq import DistributedLSQ
from .hierarchy import (
    CentralizedMemory,
    DecentralizedMemory,
    MemorySystem,
    build_memory,
)
from .lsq import CentralizedLSQ, MemAccess

__all__ = [
    "AccessResult",
    "BankScheduler",
    "CentralizedLSQ",
    "CentralizedMemory",
    "DecentralizedMemory",
    "DistributedLSQ",
    "MemAccess",
    "MemorySystem",
    "SetAssocCache",
    "TwoLevelBankPredictor",
    "build_memory",
]
