"""Set-associative cache tag store with LRU replacement and dirty bits.

Functional only — timing (bank ports, L2/memory latency) is composed on top
by :mod:`repro.memory.hierarchy`.  Word interleaving for bank *port*
scheduling is handled by :class:`BankScheduler`.
"""

from __future__ import annotations

from typing import List, Tuple

from ..config import CacheConfig
from ..timing import SlotReserver


class AccessResult:
    """Outcome of one cache access."""

    __slots__ = ("hit", "writeback")

    def __init__(self, hit: bool, writeback: bool) -> None:
        self.hit = hit
        self.writeback = writeback


#: preallocated access outcomes — ``access`` sits on the per-load hot path
#: and the three possible results are immutable to every caller
_HIT = AccessResult(hit=True, writeback=False)
_MISS = AccessResult(hit=False, writeback=False)
_MISS_WB = AccessResult(hit=False, writeback=True)


class SetAssocCache:
    """LRU set-associative cache with write-back, write-allocate policy."""

    def __init__(self, config: CacheConfig, name: str = "cache") -> None:
        self.config = config
        self.name = name
        self.num_sets = config.num_sets
        if self.num_sets < 1:
            raise ValueError(f"{name}: config yields zero sets")
        self._line_size = config.line_size
        self._assoc = config.assoc
        # each set: list of [tag, dirty], most-recently-used last
        self._sets: List[List[List[int]]] = [[] for _ in range(self.num_sets)]

    def _locate(self, addr: int) -> Tuple[int, int]:
        line = addr // self._line_size
        return line % self.num_sets, line

    def access(self, addr: int, is_write: bool) -> AccessResult:
        """Probe and update the cache; allocate on miss."""
        tag = addr // self._line_size
        cache_set = self._sets[tag % self.num_sets]
        for i, entry in enumerate(cache_set):
            if entry[0] == tag:
                cache_set.append(cache_set.pop(i))
                if is_write:
                    cache_set[-1][1] = 1
                return _HIT
        # miss: allocate, possibly evicting a dirty line
        writeback = False
        if len(cache_set) >= self._assoc:
            victim = cache_set.pop(0)
            writeback = bool(victim[1])
        cache_set.append([tag, 1 if is_write else 0])
        return _MISS_WB if writeback else _MISS

    def probe(self, addr: int) -> bool:
        """Non-destructive hit check (no LRU update, no allocation)."""
        set_idx, tag = self._locate(addr)
        return any(entry[0] == tag for entry in self._sets[set_idx])

    def flush(self) -> int:
        """Invalidate everything; return the number of dirty lines that must
        be written back (Section 5 reconfiguration cost)."""
        dirty = 0
        for cache_set in self._sets:
            dirty += sum(entry[1] for entry in cache_set)
            cache_set.clear()
        return dirty

    @property
    def resident_lines(self) -> int:
        return sum(len(s) for s in self._sets)


class BankScheduler:
    """Per-bank port reservation (one access per port per cycle).

    The word-interleaved cache of Section 2.1 has one port per bank; an
    access that finds its bank busy queues behind earlier accesses.
    """

    def __init__(self, banks: int, ports_per_bank: int = 1) -> None:
        if banks < 1 or ports_per_bank < 1:
            raise ValueError("banks and ports_per_bank must be positive")
        self.banks = banks
        self.ports_per_bank = ports_per_bank
        self._slots = SlotReserver(banks, ports_per_bank)

    def reserve(self, bank: int, earliest: int) -> int:
        """The cycle at which the access actually starts."""
        return self._slots.reserve(bank, earliest)

    def reset(self) -> None:
        self._slots.reset()
