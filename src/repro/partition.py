"""Cluster partitioning between threads (Sections 1 and 8).

The paper motivates dynamic cluster allocation beyond single-thread IPC:
"these clusters can be used by (partitioned among) other threads, thereby
simultaneously achieving the goals of optimal single and multi-threaded
throughput" and "the throughput of a multi-threaded workload can also be
improved by avoiding cross-thread interference by dynamically dedicating a
set of clusters to each thread".

This module provides the analysis layer for that claim: measure each
program's IPC as a function of its cluster allocation (its *scaling curve*),
then choose the partition of the machine between co-scheduled threads that
maximizes combined throughput (weighted IPC here; other objectives plug in).
Because partitioned threads share nothing but the machine boundary in the
paper's scheme, combined throughput is the sum of the per-thread curves —
which makes the optimal split exactly computable from single-thread runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .config import ProcessorConfig, default_config
from .core.controller import StaticController
from .experiments.runner import run_trace
from .workloads.instruction import Trace


@dataclass(frozen=True)
class ScalingCurve:
    """IPC of one program at each candidate cluster allocation."""

    name: str
    ipc: Dict[int, float]  # clusters -> IPC

    def at(self, clusters: int) -> float:
        """IPC at an allocation, interpolating to the largest measured
        point not exceeding it (allocations between samples run the
        largest configuration that fits)."""
        usable = [n for n in self.ipc if n <= clusters]
        if not usable:
            return 0.0
        return self.ipc[max(usable)]

    @property
    def best_allocation(self) -> int:
        return max(self.ipc, key=lambda n: self.ipc[n])

    @property
    def saturation_allocation(self) -> int:
        """Smallest allocation within 2% of the program's peak IPC — the
        point past which extra clusters are wasted on this thread."""
        peak = max(self.ipc.values())
        for n in sorted(self.ipc):
            if self.ipc[n] >= 0.98 * peak:
                return n
        return self.best_allocation


def measure_scaling(
    trace: Trace,
    config: Optional[ProcessorConfig] = None,
    allocations: Sequence[int] = (2, 4, 8, 16),
    warmup: int = 4_000,
) -> ScalingCurve:
    """Run the static sweep that defines a program's scaling curve."""
    config = config or default_config(16)
    ipc = {
        n: run_trace(trace, config, StaticController(n), warmup=warmup).ipc
        for n in allocations
        if n <= config.num_clusters
    }
    return ScalingCurve(trace.name, ipc)


def best_partition(
    curves: Sequence[ScalingCurve],
    total_clusters: int = 16,
    granularity: int = 2,
    objective: Callable[[Sequence[float]], float] = sum,
) -> Tuple[Tuple[int, ...], float]:
    """The allocation split maximizing the objective over per-thread IPCs.

    Exhaustive search over multiples of ``granularity`` (the machine is
    reconfigured in cluster units; the paper's candidate configurations are
    powers of two, but a partition only needs each share to be a valid
    allocation).  Every thread receives at least ``granularity`` clusters.
    """
    if not curves:
        raise ValueError("need at least one scaling curve")
    shares = [granularity * i for i in range(1, total_clusters // granularity + 1)]

    best_split: Optional[Tuple[int, ...]] = None
    best_value = float("-inf")

    def recurse(index: int, remaining: int, chosen: List[int]) -> None:
        nonlocal best_split, best_value
        if index == len(curves) - 1:
            if remaining < granularity:
                return
            split = chosen + [remaining]
            value = objective(
                [c.at(n) for c, n in zip(curves, split)]
            )
            if value > best_value:
                best_value = value
                best_split = tuple(split)
            return
        for share in shares:
            if remaining - share < granularity * (len(curves) - index - 1):
                break
            recurse(index + 1, remaining - share, chosen + [share])

    recurse(0, total_clusters, [])
    if best_split is None:
        raise ValueError(
            f"cannot split {total_clusters} clusters {len(curves)} ways "
            f"at granularity {granularity}"
        )
    return best_split, best_value


def partition_report(
    curves: Sequence[ScalingCurve], total_clusters: int = 16
) -> str:
    """Human-readable summary: each thread's saturation point, the optimal
    split, and the throughput against naive even sharing."""
    split, value = best_partition(curves, total_clusters)
    even = total_clusters // len(curves)
    even_value = sum(c.at(even) for c in curves)
    lines = [f"partitioning {total_clusters} clusters among "
             f"{len(curves)} threads:"]
    for curve, share in zip(curves, split):
        lines.append(
            f"  {curve.name:10s} gets {share:2d} clusters "
            f"(saturates at {curve.saturation_allocation}, "
            f"IPC {curve.at(share):.2f})"
        )
    lines.append(f"  combined IPC {value:.2f} vs even split {even_value:.2f} "
                 f"({100 * (value / even_value - 1):+.1f}%)" if even_value else
                 f"  combined IPC {value:.2f}")
    return "\n".join(lines)
