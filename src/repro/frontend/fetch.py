"""Fetch unit.

Models the centralized front end of the clustered processor (Section 2):

* fetch width 8, across up to two basic blocks per cycle (Table 1);
* a 64-entry fetch queue decoupling fetch from dispatch;
* a 12-stage front-end pipe between fetch and dispatch, which is what makes
  the branch-misprediction penalty "at least 12 cycles";
* a combining direction predictor + BTB + return-address stack.  On a
  misprediction, fetch stalls until the branch resolves in its cluster and
  the redirect travels back to the front end over the interconnect (the
  caller supplies that delay).

By default the simulator is trace driven and fetch simply stalls at a
misprediction — the cost is the fetch hole until the post-resolution
redirect.  With ``FrontEndConfig.model_wrong_path`` the unit instead
fabricates wrong-path instructions (negative trace indices) that occupy
front-end and window resources until the resolution squashes them, the way
an execution-driven machine behaves.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

from ..config import FrontEndConfig
from ..stats import SimStats
from ..workloads.instruction import Instr, OpClass, Trace
from .btb import BranchTargetBuffer
from .combining import CombiningPredictor
from .ras import ReturnAddressStack


class FetchUnit:
    """Fetches instructions from a trace into the dispatch-visible queue."""

    def __init__(
        self,
        trace: Trace,
        config: FrontEndConfig,
        stats: SimStats,
        predictor: Optional[CombiningPredictor] = None,
        btb: Optional[BranchTargetBuffer] = None,
        ras: Optional[ReturnAddressStack] = None,
    ) -> None:
        self.trace = trace
        self.config = config
        self.stats = stats
        self.predictor = predictor or CombiningPredictor.from_config(config)
        self.btb = btb or BranchTargetBuffer(config.btb_sets, config.btb_assoc)
        self.ras = ras or ReturnAddressStack(config.ras_size)

        self._pos = 0
        # the raw instruction list, hoisted out of the per-cycle fetch loop
        self._instructions = trace.instructions
        self._trace_len = len(trace.instructions)
        # queue of (instr, cycle at which it reaches dispatch)
        self._queue: Deque[Tuple[Instr, int]] = deque()
        self._stalled_until = 0
        #: trace index of the unresolved mispredicted branch, if any
        self.pending_mispredict: Optional[int] = None
        # wrong-path instructions carry unique negative indices
        self._wrong_path_next = -1

    # ------------------------------------------------------------------
    # prediction

    def _predict_branch(self, instr: Instr) -> bool:
        """Run the predictors for ``instr``; return True if fetch must stop
        (mispredicted direction or unknown target)."""
        mispredicted = False
        if instr.is_return:
            predicted_target = self.ras.pop()
            if predicted_target != instr.target:
                mispredicted = True
        elif instr.is_call:
            self.ras.push(instr.pc + 4)
            # unconditional: only the target can be wrong
            if self.btb.lookup(instr.pc) != instr.target:
                mispredicted = True
            self.btb.update(instr.pc, instr.target)
        else:
            predicted_taken = self.predictor.predict_update(instr.pc, instr.taken)
            if predicted_taken != instr.taken:
                mispredicted = True
            elif instr.taken and self.btb.lookup(instr.pc) != instr.target:
                # right direction, unknown/stale target: a misfetch that
                # costs the same redirect as a misprediction
                mispredicted = True
            if instr.taken:
                # the BTB caches taken targets only; not-taken executions
                # must not overwrite them with the fall-through
                self.btb.update(instr.pc, instr.target)
        return mispredicted

    # ------------------------------------------------------------------
    # per-cycle operation

    def _fetch_wrong_path(self, cycle: int) -> None:
        """Fetch synthetic wrong-path instructions past a misprediction.

        They are plain ALU work with unique negative trace indices — enough
        to occupy fetch/dispatch bandwidth, issue-queue slots, and registers
        until the branch resolves and the pipeline squashes them.
        """
        cfg = self.config
        ready_at = cycle + cfg.pipeline_depth
        fetched = 0
        while fetched < cfg.fetch_width and len(self._queue) < cfg.fetch_queue_size:
            instr = Instr(
                index=self._wrong_path_next,
                pc=0x7FFF_0000 - 4 * (-self._wrong_path_next % 1024),
                op=OpClass.INT_ALU,
            )
            self._wrong_path_next -= 1
            self._queue.append((instr, ready_at))
            fetched += 1
            self.stats.fetched += 1

    def fetch(self, cycle: int) -> None:
        """Fetch up to one cycle's worth of instructions."""
        if self.pending_mispredict is not None:
            if self.config.model_wrong_path:
                self._fetch_wrong_path(cycle)
            return
        if cycle < self._stalled_until:
            return
        fetched = 0
        branches = 0
        cfg = self.config
        queue = self._queue
        instructions = self._instructions
        trace_len = self._trace_len
        queue_cap = cfg.fetch_queue_size
        fetch_width = cfg.fetch_width
        max_blocks = cfg.max_basic_blocks_per_fetch
        ready_at = cycle + cfg.pipeline_depth
        pos = self._pos
        while fetched < fetch_width and pos < trace_len and len(queue) < queue_cap:
            instr = instructions[pos]
            pos += 1
            fetched += 1
            queue.append((instr, ready_at))
            if instr.is_branch:
                branches += 1
                if self._predict_branch(instr):
                    self.stats.mispredicts += 1
                    self.pending_mispredict = instr.index
                    break
                if branches >= max_blocks:
                    break
        self._pos = pos
        self.stats.fetched += fetched

    def branch_resolved(self, branch_index: int, resume_cycle: int) -> None:
        """The mispredicted branch ``branch_index`` resolved; fetch may
        restart at ``resume_cycle`` (resolution + redirect latency).  Any
        queued wrong-path instructions are discarded with the redirect."""
        if self.pending_mispredict == branch_index:
            self.pending_mispredict = None
            self._stalled_until = resume_cycle
            if self.config.model_wrong_path:
                self._queue = deque(
                    entry for entry in self._queue if entry[0].index >= 0
                )

    # ------------------------------------------------------------------
    # dispatch interface

    def peek_ready(self, cycle: int) -> Optional[Instr]:
        """The next instruction available for dispatch this cycle, if any."""
        if self._queue and self._queue[0][1] <= cycle:
            return self._queue[0][0]
        return None

    def pop(self) -> Instr:
        return self._queue.popleft()[0]

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    @property
    def exhausted(self) -> bool:
        """True when the whole trace has been fetched and drained."""
        return self._pos >= len(self.trace) and not self._queue
