"""Return address stack for predicting subroutine returns."""

from __future__ import annotations

from typing import List, Optional


class ReturnAddressStack:
    """A bounded stack of return addresses.

    Pushing past capacity drops the oldest entry (the usual circular
    implementation); popping an empty stack returns None (a misprediction).
    """

    def __init__(self, size: int = 32) -> None:
        if size < 1:
            raise ValueError("size must be positive")
        self.size = size
        self._stack: List[int] = []

    def push(self, return_pc: int) -> None:
        self._stack.append(return_pc)
        if len(self._stack) > self.size:
            del self._stack[0]

    def pop(self) -> Optional[int]:
        if not self._stack:
            return None
        return self._stack.pop()

    def __len__(self) -> int:
        return len(self._stack)
