"""Two-level adaptive branch predictor (per-address history, global PHT).

Table 1: level 1 has 1024 entries of 10-bit history; level 2 has 4096
two-bit counters.
"""

from __future__ import annotations


class TwoLevelPredictor:
    """PAg-style two-level predictor.

    The first level is a table of per-branch history registers; the second
    level is a shared pattern history table of 2-bit counters indexed by the
    history (xor-folded with the PC to reduce interference).
    """

    def __init__(
        self, l1_size: int = 1024, history_bits: int = 10, l2_size: int = 4096
    ) -> None:
        for value, name in ((l1_size, "l1_size"), (l2_size, "l2_size")):
            if value < 1 or value & (value - 1):
                raise ValueError(f"{name} must be a positive power of two")
        if history_bits < 1:
            raise ValueError("history_bits must be positive")
        self.l1_size = l1_size
        self.history_bits = history_bits
        self.l2_size = l2_size
        self._history = [0] * l1_size
        self._pht = [2] * l2_size

    def _l1_index(self, pc: int) -> int:
        return (pc >> 2) & (self.l1_size - 1)

    def _l2_index(self, pc: int, history: int) -> int:
        return (history ^ (pc >> 2)) & (self.l2_size - 1)

    def predict(self, pc: int) -> bool:
        history = self._history[self._l1_index(pc)]
        return self._pht[self._l2_index(pc, history)] >= 2

    def update(self, pc: int, taken: bool) -> None:
        i1 = self._l1_index(pc)
        history = self._history[i1]
        i2 = self._l2_index(pc, history)
        c = self._pht[i2]
        if taken:
            if c < 3:
                self._pht[i2] = c + 1
        else:
            if c > 0:
                self._pht[i2] = c - 1
        mask = (1 << self.history_bits) - 1
        self._history[i1] = ((history << 1) | int(taken)) & mask

    def predict_update(self, pc: int, taken: bool) -> bool:
        """``predict`` then ``update`` with the index math done once;
        returns the pre-update prediction."""
        pc2 = pc >> 2
        i1 = pc2 & (self.l1_size - 1)
        history = self._history[i1]
        i2 = (history ^ pc2) & (self.l2_size - 1)
        c = self._pht[i2]
        if taken:
            if c < 3:
                self._pht[i2] = c + 1
            self._history[i1] = ((history << 1) | 1) & ((1 << self.history_bits) - 1)
        else:
            if c > 0:
                self._pht[i2] = c - 1
            self._history[i1] = (history << 1) & ((1 << self.history_bits) - 1)
        return c >= 2
