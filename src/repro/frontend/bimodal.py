"""Bimodal (2-bit saturating counter) branch direction predictor."""

from __future__ import annotations


class BimodalPredictor:
    """A table of 2-bit saturating counters indexed by branch PC.

    Table 1 of the paper uses a 2048-entry bimodal component inside the
    combining predictor.
    """

    def __init__(self, size: int = 2048) -> None:
        if size < 1 or size & (size - 1):
            raise ValueError("bimodal size must be a positive power of two")
        self.size = size
        # initialize to weakly taken (2), the common convention
        self._counters = [2] * size

    def _index(self, pc: int) -> int:
        return (pc >> 2) & (self.size - 1)

    def predict(self, pc: int) -> bool:
        return self._counters[self._index(pc)] >= 2

    def update(self, pc: int, taken: bool) -> None:
        i = self._index(pc)
        c = self._counters[i]
        if taken:
            if c < 3:
                self._counters[i] = c + 1
        else:
            if c > 0:
                self._counters[i] = c - 1

    def predict_update(self, pc: int, taken: bool) -> bool:
        """``predict`` then ``update`` with a single table lookup; returns
        the pre-update prediction."""
        i = (pc >> 2) & (self.size - 1)
        c = self._counters[i]
        if taken:
            if c < 3:
                self._counters[i] = c + 1
        elif c > 0:
            self._counters[i] = c - 1
        return c >= 2
