"""Branch target buffer: set-associative PC -> target cache (Table 1:
2048 sets, 2-way) with LRU replacement."""

from __future__ import annotations

from typing import List, Optional, Tuple


class BranchTargetBuffer:
    """Set-associative BTB with true-LRU replacement within a set."""

    def __init__(self, sets: int = 2048, assoc: int = 2) -> None:
        if sets < 1 or sets & (sets - 1):
            raise ValueError("sets must be a positive power of two")
        if assoc < 1:
            raise ValueError("assoc must be positive")
        self.sets = sets
        self.assoc = assoc
        # each set: list of (tag, target), most-recently-used last
        self._table: List[List[Tuple[int, int]]] = [[] for _ in range(sets)]

    def _set_index(self, pc: int) -> int:
        return (pc >> 2) & (self.sets - 1)

    def _tag(self, pc: int) -> int:
        return pc >> 2

    def lookup(self, pc: int) -> Optional[int]:
        """The predicted target for ``pc``, or None on a BTB miss."""
        entry_set = self._table[self._set_index(pc)]
        tag = self._tag(pc)
        for i, (t, target) in enumerate(entry_set):
            if t == tag:
                # move to MRU position
                entry_set.append(entry_set.pop(i))
                return target
        return None

    def update(self, pc: int, target: int) -> None:
        entry_set = self._table[self._set_index(pc)]
        tag = self._tag(pc)
        for i, (t, _) in enumerate(entry_set):
            if t == tag:
                entry_set.pop(i)
                break
        entry_set.append((tag, target))
        if len(entry_set) > self.assoc:
            entry_set.pop(0)  # evict LRU
