"""Combining (tournament) branch predictor: bimodal + two-level + chooser.

This is the Table 1 configuration: a 2048-entry bimodal predictor, a
1024-entry/10-bit-history two-level predictor with a 4096-entry PHT, and a
chooser table of 2-bit counters that learns, per branch, which component to
trust — the 21264-style arrangement.
"""

from __future__ import annotations

from ..config import FrontEndConfig
from .bimodal import BimodalPredictor
from .twolevel import TwoLevelPredictor


class CombiningPredictor:
    """Tournament predictor over a bimodal and a two-level component."""

    def __init__(
        self,
        bimodal_size: int = 2048,
        l1_size: int = 1024,
        history_bits: int = 10,
        l2_size: int = 4096,
        chooser_size: int = 4096,
    ) -> None:
        if chooser_size < 1 or chooser_size & (chooser_size - 1):
            raise ValueError("chooser_size must be a positive power of two")
        self.bimodal = BimodalPredictor(bimodal_size)
        self.twolevel = TwoLevelPredictor(l1_size, history_bits, l2_size)
        self.chooser_size = chooser_size
        # 2-bit chooser: >= 2 means "trust the two-level component"
        self._chooser = [2] * chooser_size

    @classmethod
    def from_config(cls, config: FrontEndConfig) -> "CombiningPredictor":
        return cls(
            bimodal_size=config.bimodal_size,
            l1_size=config.level1_size,
            history_bits=config.history_bits,
            l2_size=config.level2_size,
            chooser_size=config.chooser_size,
        )

    def _chooser_index(self, pc: int) -> int:
        return (pc >> 2) & (self.chooser_size - 1)

    def predict(self, pc: int) -> bool:
        if self._chooser[self._chooser_index(pc)] >= 2:
            return self.twolevel.predict(pc)
        return self.bimodal.predict(pc)

    def update(self, pc: int, taken: bool) -> None:
        """Update both components and train the chooser toward whichever
        component was correct (no change when they agree)."""
        p_bim = self.bimodal.predict(pc)
        p_two = self.twolevel.predict(pc)
        if p_bim != p_two:
            i = self._chooser_index(pc)
            c = self._chooser[i]
            if p_two == taken:
                if c < 3:
                    self._chooser[i] = c + 1
            else:
                if c > 0:
                    self._chooser[i] = c - 1
        self.bimodal.update(pc, taken)
        self.twolevel.update(pc, taken)

    def predict_update(self, pc: int, taken: bool) -> bool:
        """``predict`` then ``update`` in one pass over the tables.

        Both components are consulted exactly once (plain ``update`` has to
        re-run both predictions to train the chooser), which matters because
        this sits on the per-branch fetch path.  Returns the pre-update
        prediction.
        """
        p_bim = self.bimodal.predict_update(pc, taken)
        p_two = self.twolevel.predict_update(pc, taken)
        i = (pc >> 2) & (self.chooser_size - 1)
        c = self._chooser[i]
        if p_bim != p_two:
            if p_two == taken:
                if c < 3:
                    self._chooser[i] = c + 1
            elif c > 0:
                self._chooser[i] = c - 1
        return p_two if c >= 2 else p_bim
