"""Front end: branch prediction, BTB, return-address stack, fetch."""

from .bimodal import BimodalPredictor
from .btb import BranchTargetBuffer
from .combining import CombiningPredictor
from .fetch import FetchUnit
from .ras import ReturnAddressStack
from .twolevel import TwoLevelPredictor

__all__ = [
    "BimodalPredictor",
    "BranchTargetBuffer",
    "CombiningPredictor",
    "FetchUnit",
    "ReturnAddressStack",
    "TwoLevelPredictor",
]
