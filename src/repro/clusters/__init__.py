"""Cluster resources and instruction steering."""

from .cluster import Cluster
from .criticality import CriticalityPredictor
from .functional_units import EXEC_LATENCY, FU_POOL, FunctionalUnits
from .steering import (
    FirstFitSteering,
    ModNSteering,
    ProducerSteering,
    SteeringHeuristic,
)

__all__ = [
    "Cluster",
    "CriticalityPredictor",
    "EXEC_LATENCY",
    "FU_POOL",
    "FirstFitSteering",
    "FunctionalUnits",
    "ModNSteering",
    "ProducerSteering",
    "SteeringHeuristic",
]
