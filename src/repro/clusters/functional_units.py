"""Per-cluster functional units and operation latencies."""

from __future__ import annotations

from typing import Dict

from ..config import (
    ADDRESS_GEN_LATENCY,
    BRANCH_LATENCY,
    FP_ALU_LATENCY,
    FP_MUL_LATENCY,
    INT_ALU_LATENCY,
    INT_MUL_LATENCY,
    ClusterConfig,
)
from ..workloads.instruction import OpClass

#: which FU pool each op class issues to
FU_POOL: Dict[OpClass, str] = {
    OpClass.INT_ALU: "int_alu",
    OpClass.INT_MUL: "int_mul",
    OpClass.FP_ALU: "fp_alu",
    OpClass.FP_MUL: "fp_mul",
    OpClass.LOAD: "int_alu",  # address generation uses the integer ALU
    OpClass.STORE: "int_alu",
    OpClass.BRANCH: "int_alu",
}

#: execution latency per op class (loads add the memory system on top of
#: address generation; see the pipeline)
EXEC_LATENCY: Dict[OpClass, int] = {
    OpClass.INT_ALU: INT_ALU_LATENCY,
    OpClass.INT_MUL: INT_MUL_LATENCY,
    OpClass.FP_ALU: FP_ALU_LATENCY,
    OpClass.FP_MUL: FP_MUL_LATENCY,
    OpClass.LOAD: ADDRESS_GEN_LATENCY,
    OpClass.STORE: ADDRESS_GEN_LATENCY,
    OpClass.BRANCH: BRANCH_LATENCY,
}


#: pool index per OpClass value (int_alu=0, int_mul=1, fp_alu=2, fp_mul=3);
#: must stay consistent with FU_POOL above
_POOL_INDEX = (0, 1, 2, 3, 0, 0, 0)
_POOL_NAMES = ("int_alu", "int_mul", "fp_alu", "fp_mul")


class FunctionalUnits:
    """Issue-bandwidth tracker for one cluster, one cycle at a time.

    Table 1 gives each cluster one integer ALU, one integer mult/div, one FP
    ALU, and one FP mult/div; as many instructions can issue per cycle as
    there are free units.  All units are fully pipelined, so only issue
    bandwidth (not occupancy) is tracked — four integer counters, reset at
    the top of each select pass.
    """

    __slots__ = ("_capacity", "_free")

    def __init__(self, config: ClusterConfig) -> None:
        self._capacity = [
            config.int_alus,
            config.int_muls,
            config.fp_alus,
            config.fp_muls,
        ]
        self._free = list(self._capacity)

    def begin_cycle(self) -> None:
        self._free[:] = self._capacity

    def try_issue(self, op: OpClass) -> bool:
        pool = _POOL_INDEX[op]
        free = self._free
        if free[pool] > 0:
            free[pool] -= 1
            return True
        return False

    def free_units(self, pool: str) -> int:
        return self._free[_POOL_NAMES.index(pool)]
