"""Critical-operand predictor used by the steering heuristic.

The paper's steering "uses a criticality predictor [Fields et al., Tune et
al.] to give a higher priority to the cluster that produces the critical
source operand".  We implement the standard last-arriving-operand learner: a
PC-indexed table remembering which source operand of an instruction arrived
last the previous time it executed; the steering heuristic then prefers the
cluster producing that operand.
"""

from __future__ import annotations


class CriticalityPredictor:
    """PC-indexed table predicting which operand (0 or 1) is critical."""

    def __init__(self, size: int = 1024) -> None:
        if size < 1 or size & (size - 1):
            raise ValueError("size must be a positive power of two")
        self.size = size
        # 2-bit hysteresis: >= 2 predicts operand 1 is critical
        self._table = [1] * size

    def _index(self, pc: int) -> int:
        return (pc >> 2) & (self.size - 1)

    def predict_critical_operand(self, pc: int) -> int:
        return 1 if self._table[self._index(pc)] >= 2 else 0

    def update(self, pc: int, critical_operand: int) -> None:
        if critical_operand not in (0, 1):
            raise ValueError("critical_operand must be 0 or 1")
        i = self._index(pc)
        c = self._table[i]
        if critical_operand == 1:
            if c < 3:
                self._table[i] = c + 1
        else:
            if c > 0:
                self._table[i] = c - 1
