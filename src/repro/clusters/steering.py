"""Instruction steering heuristics (Section 2.1).

The primary heuristic is the state-of-the-art one the paper uses: steer an
instruction to the cluster producing most of its operands; break ties with
a criticality predictor; and fall back to the least-loaded cluster when the
issue-queue imbalance exceeds an (empirically tuned) threshold.  With the
decentralized cache, loads and stores are steered to the cluster predicted
to cache their data.

``ModNSteering`` and ``FirstFitSteering`` are the two reference policies of
Baniasadi & Moshovos that the threshold mechanism approximates: Mod_N
minimizes load imbalance, First_Fit minimizes communication.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..workloads.instruction import Instr, OpClass
from .cluster import _IS_FP, Cluster
from .criticality import CriticalityPredictor


class SteeringHeuristic:
    """Base interface: pick an *active, feasible* cluster or None (stall)."""

    def __init__(self, clusters: Sequence[Cluster]) -> None:
        self.clusters = clusters

    def _feasible(
        self, op: OpClass, needs_reg: bool, active: int
    ) -> List[int]:
        clusters = self.clusters
        return [
            k
            for k in range(active)
            if clusters[k].steer_ok[op]
            and clusters[k].can_accept(op, needs_reg)
        ]

    def choose(
        self,
        instr: Instr,
        producer_clusters: Sequence[Tuple[int, int]],
        active: int,
        preferred: Optional[int] = None,
    ) -> Optional[int]:
        """Pick the destination cluster for ``instr``.

        Args:
            instr: the instruction being renamed.
            producer_clusters: (operand_position, cluster) for each source
                operand whose producer is still in flight.
            active: number of currently active clusters (0..active-1).
            preferred: cache-bank hint for loads/stores (decentralized).
        """
        raise NotImplementedError


class ProducerSteering(SteeringHeuristic):
    """The paper's heuristic: producer-preference + criticality tiebreak +
    load-imbalance threshold (+ bank preference for memory ops)."""

    def __init__(
        self,
        clusters: Sequence[Cluster],
        criticality: Optional[CriticalityPredictor] = None,
        imbalance_threshold: int = 4,
    ) -> None:
        super().__init__(clusters)
        self.criticality = criticality or CriticalityPredictor()
        self.imbalance_threshold = imbalance_threshold

    def _least_loaded(self, feasible: List[int]) -> int:
        return min(feasible, key=lambda k: (self.clusters[k].iq_occupancy, k))

    def choose(
        self,
        instr: Instr,
        producer_clusters: Sequence[Tuple[int, int]],
        active: int,
        preferred: Optional[int] = None,
    ) -> Optional[int]:
        # hottest function in the simulator (called per dispatch, probing
        # every active cluster): capacity checks are inlined against the
        # cluster occupancy counters instead of going through can_accept;
        # steer_ok folds liveness + FU faults into one tuple lookup
        clusters = self.clusters
        needs_reg = instr.has_dest
        op = instr.op
        feasible: List[int] = []
        append = feasible.append
        k = 0
        if _IS_FP[op]:
            for c in clusters:
                if k >= active:
                    break
                if (
                    c.steer_ok[op]
                    and c._fp_iq < c._iq_cap
                    and (not needs_reg or c._fp_regs < c._rf_cap)
                ):
                    append(k)
                k += 1
        else:
            for c in clusters:
                if k >= active:
                    break
                if (
                    c.steer_ok[op]
                    and c._int_iq < c._iq_cap
                    and (not needs_reg or c._int_regs < c._rf_cap)
                ):
                    append(k)
                k += 1
        if not feasible:
            return None

        # 1. decentralized cache: favour the predicted bank cluster
        if preferred is not None and preferred in feasible:
            return preferred

        # 2. producer preference (at most two register operands, so the
        # count/tie logic reduces to three cases)
        candidate: Optional[int] = None
        usable = [pc for pc in producer_clusters if pc[1] in feasible]
        n_usable = len(usable)
        if n_usable == 1:
            candidate = usable[0][1]
        elif n_usable == 2:
            pos0, c0 = usable[0]
            pos1, c1 = usable[1]
            if c0 == c1:
                candidate = c0
            else:
                # tie: trust the criticality predictor's operand choice
                crit = self.criticality.predict_critical_operand(instr.pc)
                candidate = c1 if pos1 == crit and pos0 != crit else c0
        elif n_usable:  # >2 producers: callers outside the pipeline
            counts: dict = {}
            for _, c in usable:
                counts[c] = counts.get(c, 0) + 1
            best = max(counts.values())
            top = [c for c, n in counts.items() if n == best]
            if len(top) == 1:
                candidate = top[0]
            else:
                crit = self.criticality.predict_critical_operand(instr.pc)
                for pos, c in usable:
                    if pos == crit and c in top:
                        candidate = c
                        break
                if candidate is None:
                    candidate = top[0]

        # 3. load-imbalance override / no-producer fallback (first-seen
        # wins on occupancy ties, i.e. the lowest feasible cluster id)
        least = feasible[0]
        c = clusters[least]
        least_occ = c._int_iq + c._fp_iq
        for k in feasible:
            c = clusters[k]
            occ = c._int_iq + c._fp_iq
            if occ < least_occ:
                least = k
                least_occ = occ
        if candidate is None:
            return least
        c = clusters[candidate]
        if (c._int_iq + c._fp_iq) - least_occ > self.imbalance_threshold:
            return least
        return candidate


class ModNSteering(SteeringHeuristic):
    """Steer N consecutive instructions to a cluster, then move to the next
    (minimizes load imbalance at the cost of communication)."""

    def __init__(self, clusters: Sequence[Cluster], n: int = 3) -> None:
        super().__init__(clusters)
        if n < 1:
            raise ValueError("n must be positive")
        self.n = n
        self._count = 0
        self._current = 0

    def choose(
        self,
        instr: Instr,
        producer_clusters: Sequence[Tuple[int, int]],
        active: int,
        preferred: Optional[int] = None,
    ) -> Optional[int]:
        feasible = self._feasible(instr.op, instr.has_dest, active)
        if not feasible:
            return None
        if self._current >= active:
            self._current = 0
        if self._count >= self.n:
            self._count = 0
            self._current = (self._current + 1) % active
        for probe in range(active):
            k = (self._current + probe) % active
            if k in feasible:
                if k != self._current:
                    self._current = k
                    self._count = 0
                self._count += 1
                return k
        return None


class FirstFitSteering(SteeringHeuristic):
    """Fill one cluster before moving to its neighbour (minimizes
    communication at the cost of load imbalance)."""

    def choose(
        self,
        instr: Instr,
        producer_clusters: Sequence[Tuple[int, int]],
        active: int,
        preferred: Optional[int] = None,
    ) -> Optional[int]:
        feasible = self._feasible(instr.op, instr.has_dest, active)
        if not feasible:
            return None
        return feasible[0]
