"""One cluster: issue queues, register files, functional units.

The paper splits every cluster into an integer half and a floating-point
half (15 issue-queue entries and 30 physical registers each).  The cluster
tracks occupancy; the pipeline owns instruction state and the per-cycle
select loop.

The occupancy checks sit on the steering fast path (every dispatch probes
every active cluster), so capacities are cached in slots and the FP test is
a table lookup rather than enum containment.
"""

from __future__ import annotations

from typing import List

from ..config import ClusterConfig
from ..errors import SimulationError
from ..workloads.instruction import OpClass
from .functional_units import _POOL_INDEX, _POOL_NAMES, FunctionalUnits

#: indexed by OpClass value: does the op use the FP half of the cluster?
_IS_FP = tuple(op in (OpClass.FP_ALU, OpClass.FP_MUL) for op in OpClass)

#: steering admission masks, indexed by OpClass value (healthy / dead)
_ALL_OK = tuple(True for _ in OpClass)
_NONE_OK = tuple(False for _ in OpClass)

#: wake sentinel: far beyond any reachable simulation cycle
NEVER = 1 << 60


class Cluster:
    """Occupancy bookkeeping for one cluster."""

    __slots__ = (
        "cid",
        "config",
        "fus",
        "_int_iq",
        "_fp_iq",
        "_int_regs",
        "_fp_regs",
        "_iq_cap",
        "_rf_cap",
        "issue_queue",
        "wake_cycle",
        "live",
        "steer_ok",
    )

    def __init__(self, cid: int, config: ClusterConfig) -> None:
        self.cid = cid
        self.config = config
        self.fus = FunctionalUnits(config)
        #: architectural-fault state: a dead cluster stays in the machine
        #: (its in-flight work drains) but admits no new instructions
        self.live = True
        #: per-OpClass admission mask consulted by steering; folds both
        #: liveness and disabled functional-unit pools into one tuple
        #: lookup on the dispatch fast path
        self.steer_ok = _ALL_OK
        self._int_iq = 0
        self._fp_iq = 0
        self._int_regs = 0
        self._fp_regs = 0
        self._iq_cap = config.issue_queue_size
        self._rf_cap = config.regfile_size
        #: in-flight instruction records waiting to issue (pipeline objects)
        self.issue_queue: List[object] = []
        #: earliest cycle anything in this cluster's queue could issue; the
        #: select loop skips the cluster entirely until then
        self.wake_cycle = 0

    # ------------------------------------------------------------------
    # capacity checks used by steering

    def _is_fp(self, op: OpClass) -> bool:
        return _IS_FP[op]

    def iq_has_room(self, op: OpClass) -> bool:
        if _IS_FP[op]:
            return self._fp_iq < self._iq_cap
        return self._int_iq < self._iq_cap

    def reg_available(self, op: OpClass, needs_reg: bool) -> bool:
        if not needs_reg:
            return True
        if _IS_FP[op]:
            return self._fp_regs < self._rf_cap
        return self._int_regs < self._rf_cap

    def can_accept(self, op: OpClass, needs_reg: bool) -> bool:
        if _IS_FP[op]:
            return self._fp_iq < self._iq_cap and (
                not needs_reg or self._fp_regs < self._rf_cap
            )
        return self._int_iq < self._iq_cap and (
            not needs_reg or self._int_regs < self._rf_cap
        )

    @property
    def iq_occupancy(self) -> int:
        return self._int_iq + self._fp_iq

    @property
    def reg_occupancy(self) -> int:
        return self._int_regs + self._fp_regs

    def occupancy_by_half(self):
        """``(name, occupancy, capacity)`` per structure half, for the
        runtime invariant checker — occupancy may never leave
        ``[0, capacity]``."""
        iq_cap = self.config.issue_queue_size
        rf_cap = self.config.regfile_size
        return (
            ("int issue queue", self._int_iq, iq_cap),
            ("fp issue queue", self._fp_iq, iq_cap),
            ("int register file", self._int_regs, rf_cap),
            ("fp register file", self._fp_regs, rf_cap),
        )

    # ------------------------------------------------------------------
    # state transitions (called by the pipeline)

    def allocate(self, record: object, op: OpClass, needs_reg: bool) -> None:
        if _IS_FP[op]:
            if self._fp_iq >= self._iq_cap or (
                needs_reg and self._fp_regs >= self._rf_cap
            ):
                raise SimulationError(f"cluster {self.cid}: allocate without room")
            self._fp_iq += 1
            if needs_reg:
                self._fp_regs += 1
        else:
            if self._int_iq >= self._iq_cap or (
                needs_reg and self._int_regs >= self._rf_cap
            ):
                raise SimulationError(f"cluster {self.cid}: allocate without room")
            self._int_iq += 1
            if needs_reg:
                self._int_regs += 1
        self.issue_queue.append(record)

    def on_issue(self, record: object, op: OpClass) -> None:
        """The record left the issue queue (the list entry is removed by the
        pipeline's select loop)."""
        if _IS_FP[op]:
            self._fp_iq -= 1
        else:
            self._int_iq -= 1

    def on_commit(self, op: OpClass, needs_reg: bool) -> None:
        if needs_reg:
            if _IS_FP[op]:
                self._fp_regs -= 1
            else:
                self._int_regs -= 1

    def refresh_steer_mask(self, disabled_pools=()) -> None:
        """Recompute :attr:`steer_ok` from liveness + disabled FU pools.

        Disabling a pool only gates *steering*: instructions already in
        the issue queue still issue and drain (the advance-warning fault
        model — the pool is marked failing, not instantly lost).
        """
        if not self.live:
            self.steer_ok = _NONE_OK
        elif disabled_pools:
            self.steer_ok = tuple(
                _POOL_NAMES[_POOL_INDEX[op]] not in disabled_pools
                for op in OpClass
            )
        else:
            self.steer_ok = _ALL_OK

    def reset_for_drain_check(self) -> bool:
        """True if the cluster holds no instructions (fully drained)."""
        return (
            self._int_iq == 0
            and self._fp_iq == 0
            and self._int_regs == 0
            and self._fp_regs == 0
            and not self.issue_queue
        )
