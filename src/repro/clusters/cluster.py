"""One cluster: issue queues, register files, functional units.

The paper splits every cluster into an integer half and a floating-point
half (15 issue-queue entries and 30 physical registers each).  The cluster
tracks occupancy; the pipeline owns instruction state and the per-cycle
select loop.
"""

from __future__ import annotations

from typing import List

from ..config import ClusterConfig
from ..errors import SimulationError
from ..workloads.instruction import OpClass
from .functional_units import FunctionalUnits


class Cluster:
    """Occupancy bookkeeping for one cluster."""

    def __init__(self, cid: int, config: ClusterConfig) -> None:
        self.cid = cid
        self.config = config
        self.fus = FunctionalUnits(config)
        self._int_iq = 0
        self._fp_iq = 0
        self._int_regs = 0
        self._fp_regs = 0
        #: in-flight instruction records waiting to issue (pipeline objects)
        self.issue_queue: List[object] = []

    # ------------------------------------------------------------------
    # capacity checks used by steering

    def _is_fp(self, op: OpClass) -> bool:
        return op in (OpClass.FP_ALU, OpClass.FP_MUL)

    def iq_has_room(self, op: OpClass) -> bool:
        if self._is_fp(op):
            return self._fp_iq < self.config.issue_queue_size
        return self._int_iq < self.config.issue_queue_size

    def reg_available(self, op: OpClass, needs_reg: bool) -> bool:
        if not needs_reg:
            return True
        if self._is_fp(op):
            return self._fp_regs < self.config.regfile_size
        return self._int_regs < self.config.regfile_size

    def can_accept(self, op: OpClass, needs_reg: bool) -> bool:
        return self.iq_has_room(op) and self.reg_available(op, needs_reg)

    @property
    def iq_occupancy(self) -> int:
        return self._int_iq + self._fp_iq

    @property
    def reg_occupancy(self) -> int:
        return self._int_regs + self._fp_regs

    def occupancy_by_half(self):
        """``(name, occupancy, capacity)`` per structure half, for the
        runtime invariant checker — occupancy may never leave
        ``[0, capacity]``."""
        iq_cap = self.config.issue_queue_size
        rf_cap = self.config.regfile_size
        return (
            ("int issue queue", self._int_iq, iq_cap),
            ("fp issue queue", self._fp_iq, iq_cap),
            ("int register file", self._int_regs, rf_cap),
            ("fp register file", self._fp_regs, rf_cap),
        )

    # ------------------------------------------------------------------
    # state transitions (called by the pipeline)

    def allocate(self, record: object, op: OpClass, needs_reg: bool) -> None:
        if not self.can_accept(op, needs_reg):
            raise SimulationError(f"cluster {self.cid}: allocate without room")
        if self._is_fp(op):
            self._fp_iq += 1
            if needs_reg:
                self._fp_regs += 1
        else:
            self._int_iq += 1
            if needs_reg:
                self._int_regs += 1
        self.issue_queue.append(record)

    def on_issue(self, record: object, op: OpClass) -> None:
        """The record left the issue queue (the list entry is removed by the
        pipeline's select loop)."""
        if self._is_fp(op):
            self._fp_iq -= 1
        else:
            self._int_iq -= 1

    def on_commit(self, op: OpClass, needs_reg: bool) -> None:
        if needs_reg:
            if self._is_fp(op):
                self._fp_regs -= 1
            else:
                self._int_regs -= 1

    def reset_for_drain_check(self) -> bool:
        """True if the cluster holds no instructions (fully drained)."""
        return (
            self._int_iq == 0
            and self._fp_iq == 0
            and self._int_regs == 0
            and self._fp_regs == 0
            and not self.issue_queue
        )
