"""Processor, cache, and interconnect configuration.

The defaults reproduce Table 1 and Table 2 of the paper:

* Table 1 — front-end, window, and per-cluster resources of the 16-cluster
  wire-delay-limited processor (Simplescalar-derived model).
* Table 2 — the centralized (32KB, 4-way word-interleaved, 6-cycle) and
  decentralized (16KB single-ported 4-cycle bank per cluster) L1 caches.

Everything is a plain frozen dataclass so configurations can be shared,
hashed, and swept without aliasing surprises.
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass, field, replace
from typing import Optional

from .errors import ConfigError

# ----------------------------------------------------------------------
# Environment access.
#
# This module (plus repro.faults, which owns the fault-plan channel) is
# the only place allowed to touch os.environ: ad-hoc environment reads
# are invisible configuration, and the D105 static-analysis rule flags
# them everywhere else.  Callers document their switch with a module
# constant and read it through these helpers.

#: values meaning "off" for boolean environment switches
_FALSE_VALUES = ("", "0", "false", "no", "off")


def env_text(name: str, default: str = "") -> str:
    """The raw value of environment switch ``name`` (``default`` if unset)."""
    return os.environ.get(name, default)


def env_flag(name: str) -> bool:
    """Boolean environment switch: set to anything but ``0/false/no/off``."""
    return env_text(name).lower() not in _FALSE_VALUES


def env_int(name: str, default: Optional[int] = None) -> Optional[int]:
    """Integer environment switch (``default`` when unset or malformed)."""
    text = env_text(name).strip()
    if not text:
        return default
    try:
        return int(text)
    except ValueError:
        return default


def env_float(name: str, default: Optional[float] = None) -> Optional[float]:
    """Float environment switch (``default`` when unset or malformed)."""
    text = env_text(name).strip()
    if not text:
        return default
    try:
        return float(text)
    except ValueError:
        return default


def spawn_env(**overrides) -> dict:
    """A copy of this process's environment for spawning worker processes.

    Worker subprocesses (the process pool implicitly, the distributed
    backend explicitly) must inherit the environment so switches like
    ``REPRO_FAULT_PLAN`` and ``REPRO_CHECK_INVARIANTS`` reach them.  The
    copy is made here because this module owns all environment access
    (rule D105); ``overrides`` are applied on top.
    """
    env = dict(os.environ)
    env.update({k: str(v) for k, v in overrides.items()})
    return env


#: Canonical registry of every environment switch the package reads, in
#: one place (satellite of issue 8; see docs/SWEEPS.md "Knobs" for the
#: user-facing table).  Key -> (reader, purpose).
ENV_SWITCHES = {
    "REPRO_CACHE_DIR": ("env_text", "sweep result-cache directory"),
    "REPRO_JOBS": ("env_int", "default worker count for default_jobs()"),
    "REPRO_SWEEP_BACKEND": (
        "env_text",
        "default execution backend (serial | process-pool | distributed)",
    ),
    "REPRO_LANES": (
        "env_text",
        "default distributed worker lanes, e.g. 'local,4' or "
        "'10.0.0.2:9123,8;local,2'",
    ),
    "REPRO_TRACE_SCALE": ("env_float", "multiplies benchmark trace lengths"),
    "REPRO_BENCH_CACHE": ("env_flag", "let pytest benchmarks/ use the cache"),
    "REPRO_CHECK_INVARIANTS": ("env_flag", "sampled simulator invariant checks"),
    "REPRO_FAULT_PLAN": ("env_text", "armed fault-injection plan (JSON)"),
    "REPRO_HYPOTHESIS_PROFILE": ("env_text", "hypothesis test profile"),
    "REPRO_REGEN_GOLDEN": ("env_flag", "regenerate golden test fixtures"),
}

# Execution latencies (cycles), patterned on Simplescalar/Alpha 21264.
INT_ALU_LATENCY = 1
INT_MUL_LATENCY = 7
INT_DIV_LATENCY = 12
FP_ALU_LATENCY = 4
FP_MUL_LATENCY = 4
FP_DIV_LATENCY = 12
BRANCH_LATENCY = 1
ADDRESS_GEN_LATENCY = 1


@dataclass(frozen=True)
class FrontEndConfig:
    """Fetch/decode/rename front-end parameters (Table 1)."""

    fetch_width: int = 8
    fetch_queue_size: int = 64
    max_basic_blocks_per_fetch: int = 2
    dispatch_width: int = 16
    commit_width: int = 16
    # The paper quotes "at least 12 cycles" of branch mispredict penalty;
    # we model it as the depth of the front-end pipeline between fetch and
    # dispatch, plus the (variable) hop latency from the resolving cluster.
    pipeline_depth: int = 12
    #: optionally fetch synthetic wrong-path instructions after a
    #: misprediction instead of stalling; they consume fetch/dispatch/issue
    #: bandwidth, issue-queue entries, and registers until the branch
    #: resolves and squashes them (an execution-driven machine's behaviour;
    #: off by default — the calibrated thresholds assume stall-on-mispredict)
    model_wrong_path: bool = False
    # Combining branch predictor (bimodal + 2-level) sizes.
    bimodal_size: int = 2048
    level1_size: int = 1024
    history_bits: int = 10
    level2_size: int = 4096
    chooser_size: int = 4096
    btb_sets: int = 2048
    btb_assoc: int = 2
    ras_size: int = 32


@dataclass(frozen=True)
class ClusterConfig:
    """Resources inside one cluster (Table 1: int and fp each)."""

    issue_queue_size: int = 15
    regfile_size: int = 30
    int_alus: int = 1
    int_muls: int = 1
    fp_alus: int = 1
    fp_muls: int = 1


@dataclass(frozen=True)
class CacheConfig:
    """One cache level (sizes in bytes)."""

    size: int = 32 * 1024
    assoc: int = 2
    line_size: int = 32
    latency: int = 6
    banks: int = 4
    ports_per_bank: int = 1

    @property
    def num_sets(self) -> int:
        return self.size // (self.assoc * self.line_size)


@dataclass(frozen=True)
class MemoryConfig:
    """L1 organization plus the shared L2/DRAM backend (Tables 1 and 2)."""

    #: "centralized" or "decentralized"
    organization: str = "centralized"
    l1: CacheConfig = field(default_factory=CacheConfig)
    l2_latency: int = 25
    memory_latency: int = 160
    lsq_size_per_cluster: int = 15
    #: if True, a load waits for *all* earlier store addresses (ablation);
    #: default is address-precise (SimpleScalar-style) disambiguation
    conservative_disambiguation: bool = False
    # Two-level bank predictor (decentralized cache only), after Yoaz et al.
    bank_predictor_l1_size: int = 1024
    bank_predictor_l2_size: int = 4096
    bank_predictor_history_bits: int = 6


def centralized_cache() -> MemoryConfig:
    """Table 2, 'centralized' column: 32KB 2-way, 32B lines, 4 banks, 6 cyc."""
    return MemoryConfig(
        organization="centralized",
        l1=CacheConfig(size=32 * 1024, assoc=2, line_size=32, latency=6, banks=4),
    )


def decentralized_cache(num_clusters: int = 16) -> MemoryConfig:
    """Table 2, 'decentralized' column: a 16KB 2-way single-ported 4-cycle
    bank in each cluster, 8-byte interleaving across clusters."""
    return MemoryConfig(
        organization="decentralized",
        l1=CacheConfig(
            size=16 * 1024,
            assoc=2,
            line_size=8,
            latency=4,
            banks=1,
        ),
    )


@dataclass(frozen=True)
class InterconnectConfig:
    """Cluster-to-cluster network (Section 2.3)."""

    #: "ring" (two unidirectional rings) or "grid" (2-D array, XY routing)
    topology: str = "ring"
    hop_latency: int = 1
    #: links carry one word-group transfer per cycle in each direction
    link_bandwidth: int = 1
    #: model link contention (can be disabled for idealization studies)
    model_contention: bool = True
    #: idealization switches used by the Section 4/5 communication breakdown
    free_memory_communication: bool = False
    free_register_communication: bool = False


@dataclass(frozen=True)
class ProcessorConfig:
    """Complete configuration of the clustered processor."""

    num_clusters: int = 16
    rob_size: int = 480
    front_end: FrontEndConfig = field(default_factory=FrontEndConfig)
    cluster: ClusterConfig = field(default_factory=ClusterConfig)
    memory: MemoryConfig = field(default_factory=centralized_cache)
    interconnect: InterconnectConfig = field(default_factory=InterconnectConfig)
    #: cluster that hosts the centralized LSQ/cache, the L2, and the front end
    home_cluster: int = 0
    #: sampled runtime invariant checking (ROB ordering, occupancy caps,
    #: message conservation, IPC bounds): True/False, or None = consult the
    #: ``REPRO_CHECK_INVARIANTS`` environment variable (tests turn it on).
    #: Excluded from repr/eq so it never perturbs cache keys or config
    #: comparisons — checking is observation, not configuration.
    check_invariants: Optional[bool] = field(default=None, repr=False, compare=False)
    #: cycles between sampled invariant checks
    invariant_sample_period: int = field(default=64, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.num_clusters < 1:
            raise ConfigError(f"num_clusters must be >= 1, got {self.num_clusters}")
        if self.interconnect.topology not in ("ring", "grid", "torus", "ring-of-rings"):
            raise ConfigError(f"unknown topology {self.interconnect.topology!r}")
        if self.memory.organization not in ("centralized", "decentralized"):
            raise ConfigError(
                f"unknown cache organization {self.memory.organization!r}"
            )
        if self.home_cluster >= self.num_clusters:
            raise ConfigError("home_cluster must name an existing cluster")

    @property
    def max_inflight(self) -> int:
        """Upper bound on in-flight instructions with all clusters active."""
        return min(self.rob_size, self.num_clusters * self.cluster.regfile_size * 2)

    def with_clusters(self, n: int) -> "ProcessorConfig":
        """A copy of this configuration with ``n`` total clusters."""
        return replace(self, num_clusters=n)

    def with_memory(self, memory: MemoryConfig) -> "ProcessorConfig":
        return replace(self, memory=memory)

    def with_interconnect(self, interconnect: InterconnectConfig) -> "ProcessorConfig":
        return replace(self, interconnect=interconnect)

    def with_cluster_resources(self, cluster: ClusterConfig) -> "ProcessorConfig":
        return replace(self, cluster=cluster)


def default_config(num_clusters: int = 16) -> ProcessorConfig:
    """The paper's base 16-cluster model: ring interconnect, centralized
    cache, Table 1 resources."""
    return ProcessorConfig(num_clusters=num_clusters)


def grid_config(num_clusters: int = 16) -> ProcessorConfig:
    """Section 6 grid-interconnect variant."""
    return ProcessorConfig(
        num_clusters=num_clusters,
        interconnect=InterconnectConfig(topology="grid"),
    )


def torus_config(num_clusters: int = 16) -> ProcessorConfig:
    """Grid variant with wraparound links in both dimensions."""
    return ProcessorConfig(
        num_clusters=num_clusters,
        interconnect=InterconnectConfig(topology="torus"),
    )


def ring_of_rings_config(num_clusters: int = 16) -> ProcessorConfig:
    """Hierarchical fabric: local cluster rings bridged by a hub ring."""
    return ProcessorConfig(
        num_clusters=num_clusters,
        interconnect=InterconnectConfig(topology="ring-of-rings"),
    )


def decentralized_config(num_clusters: int = 16) -> ProcessorConfig:
    """Section 5 decentralized-cache variant."""
    return ProcessorConfig(
        num_clusters=num_clusters,
        memory=decentralized_cache(num_clusters),
    )


def monolithic_config() -> ProcessorConfig:
    """A monolithic processor with as many resources as the 16-cluster
    system and no inter-cluster communication (Table 3 baseline)."""
    memory = replace(centralized_cache(), lsq_size_per_cluster=15 * 16)
    return ProcessorConfig(
        num_clusters=1,
        cluster=ClusterConfig(
            issue_queue_size=15 * 16,
            regfile_size=30 * 16,
            int_alus=16,
            int_muls=16,
            fp_alus=16,
            fp_muls=16,
        ),
        memory=memory,
        interconnect=InterconnectConfig(topology="ring", model_contention=False),
    )


def config_summary(config: ProcessorConfig) -> str:
    """One-line human-readable summary of a configuration."""
    mem = config.memory.organization
    top = config.interconnect.topology
    return (
        f"{config.num_clusters} clusters, {top} interconnect, {mem} cache, "
        f"{config.cluster.issue_queue_size} IQ / {config.cluster.regfile_size} regs "
        f"per cluster"
    )


def validate_config(config: ProcessorConfig) -> None:
    """Raise :class:`ConfigError` on semantically invalid configurations.

    ``__post_init__`` catches structural issues; this adds cross-field
    checks used by the experiment harness before long runs.
    """
    if config.interconnect.topology in ("grid", "torus"):
        side = int(round(config.num_clusters ** 0.5))
        if side * side != config.num_clusters and config.num_clusters % 4 != 0:
            raise ConfigError(
                f"{config.interconnect.topology} topology needs a rectangular "
                f"cluster count, got {config.num_clusters}"
            )
    if config.memory.organization == "decentralized":
        if config.memory.l1.banks != 1:
            raise ConfigError("decentralized cache uses one bank per cluster")
    if config.front_end.fetch_width > config.front_end.fetch_queue_size:
        raise ConfigError("fetch width cannot exceed the fetch queue size")
    for f in dataclasses.fields(ClusterConfig):
        if getattr(config.cluster, f.name) < 1:
            raise ConfigError(f"cluster.{f.name} must be positive")
