"""Reorder buffer and in-flight instruction state."""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from ..errors import SimulationError
from ..workloads.instruction import Instr


class InFlight:
    """Pipeline state of one dispatched, not-yet-committed instruction."""

    __slots__ = (
        "instr",
        "cluster",
        "dispatch_cycle",
        "earliest_issue",
        "op_avail",
        "unknown_ops",
        "ready_time",
        "issued",
        "issue_cycle",
        "finish_cycle",
        "addr_done",
        "remote_ready",
        "waiters",
        "distant",
        "store_split",
        "squashed",
    )

    def __init__(
        self, instr: Instr, cluster: int, dispatch_cycle: int, earliest_issue: int
    ) -> None:
        self.instr = instr
        self.cluster = cluster
        self.dispatch_cycle = dispatch_cycle
        self.earliest_issue = earliest_issue
        #: per-operand availability cycle in this cluster (None = unknown)
        self.op_avail: List[Optional[int]] = [0, 0]
        self.unknown_ops = 0
        self.ready_time = 0
        self.issued = False
        self.issue_cycle = -1
        #: cycle the result is available in the producing cluster
        self.finish_cycle: Optional[int] = None
        #: stores: cycle the address computation finished
        self.addr_done: Optional[int] = None
        #: cached arrival cycles of the result at other clusters
        self.remote_ready: Dict[int, int] = {}
        #: consumers waiting for this result: (consumer, operand position)
        self.waiters: List[Tuple["InFlight", int]] = []
        self.distant = False
        #: stores issue on the address operand alone; the data operand
        #: (position 1) only gates completion, as in a real store queue
        self.store_split = instr.is_store
        #: wrong-path instructions are marked at branch resolution and
        #: swept out of the issue queues lazily
        self.squashed = False

    @property
    def index(self) -> int:
        return self.instr.index

    def operand_known(self, pos: int, avail: int) -> None:
        """Record operand availability; refresh readiness when complete."""
        if pos == 1 and self.store_split:
            self.op_avail[1] = avail
            if self.addr_done is not None:
                self.finish_cycle = avail if avail >= self.addr_done else self.addr_done
            return
        self.op_avail[pos] = avail
        self.unknown_ops -= 1
        if self.unknown_ops == 0:
            a0 = self.op_avail[0] or 0
            a1 = 0 if self.store_split else (self.op_avail[1] or 0)
            self.ready_time = a0 if a0 >= a1 else a1

    @property
    def can_commit(self) -> bool:
        return self.finish_cycle is not None


class ReorderBuffer:
    """In-order window of in-flight instructions (Table 1: 480 entries)."""

    def __init__(self, size: int) -> None:
        if size < 1:
            raise ValueError("ROB size must be positive")
        self.size = size
        self._entries: Deque[InFlight] = deque()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.size

    @property
    def empty(self) -> bool:
        return not self._entries

    @property
    def head(self) -> InFlight:
        if not self._entries:
            raise SimulationError("head of an empty ROB")
        return self._entries[0]

    @property
    def head_index(self) -> int:
        """Trace index of the oldest in-flight instruction."""
        return self._entries[0].instr.index if self._entries else -1

    def push(self, record: InFlight) -> None:
        if self.full:
            raise SimulationError("push to a full ROB")
        self._entries.append(record)

    def pop_head(self) -> InFlight:
        if not self._entries:
            raise SimulationError("pop from an empty ROB")
        return self._entries.popleft()

    def __iter__(self):
        return iter(self._entries)
