"""The cycle-level clustered out-of-order processor.

Stage order within a simulated cycle (oldest work first, so resources freed
in one stage become visible the next cycle):

1. memory housekeeping + load-completion drain,
2. commit (in order, up to 16/cycle),
3. issue/select per cluster (oldest-ready-first, bounded by FUs),
4. dispatch/steer (in order, up to 16/cycle),
5. fetch,
6. the reconfiguration controller's commit-driven hooks run inline with
   commit; interval controllers fire on committed-instruction boundaries.

All latencies are absolute cycle numbers computed at scheduling time, so
there is no per-cycle polling of the memory system or the interconnect.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..clusters.cluster import Cluster
from ..clusters.criticality import CriticalityPredictor
from ..clusters.functional_units import EXEC_LATENCY
from ..clusters.steering import ProducerSteering, SteeringHeuristic
from ..config import ProcessorConfig
from ..errors import SimulationError
from ..frontend.fetch import FetchUnit
from ..interconnect.network import Network
from ..memory.hierarchy import build_memory
from ..observability.tracer import NULL_TRACER, Tracer
from ..resilience.manager import FaultManager
from ..stats import SimStats
from ..workloads.instruction import Instr, OpClass, Trace
from .invariants import InvariantChecker, invariants_enabled
from .rob import InFlight, ReorderBuffer

#: safety multiplier: a run may not take more than this many cycles per
#: instruction before we declare the pipeline wedged
_MAX_CPI = 400

#: execution latency indexed by OpClass value (avoids dict+enum hashing in
#: the issue loop)
_EXEC_LAT = tuple(EXEC_LATENCY[op] for op in OpClass)

#: cluster wake sentinel: far beyond any reachable cycle
_NEVER = 1 << 60


class ClusteredProcessor:
    """A dynamically reconfigurable clustered processor bound to one trace."""

    def __init__(
        self,
        trace: Trace,
        config: ProcessorConfig,
        controller: Optional[object] = None,
        steering: Optional[SteeringHeuristic] = None,
        *,
        naive_issue: bool = False,
        tracer: Optional[Tracer] = None,
        fault_schedule: Optional[object] = None,
    ) -> None:
        self.trace = trace
        self.config = config
        self.stats = SimStats()
        self.network = Network(config.interconnect, config.num_clusters, self.stats)
        self.memory = build_memory(config, self.network, self.stats)
        self.fetch_unit = FetchUnit(trace, config.front_end, self.stats)
        self.clusters = [Cluster(k, config.cluster) for k in range(config.num_clusters)]
        self.criticality = CriticalityPredictor()
        self.steering = steering or ProducerSteering(self.clusters, self.criticality)
        self.rob = ReorderBuffer(config.rob_size)

        self.cycle = 0
        #: what the controller last asked for (its view of the machine)
        self._logical_active = config.num_clusters
        #: physical dispatch window: steering probes clusters [0, bound)
        self.active_clusters = config.num_clusters
        #: live clusters inside the window (the cluster-cycle integral);
        #: equals the other two on a healthy machine
        self.effective_active_clusters = config.num_clusters
        self._records: Dict[int, InFlight] = {}
        #: (cluster, finish_cycle) of committed producers, for late consumers
        self._done: Dict[int, Tuple[int, int]] = {}
        self._dispatch_stalled_until = 0
        self._home = config.home_cluster
        self._hop = config.interconnect.hop_latency

        #: instructions must be this many entries younger than the ROB head
        #: to count as "distant" (the paper uses 120 = 4 clusters x 30 regs)
        self.distant_threshold = 4 * config.cluster.regfile_size

        #: issue-stage implementation: the event/wakeup-driven select is the
        #: default; the naive every-cluster-every-cycle scan is retained as
        #: an equivalence reference (see tests/pipeline/test_issue_equivalence)
        self._issue = self._issue_naive if naive_issue else self._issue_event

        #: passive observer (see :mod:`repro.observability`): emission sites
        #: guard on ``tracer.enabled``, and sampling is driven by a single
        #: next-sample cycle number so a disabled tracer costs one integer
        #: compare per cycle.  Set before the controller attaches — the
        #: controllers pick the tracer up from here.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._last_sample_cycle = 0
        self._last_sample_committed = 0
        if self.tracer.enabled:
            self.tracer.emit(
                "run_start",
                cycle=0,
                committed=0,
                workload=trace.name,
                instructions=len(trace),
                clusters=config.num_clusters,
            )
            period = self.tracer.sample_period
            self._next_sample = period if period > 0 else _NEVER
        else:
            self._next_sample = _NEVER

        self.controller = controller
        self._controller_wants_dispatch = bool(
            getattr(controller, "needs_dispatch_events", False)
        )
        if controller is not None:
            controller.attach(self)

        #: sampled structural checks (read-only, so results are identical
        #: with checking on or off); see :mod:`repro.pipeline.invariants`
        self.invariants = InvariantChecker(self) if invariants_enabled(config) else None

        #: architectural fault injection (see :mod:`repro.resilience`):
        #: polled with a single integer compare per cycle, so a run with
        #: no schedule is bit-identical to one built without the feature
        self._fault_manager: Optional[FaultManager] = None
        self._next_fault = _NEVER
        if fault_schedule:
            self._fault_manager = FaultManager(fault_schedule, self)
            self._next_fault = self._fault_manager.next_cycle

    # ------------------------------------------------------------------
    # reconfiguration interface (used by controllers)

    def stall_dispatch_for(self, cycles: int) -> None:
        """Pause dispatch for ``cycles`` (models the run-time algorithm's
        software invocation, ~100 instructions in the paper)."""
        if cycles > 0:
            self._dispatch_stalled_until = max(
                self._dispatch_stalled_until, self.cycle + cycles
            )

    def set_active_clusters(self, n: int, reason: str = "") -> None:
        """Restrict dispatch to the first ``n`` live clusters (instructions
        already in the others drain naturally).  With a decentralized cache
        this flushes the L1 and stalls dispatch for the flush duration."""
        n = max(1, min(n, self.config.num_clusters))
        if n == self._logical_active:
            return
        before = self._logical_active
        self._logical_active = n
        self.stats.reconfigurations += 1
        if self.tracer.enabled:
            self.tracer.emit(
                "reconfig",
                cycle=self.cycle,
                committed=self.stats.committed,
                before=before,
                after=n,
                reason=reason,
            )
        self.refresh_live_clusters()

    def refresh_live_clusters(self) -> None:
        """Recompute the physical dispatch window from cluster liveness.

        ``_logical_active`` is the controller's request; ``active_clusters``
        is the physical prefix bound sized so the window holds that many
        *live* clusters (or every cluster, when too few survive); and
        ``effective_active_clusters`` is the live count inside the window.
        On a healthy machine the three are equal and this reduces to the
        pre-fault behavior bit for bit.  Cache banks remap onto the live
        clusters inside the window, flushing the L1 like any resize.
        """
        clusters = self.clusters
        want = self._logical_active
        bound = self.config.num_clusters
        live_seen = 0
        for k, cluster in enumerate(clusters):
            if cluster.live:
                live_seen += 1
                if live_seen >= want:
                    bound = k + 1
                    break
        self.active_clusters = bound
        banks = tuple(k for k in range(bound) if clusters[k].live)
        self.effective_active_clusters = len(banks)
        stall = self.memory.set_banks(banks, self.cycle)
        if stall:
            self._dispatch_stalled_until = max(
                self._dispatch_stalled_until, self.cycle + stall
            )

    # ------------------------------------------------------------------
    # operand plumbing

    def _operand_available(self, producer: InFlight, consumer_cluster: int) -> int:
        """When the producer's finished result is usable in a cluster."""
        finish = producer.finish_cycle
        assert finish is not None
        if producer.cluster == consumer_cluster:
            return finish
        cached = producer.remote_ready.get(consumer_cluster)
        if cached is not None:
            return cached
        arrival = self.network.transfer(
            producer.cluster, consumer_cluster, finish, kind="register"
        )
        producer.remote_ready[consumer_cluster] = arrival
        return arrival

    def _resolve_operand(self, rec: InFlight, pos: int, src: int) -> None:
        """Fill in op_avail[pos] for a dispatching instruction."""
        store_data = pos == 1 and rec.store_split
        if src < 0:
            rec.op_avail[pos] = 0
            return
        producer = self._records.get(src)
        if producer is not None:
            if producer.finish_cycle is not None:
                rec.op_avail[pos] = self._operand_available(producer, rec.cluster)
            else:
                rec.op_avail[pos] = None
                if not store_data:
                    rec.unknown_ops += 1
                producer.waiters.append((rec, pos))
            return
        done = self._done.get(src)
        if done is None:
            rec.op_avail[pos] = 0  # ancient producer: value long available
            return
        p_cluster, p_finish = done
        if p_cluster == rec.cluster:
            rec.op_avail[pos] = p_finish
        else:
            rec.op_avail[pos] = self.network.transfer(
                p_cluster, rec.cluster, max(p_finish, rec.dispatch_cycle), kind="register"
            )

    def _producer_finished(self, producer: InFlight) -> None:
        """Propagate a newly known finish time to all waiting consumers."""
        clusters = self.clusters
        for consumer, pos in producer.waiters:
            avail = self._operand_available(producer, consumer.cluster)
            consumer.operand_known(pos, avail)
            # operand arrival may make the consumer issuable: wake its
            # cluster at the earliest cycle the entry could be selected
            if (
                consumer.unknown_ops == 0
                and not consumer.issued
                and not consumer.squashed
            ):
                wake = consumer.ready_time
                if consumer.earliest_issue > wake:
                    wake = consumer.earliest_issue
                cluster = clusters[consumer.cluster]
                if wake < cluster.wake_cycle:
                    cluster.wake_cycle = wake
        producer.waiters.clear()

    # ------------------------------------------------------------------
    # pipeline stages

    def _drain_memory(self) -> None:
        self.memory.tick(self.cycle)
        for index, ready in self.memory.drain_completions():
            rec = self._records.get(index)
            if rec is None:
                raise SimulationError(f"completion for unknown load {index}")
            rec.finish_cycle = ready
            self._producer_finished(rec)

    def _commit(self) -> None:
        rob = self.rob
        entries = rob._entries
        if not entries:
            return
        cycle = self.cycle
        stats = self.stats
        clusters = self.clusters
        records = self._records
        done = self._done
        controller = self.controller
        width = self.config.front_end.commit_width
        committed = 0
        while committed < width and entries:
            rec = entries[0]
            finish = rec.finish_cycle
            if finish is None or finish > cycle:
                break
            entries.popleft()
            committed += 1
            instr = rec.instr
            stats.committed += 1
            if instr.is_branch:
                stats.branches += 1
            elif instr.is_mem:
                stats.memrefs += 1
                stats.loads += instr.is_load
                stats.stores += instr.is_store
                self.memory.commit(instr, cycle)
            if rec.distant:
                stats.distant_commits += 1
            clusters[rec.cluster].on_commit(instr.op, instr.has_dest)
            done[instr.index] = (rec.cluster, finish)
            del records[instr.index]
            if controller is not None:
                controller.on_commit(instr, cycle, rec.distant)

    def _issue_naive(self) -> None:
        """Reference select: scan every cluster's queue every cycle.

        Kept verbatim as the behavioral-equivalence oracle for the
        event-driven select below; choose it with ``naive_issue=True``.
        """
        cycle = self.cycle
        head_index = self.rob.head_index
        threshold = self.distant_threshold
        for cluster in self.clusters:
            queue = cluster.issue_queue
            if not queue:
                continue
            cluster.fus.begin_cycle()
            issued_any = False
            for i, rec in enumerate(queue):
                if rec is None:
                    continue
                if rec.squashed:
                    # wrong-path leftovers: free the issue-queue slot
                    queue[i] = None
                    issued_any = True
                    cluster.on_issue(rec, rec.instr.op)
                    continue
                if (
                    rec.unknown_ops == 0
                    and rec.ready_time <= cycle
                    and rec.earliest_issue <= cycle
                    and cluster.fus.try_issue(rec.instr.op)
                ):
                    queue[i] = None
                    issued_any = True
                    self._do_issue(rec, cluster, head_index, threshold)
            if issued_any:
                cluster.issue_queue = [r for r in queue if r is not None]

    def _issue_event(self) -> None:
        """Event/wakeup-driven select: skip clusters with nothing to do.

        Each cluster carries ``wake_cycle``, the earliest cycle anything in
        its queue could possibly issue.  Wakes are posted on dispatch
        (allocation), on an operand becoming known, and on wrong-path
        squash; a ready entry refused by FU bandwidth re-arms the cluster
        for the next cycle.  Scanning a cluster with no issuable entry is
        behavior-neutral, so spurious wakes are harmless; the scan itself
        recomputes the next wake from the entries it leaves behind.  The
        issue order within a scan is identical to the naive reference, so
        the two implementations are bit-identical (enforced by test and by
        the golden-figure fingerprints).
        """
        cycle = self.cycle
        head_index = self.rob.head_index
        threshold = self.distant_threshold
        for cluster in self.clusters:
            if cluster.wake_cycle > cycle:
                continue
            queue = cluster.issue_queue
            if not queue:
                cluster.wake_cycle = _NEVER
                continue
            cluster.fus.begin_cycle()
            issued_any = False
            next_wake = _NEVER
            for i, rec in enumerate(queue):
                if rec is None:
                    continue
                if rec.squashed:
                    # wrong-path leftovers: free the issue-queue slot
                    queue[i] = None
                    issued_any = True
                    cluster.on_issue(rec, rec.instr.op)
                    continue
                if rec.unknown_ops:
                    continue  # woken by _producer_finished when known
                ready = rec.ready_time
                if rec.earliest_issue > ready:
                    ready = rec.earliest_issue
                if ready <= cycle:
                    if cluster.fus.try_issue(rec.instr.op):
                        queue[i] = None
                        issued_any = True
                        self._do_issue(rec, cluster, head_index, threshold)
                    elif cycle < next_wake:
                        # ready but out of FU bandwidth: retry next cycle
                        next_wake = cycle + 1
                elif ready < next_wake:
                    next_wake = ready
            if issued_any:
                cluster.issue_queue = [r for r in queue if r is not None]
            # safe to overwrite: wakes posted during this scan can only
            # target entries later in this queue (consumers are younger
            # than their producers) or other clusters
            cluster.wake_cycle = next_wake

    def _do_issue(self, rec: InFlight, cluster: Cluster, head_index: int, threshold: int) -> None:
        cycle = self.cycle
        instr = rec.instr
        rec.issued = True
        rec.issue_cycle = cycle
        self.stats.issued += 1
        cluster.on_issue(rec, instr.op)
        if instr.index - head_index >= threshold:
            rec.distant = True

        # train the criticality predictor with the observed last-arriving
        # operand (both operands must have real producers)
        if instr.src1 >= 0 and instr.src2 >= 0:
            a0 = rec.op_avail[0] or 0
            a1 = rec.op_avail[1] or 0
            if a0 != a1:
                self.criticality.update(instr.pc, 1 if a1 > a0 else 0)

        op = instr.op
        if op is OpClass.LOAD:
            # address generation this cycle; data arrival set by the memory
            # system via drain_completions
            self.memory.address_ready(instr, cycle + _EXEC_LAT[op])
            return
        finish = cycle + _EXEC_LAT[op]
        if op is OpClass.STORE:
            # the store's address is ready now; completion additionally
            # waits for the data operand (tracked separately)
            rec.addr_done = finish
            data = rec.op_avail[1]
            rec.finish_cycle = None if data is None else max(finish, data)
            self.memory.address_ready(instr, finish)
            return
        rec.finish_cycle = finish
        if op is OpClass.BRANCH and self.fetch_unit.pending_mispredict == instr.index:
            redirect = self.network.uncontended_latency(rec.cluster, self._home)
            self.fetch_unit.branch_resolved(instr.index, finish + redirect)
            self._squash_wrong_path()
        self._producer_finished(rec)

    def _squash_wrong_path(self) -> None:
        """Discard everything younger than a resolved misprediction.

        With ``model_wrong_path`` enabled, the only instructions younger
        than a mispredicted branch are the synthetic wrong-path ones
        (negative trace indices), sitting contiguously at the ROB tail.
        Registers are released immediately; occupied issue-queue slots are
        swept by the select loop on its next pass.
        """
        entries = self.rob._entries
        cycle = self.cycle
        while entries and entries[-1].instr.index < 0:
            rec = entries.pop()
            rec.squashed = True
            # release the register now; if the record is still waiting in an
            # issue queue, the select loop frees that slot at the mark
            cluster = self.clusters[rec.cluster]
            cluster.on_commit(rec.instr.op, rec.instr.has_dest)
            if not rec.issued and cycle < cluster.wake_cycle:
                # wake the cluster so the slot is swept exactly when the
                # naive scan would have swept it (this cycle for clusters
                # not yet selected, next cycle for the rest)
                cluster.wake_cycle = cycle
            del self._records[rec.instr.index]
            self.stats.squashed += 1

    def _dispatch(self) -> None:
        cycle = self.cycle
        if cycle < self._dispatch_stalled_until:
            return
        fetch_unit = self.fetch_unit
        rob = self.rob
        memory = self.memory
        choose = self.steering.choose
        width = self.config.front_end.dispatch_width
        dispatched = 0
        while dispatched < width:
            instr = fetch_unit.peek_ready(cycle)
            if instr is None or rob.full:
                break
            is_mem = instr.is_mem
            if is_mem and not memory.can_dispatch(instr):
                break
            producer_clusters = self._producer_clusters(instr)
            preferred = memory.preferred_cluster(instr) if is_mem else None
            # re-read each iteration: a controller's on_dispatch hook may
            # reconfigure mid-burst
            target = choose(instr, producer_clusters, self.active_clusters, preferred)
            if target is None:
                break
            if is_mem and not self._memory_slot_ok(instr, target):
                break
            fetch_unit.pop()
            self._allocate(instr, target)
            dispatched += 1
            if self._controller_wants_dispatch:
                self.controller.on_dispatch(instr, cycle)

    def _memory_slot_ok(self, instr: Instr, cluster: int) -> bool:
        """Post-steering LSQ check (the decentralized LSQ is per cluster)."""
        memory = self.memory
        lsq = getattr(memory, "lsq", None)
        if lsq is None:
            return True
        if hasattr(lsq, "can_allocate_load") and instr.is_load:
            return lsq.can_allocate_load(cluster)
        return memory.can_dispatch(instr)

    def _producer_clusters(self, instr: Instr) -> List[Tuple[int, int]]:
        records = self._records
        producers: List[Tuple[int, int]] = []
        src = instr.src1
        if src >= 0:
            rec = records.get(src)
            if rec is not None:
                producers.append((0, rec.cluster))
        src = instr.src2
        if src >= 0:
            rec = records.get(src)
            if rec is not None:
                producers.append((1, rec.cluster))
        return producers

    def _allocate(self, instr: Instr, target: int) -> None:
        cycle = self.cycle
        # non-uniform dispatch latency: the front end is co-located with the
        # home cluster; reaching a distant cluster takes extra hops (on the
        # dedicated front-end network, hence uncontended)
        dispatch_hops = self.network.uncontended_latency(self._home, target)
        rec = InFlight(instr, target, cycle, cycle + 1 + dispatch_hops)
        self._records[instr.index] = rec
        self._resolve_operand(rec, 0, instr.src1)
        self._resolve_operand(rec, 1, instr.src2)
        cluster = self.clusters[target]
        if rec.unknown_ops == 0:
            a0 = rec.op_avail[0] or 0
            a1 = 0 if rec.store_split else (rec.op_avail[1] or 0)
            rec.ready_time = a0 if a0 >= a1 else a1
            # the entry is fully resolved: schedule the cluster's next
            # select pass (always a future cycle, since earliest_issue is
            # at least cycle + 1)
            wake = rec.ready_time
            if rec.earliest_issue > wake:
                wake = rec.earliest_issue
            if wake < cluster.wake_cycle:
                cluster.wake_cycle = wake
        cluster.allocate(rec, instr.op, instr.has_dest)
        self.rob.push(rec)
        self.stats.dispatched += 1
        if instr.is_mem:
            self.memory.dispatch(instr, target, cycle)

    # ------------------------------------------------------------------
    # main loop

    def step(self) -> None:
        """Advance one cycle."""
        self.cycle += 1
        self.stats.cycles = self.cycle
        if self.cycle >= self._next_fault:
            self._next_fault = self._fault_manager.advance(self.cycle)
        self.stats.cluster_cycle_product += self.effective_active_clusters
        self._drain_memory()
        self._commit()
        self._issue()
        self._dispatch()
        self.fetch_unit.fetch(self.cycle)
        if self.cycle >= self._next_sample:
            self._emit_sample()
        if self.invariants is not None:
            self.invariants.maybe_check()

    def _emit_sample(self) -> None:
        """Periodic timeline sample: IPC over the window, occupancy."""
        cycle = self.cycle
        committed = self.stats.committed
        window = cycle - self._last_sample_cycle
        ipc = (committed - self._last_sample_committed) / window if window else 0.0
        self.tracer.emit(
            "sample",
            cycle=cycle,
            committed=committed,
            ipc=ipc,
            active_clusters=self.active_clusters,
            rob=len(self.rob),
        )
        self._last_sample_cycle = cycle
        self._last_sample_committed = committed
        self._next_sample = cycle + self.tracer.sample_period

    @property
    def finished(self) -> bool:
        return self.fetch_unit.exhausted and self.rob.empty

    def run(self, max_instructions: Optional[int] = None) -> SimStats:
        """Run until the trace is exhausted or ``max_instructions`` commit.

        ``None`` means no limit (the whole trace).  The limit is
        *commit-bounded*: the run stops at the first cycle boundary at or
        past it, and since up to ``commit_width`` instructions retire per
        cycle, the committed count may overshoot ``max_instructions`` by at
        most ``commit_width - 1``.  Stopping mid-cycle would record a
        machine state no real cycle ever produced, so the overshoot is the
        contract (see ``tests/test_api.py``).
        """
        limit = max_instructions if max_instructions is not None else len(self.trace)
        limit = min(limit, len(self.trace))
        max_cycles = max(10_000, limit * _MAX_CPI)
        while not self.finished and self.stats.committed < limit:
            self.step()
            if self.cycle > max_cycles:
                raise SimulationError(
                    f"pipeline wedged: {self.stats.committed} committed in "
                    f"{self.cycle} cycles"
                )
        if self._fault_manager is not None:
            self._fault_manager.finalize(self.cycle)
        if self.invariants is not None:
            self.invariants.check()
        return self.stats


def simulate(
    trace: Trace,
    config: ProcessorConfig,
    *,
    controller: Optional[object] = None,
    max_instructions: Optional[int] = None,
    steering: Optional[SteeringHeuristic] = None,
) -> SimStats:
    """Convenience wrapper: build a processor, run it, return statistics.

    This is the engine-level entry point; prefer :func:`repro.api.simulate`
    for the stable facade.  ``controller``/``max_instructions``/``steering``
    are keyword-only (the unified vocabulary); the pre-facade positional
    spelling was removed after its deprecation cycle (analysis rule L202
    guards against its return).
    """
    processor = ClusteredProcessor(trace, config, controller, steering)
    return processor.run(max_instructions)
