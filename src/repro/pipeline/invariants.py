"""Sampled runtime invariant checking for the clustered processor.

The :class:`~repro.errors.SimulationError` class existed from the start,
but almost nothing enforced it — a corrupted pipeline would happily commit
garbage statistics into the paper exhibits.  :class:`InvariantChecker`
closes that gap: every ``invariant_sample_period`` cycles (and once at the
end of the run) it verifies the structural invariants the simulator's
correctness argument rests on, and raises :class:`SimulationError` with
cycle/instruction context when one fails:

* **ROB commit ordering** — entries sit in dispatch order, trace indices
  of right-path instructions strictly increase toward the tail (wrong-path
  instructions carry negative indices), and occupancy never exceeds the
  configured ROB size.
* **Cluster occupancy** — per-half issue-queue and register-file counters
  stay within ``[0, capacity]``, the issue-queue counters agree with the
  actual queue contents, and every allocated physical register maps to
  exactly one in-flight instruction with a destination (conservation).
* **Interconnect message conservation** — every message the network
  scheduled is accounted exactly once in the statistics, and accumulated
  transfer latency is at least ``transfers x hop_latency`` (a message
  cannot arrive faster than one uncontended hop).
* **Route-table integrity** (checked once, on the first sample) — every
  (src, dst) route the topology serves is a connected chain of real
  directed links: it starts at ``src``, each link's source is the previous
  link's destination (per ``Topology.link_endpoints``), it ends at
  ``dst``, and its length agrees with ``Topology.hops``.  This is what
  catches a miswired torus wrap-around or ring-of-rings hub table; the
  ``scramble_topology`` fault in :mod:`repro.faults` exists to prove it
  does.
* **Rate sanity** — ``committed <= issued <= dispatched``, IPC within
  ``(0, commit_width]``, never NaN, and active-cluster accounting within
  ``num_clusters x cycles``.  Under architectural faults
  (:mod:`repro.resilience`) the accounting is liveness-aware: the
  effective active count must equal the live clusters inside the dispatch
  window, so an *intentionally* disabled cluster never false-positives
  while a drifted fault remap still fails.

Architectural link faults re-arm the route-table walk (the
:class:`~repro.resilience.manager.FaultManager` clears the one-shot flag
after every reroute); pairs partitioned by severed links are skipped —
unreachability is a legitimate degraded state, reported at transfer time
as :class:`~repro.errors.UnreachableCluster`.

Checking is pure observation: it reads state, never mutates it, so a run
with checking on is bit-identical to the same run with checking off.
Enable per-config via ``ProcessorConfig.check_invariants`` or globally via
the ``REPRO_CHECK_INVARIANTS`` environment variable (the test suite sets
it); the default is off so production sweeps pay nothing.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

from ..config import env_flag
from ..errors import SimulationError, UnreachableCluster

if TYPE_CHECKING:  # pragma: no cover
    from ..config import ProcessorConfig
    from .processor import ClusteredProcessor

#: environment toggle consulted when ``config.check_invariants`` is None
INVARIANTS_ENV = "REPRO_CHECK_INVARIANTS"


def invariants_enabled(config: "ProcessorConfig") -> bool:
    """Resolve the three-state toggle: config wins, then the environment."""
    if config.check_invariants is not None:
        return config.check_invariants
    return env_flag(INVARIANTS_ENV)


class InvariantChecker:
    """Sampled structural checks over one :class:`ClusteredProcessor`."""

    def __init__(self, processor: "ClusteredProcessor") -> None:
        self.processor = processor
        self.period = max(1, processor.config.invariant_sample_period)
        self._next_check = self.period
        self.checks_run = 0
        self._topology_checked = False

    # ------------------------------------------------------------------
    def maybe_check(self) -> None:
        """Run the full check set if the sampling period has elapsed."""
        if self.processor.cycle >= self._next_check:
            self._next_check = self.processor.cycle + self.period
            self.check()

    def check(self) -> None:
        """Run every invariant check now (also called at end of run)."""
        self.checks_run += 1
        if not self._topology_checked:
            self._topology_checked = True
            self._check_topology()
        self._check_rob()
        self._check_clusters()
        self._check_network()
        self._check_rates()

    def _fail(self, what: str, detail: str) -> None:
        p = self.processor
        raise SimulationError(
            f"invariant violation [{what}] at cycle {p.cycle}, "
            f"{p.stats.committed} committed, trace {p.trace.name!r}: {detail}"
        )

    # ------------------------------------------------------------------
    def _check_rob(self) -> None:
        rob = self.processor.rob
        if len(rob) > rob.size:
            self._fail("rob", f"{len(rob)} entries exceed ROB size {rob.size}")
        last_dispatch = -1
        last_index = None
        for rec in rob:
            if rec.dispatch_cycle < last_dispatch:
                self._fail(
                    "rob",
                    f"entry {rec.instr.index} dispatched at cycle "
                    f"{rec.dispatch_cycle}, after a cycle-{last_dispatch} entry "
                    "— commit order broken",
                )
            last_dispatch = rec.dispatch_cycle
            index = rec.instr.index
            if index >= 0:
                if last_index is not None and index <= last_index:
                    self._fail(
                        "rob",
                        f"trace index {index} not younger than {last_index} "
                        "— commit order broken",
                    )
                last_index = index

    def _check_clusters(self) -> None:
        p = self.processor
        total_regs = 0
        for cluster in p.clusters:
            for half, occupancy, capacity in cluster.occupancy_by_half():
                if not 0 <= occupancy <= capacity:
                    self._fail(
                        "cluster",
                        f"cluster {cluster.cid} {half} occupancy {occupancy} "
                        f"outside [0, {capacity}]",
                    )
            queued = sum(1 for r in cluster.issue_queue if r is not None)
            if queued != cluster.iq_occupancy:
                self._fail(
                    "cluster",
                    f"cluster {cluster.cid} issue-queue counter "
                    f"{cluster.iq_occupancy} != {queued} queued records",
                )
            total_regs += cluster.reg_occupancy
        live_dests = sum(1 for r in p._records.values() if r.instr.has_dest)
        if total_regs != live_dests:
            self._fail(
                "cluster",
                f"{total_regs} physical registers allocated for {live_dests} "
                "in-flight destinations — register leak",
            )

    def _check_topology(self) -> None:
        """Walk every route against the link-endpoint table (once per run).

        Routing tables are static, so this runs on the first sample only;
        it is the check that makes a broken torus/ring-of-rings wiring
        fail loudly instead of silently inventing shortcut latencies.
        """
        topology = self.processor.network.topology
        try:
            endpoints = topology.link_endpoints()
        except NotImplementedError:  # pragma: no cover - external topologies
            return
        for src in range(topology.num_nodes):
            for dst in range(topology.num_nodes):
                if src == dst:
                    continue
                try:
                    route = list(topology.route(src, dst))
                except UnreachableCluster:
                    # severed links partitioned this pair; the error is
                    # raised (correctly) at transfer time instead
                    continue
                at = src
                for link in route:
                    if link not in endpoints:
                        self._fail(
                            "topology",
                            f"route {src}->{dst} uses link {link} which is "
                            "not in the topology's link table",
                        )
                    head, tail = endpoints[link]
                    if head != at:
                        self._fail(
                            "topology",
                            f"route {src}->{dst} is not a connected chain: "
                            f"link {link} starts at {head}, expected {at}",
                        )
                    at = tail
                if at != dst:
                    self._fail(
                        "topology",
                        f"route {src}->{dst} ends at node {at}, not {dst}",
                    )
                if len(route) != topology.hops(src, dst):
                    self._fail(
                        "topology",
                        f"route {src}->{dst} has {len(route)} links but "
                        f"hops() reports {topology.hops(src, dst)}",
                    )

    def _check_network(self) -> None:
        p = self.processor
        s = p.stats
        accounted = s.register_transfers + s.memory_transfers
        if p.network.messages_sent != accounted:
            self._fail(
                "network",
                f"{p.network.messages_sent} messages scheduled but {accounted} "
                "accounted in statistics — message conservation broken",
            )
        hop = p.network.config.hop_latency
        if s.register_transfer_cycles < s.register_transfers * hop:
            self._fail(
                "network",
                f"{s.register_transfers} register transfers accumulated only "
                f"{s.register_transfer_cycles} latency cycles "
                f"(< 1 hop of {hop} each)",
            )
        if s.memory_transfer_cycles < s.memory_transfers * hop:
            self._fail(
                "network",
                f"{s.memory_transfers} memory transfers accumulated only "
                f"{s.memory_transfer_cycles} latency cycles "
                f"(< 1 hop of {hop} each)",
            )

    def _check_rates(self) -> None:
        p = self.processor
        s = p.stats
        if not s.committed <= s.issued <= s.dispatched:
            self._fail(
                "rates",
                f"committed {s.committed} <= issued {s.issued} <= "
                f"dispatched {s.dispatched} does not hold",
            )
        if s.cycles:
            ipc = s.committed / s.cycles
            width = p.config.front_end.commit_width
            if math.isnan(ipc) or ipc < 0 or ipc > width:
                self._fail(
                    "rates", f"IPC {ipc!r} outside sane bounds [0, {width}]"
                )
        limit = p.config.num_clusters * s.cycles
        if not 0 <= s.cluster_cycle_product <= limit:
            self._fail(
                "rates",
                f"cluster-cycle product {s.cluster_cycle_product} outside "
                f"[0, {limit}]",
            )
        # liveness-aware accounting: intentionally-disabled (fault-killed)
        # clusters must be excluded from the effective count — equality
        # holds on healthy machines too, where every cluster is live
        effective = getattr(p, "effective_active_clusters", None)
        if effective is not None:
            live = sum(
                1 for c in p.clusters[: p.active_clusters] if c.live
            )
            if effective != live:
                self._fail(
                    "rates",
                    f"effective active clusters {effective} != {live} live "
                    f"clusters inside the {p.active_clusters}-cluster "
                    "dispatch window — fault remap drifted",
                )
