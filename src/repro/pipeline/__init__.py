"""The out-of-order pipeline: ROB, clustered processor, monolithic baseline."""

from .monolithic import simulate_monolithic
from .processor import ClusteredProcessor, simulate
from .rob import InFlight, ReorderBuffer

__all__ = [
    "ClusteredProcessor",
    "InFlight",
    "ReorderBuffer",
    "simulate",
    "simulate_monolithic",
]
