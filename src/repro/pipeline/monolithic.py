"""Monolithic baseline processor (Table 3's "Base IPC").

The paper's baseline is "a monolithic processor with as many resources as
the 16-cluster system": one giant cluster holding all the functional units,
registers, and issue-queue entries, with no inter-cluster communication of
any kind.  We express it as a one-cluster configuration with 16x resources;
with a single cluster every network transfer is a no-op.
"""

from __future__ import annotations

from typing import Optional

from ..config import ProcessorConfig, monolithic_config
from ..stats import SimStats
from ..workloads.instruction import Trace
from .processor import ClusteredProcessor


def simulate_monolithic(
    trace: Trace,
    config: Optional[ProcessorConfig] = None,
    max_instructions: Optional[int] = None,
) -> SimStats:
    """Run the monolithic baseline over a trace."""
    processor = ClusteredProcessor(trace, config or monolithic_config())
    return processor.run(max_instructions)
