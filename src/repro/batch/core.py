"""Fused inner loop for one batch member.

A :class:`FusedCore` drives one :class:`ClusteredProcessor` through the
same cycle loop as ``processor.step()``/``run()``, with three mechanical
transformations that change *nothing* observable:

1. **Stage fusion.**  ``step()`` pays a per-cycle framing tax — the
   ``step``/``_drain_memory``/``_commit``/``_issue``/``_dispatch``/
   ``fetch`` call chain plus each stage re-hoisting the same attributes —
   that profiles at roughly a third of total runtime.  The fused loop
   transcribes the stage bodies inline, hoisting the objects that are
   only ever mutated in place (``rob._entries``, ``_records``, ``_done``,
   the cluster list, the memory system) once per call.  Objects the
   pipeline *replaces* mid-run are re-read every cycle exactly where the
   original re-read them: ``fetch_unit._queue`` (rebuilt by
   ``branch_resolved`` under ``model_wrong_path``) and
   ``memory._completions`` (swapped by the drain).

2. **Per-instruction helper fusion.**  The hottest per-instruction
   helpers — ``ProducerSteering.choose``, ``_producer_clusters``,
   ``_do_issue``, ``_allocate`` — are transcribed inline as well (their
   call overhead is comparable to their bodies), and the front-end
   dispatch-hop / misprediction-redirect latencies are memoized per
   destination: ``uncontended_latency`` is a pure function of topology
   and link-fault state, so the tables are rebuilt whenever the fault
   manager runs and are exact everywhere else.  Steering heuristics
   other than the default :class:`ProducerSteering` (the Mod-N /
   first-fit ablations, multiprog masks) go through the ordinary
   ``choose`` call.  Two call-elision rules are used where a helper
   call is provably a no-op: ``_resolve_operand`` on a negative source
   (the operand slot is already 0) and ``_producer_finished`` with no
   waiters (it only clears an empty list).

3. **Idle-cycle skip.**  Every latency in the simulator is an absolute
   cycle number computed at scheduling time (see the module docstring of
   :mod:`repro.pipeline.processor`), so after a cycle in which no stage
   did any work the next cycle that *can* do work is computable: the
   minimum over the fault poll, the tracer sample point, the invariant
   check point, the ROB head's finish cycle, every cluster's
   ``wake_cycle``, the fetch unit's next possible fetch, and the dispatch
   stage's engagement cycle.  The clock jumps straight there, applying
   the only per-cycle side effect a no-work cycle has
   (``cluster_cycle_product`` accumulation) in closed form.

Two further exact caches ride on the same absolute-cycle property: the
LSQ capacity gates and bank-predictor steering hints are inlined per
memory organization (the decentralized gate's speculative token is
minted exactly once per instruction, call-for-call where the original
minted it), and a *wake-front* lower bound over the clusters'
``wake_cycle`` values lets the issue scan be skipped entirely while no
cluster can wake — re-derived in O(clusters) at every site that writes
a wake.

The skip probe is deliberately conservative — correctness never depends
on skipping:

* it only runs after a cycle whose every stage provably did nothing
  (and never with undrained memory completions pending);
* it never *mutates* on the probe path: when the fetch head is ready
  and the ROB has room, the next cycle is treated as active **unless**
  dispatch is provably blocked by pure reads alone — a full centralized
  LSQ, a full store-target bank set, every decentralized bank full for
  a load, or an empty feasibility walk of the default steering policy
  (window/IQ/RF occupancy only; ModN/first-fit ablations and custom
  memory systems always count as engageable);
* every quantity the blocked-dispatch proof reads is constant over the
  skip window: issue-queue slots free only at a ``wake_cycle``, regis-
  ters and the centralized LSQ free only at the ROB head's finish, and
  the decentralized release heap's head is added as a probe event
  whenever its occupancy gate is what blocks dispatch.

Bit-identity with the serial path is enforced three ways: the
batched-vs-serial conformance matrix and the hypothesis batch-order
property in ``tests/batch/``, the backend conformance suite in
``tests/experiments/test_backends.py``, and the 55-key fingerprint suite
(``tests/test_fingerprint.py``).  A later compiled (mypyc/Cython) inner
loop slots in under exactly this interface.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..clusters.cluster import _IS_FP
from ..clusters.steering import ProducerSteering
from ..errors import SimulationError
from ..memory.hierarchy import CentralizedMemory, DecentralizedMemory
from ..pipeline.processor import _EXEC_LAT, ClusteredProcessor
from ..pipeline.rob import InFlight
from ..workloads.instruction import OpClass

#: cluster wake / next-event sentinel, mirroring the pipeline's
_NEVER = 1 << 60

#: largest single skip while no wedge bound applies (the warmup loop has
#: none, matching ``run_trace``): keeps each ``advance`` iteration finite
#: so the engine's cooperative timeout can always fire
_UNBOUNDED_SKIP = 1 << 20

_LOAD = OpClass.LOAD
_STORE = OpClass.STORE
_BRANCH = OpClass.BRANCH


class FusedCore:
    """The fused cycle loop bound to one processor.

    Build it once per member, after any steering override has been
    installed; call :meth:`advance` repeatedly.  The core requires the
    default event-driven issue stage — the ``naive_issue=True`` oracle
    is a per-cycle reference implementation and is not transcribed here.
    """

    __slots__ = ("p", "_disp_lat", "_redirect_lat")

    def __init__(self, processor: ClusteredProcessor) -> None:
        issue = processor._issue
        if getattr(issue, "__func__", None) is not ClusteredProcessor._issue_event:
            raise SimulationError(
                "FusedCore transcribes the event-driven issue stage; "
                "naive_issue processors must run through step()"
            )
        self.p = processor
        self._disp_lat: Tuple[int, ...] = ()
        self._redirect_lat: Tuple[int, ...] = ()
        self._refresh_latency_tables()

    def _refresh_latency_tables(self) -> None:
        """Memoize the front-end network latencies per destination.

        ``uncontended_latency`` depends only on the topology view and the
        per-link latency table, both of which change exclusively under
        the fault manager — so the tables are rebuilt after every fault
        poll and are exact in between.
        """
        p = self.p
        network = p.network
        home = p._home
        n = p.config.num_clusters
        lat = network.uncontended_latency
        self._disp_lat = tuple(lat(home, k) for k in range(n))
        self._redirect_lat = tuple(lat(k, home) for k in range(n))

    def advance(
        self,
        target_committed: int,
        budget: int,
        max_cycles: Optional[int] = None,
    ) -> bool:
        """Run until ``stats.committed`` reaches ``target_committed`` or the
        trace finishes, executing at most ``budget`` (non-skipped) cycles.

        Returns ``True`` when the goal is reached, ``False`` when the
        budget ran out first.  ``max_cycles`` enables the wedge guard with
        ``run()``'s exact semantics (checked after every executed cycle);
        ``None`` matches the guardless warmup loop of ``run_trace``.
        """
        p = self.p
        stats = p.stats
        fu = p.fetch_unit
        mem = p.memory
        rob = p.rob
        entries = rob._entries
        rob_size = rob.size
        clusters = p.clusters
        records = p._records
        done = p._done
        controller = p.controller
        on_commit = controller.on_commit if controller is not None else None
        wants_dispatch = p._controller_wants_dispatch
        producer_finished = p._producer_finished
        resolve_operand = p._resolve_operand
        squash_wrong_path = p._squash_wrong_path
        memory_slot_ok = p._memory_slot_ok
        steer = p.steering
        # inline the default heuristic only when it is bound to exactly
        # the pipeline's cluster list; ablation policies take the call
        inline_steer = (
            type(steer) is ProducerSteering and steer.clusters is clusters
        )
        choose = steer.choose
        if inline_steer:
            imbalance = steer.imbalance_threshold
            predict_crit = steer.criticality.predict_critical_operand
        crit_update = p.criticality.update
        transfer = p.network.transfer
        can_dispatch = mem.can_dispatch
        preferred_cluster = mem.preferred_cluster
        # LSQ capacity gates, inlined per organization.  The centralized
        # gate is ``not lsq.full`` (its entry dict is mutated in place);
        # the decentralized one reads the per-cluster occupancy list (also
        # in-place) and mints a bank-predictor token, memoized per
        # instruction index, so a single mint here is call-for-call
        # identical to the original gate + steering-hint pair.  Exact
        # types only — wrappers and futures take the generic calls.
        mem_t = type(mem)
        if mem_t is CentralizedMemory:
            mem_mode = 1
            clsq_entries = mem.lsq._entries
            clsq_cap = mem.lsq.capacity
        elif mem_t is DecentralizedMemory:
            mem_mode = 2
            dlsq_occ = mem.lsq._occupancy
            dlsq_cap = mem.lsq.capacity
            pred_tokens = mem._pred_tokens
            predict_spec = mem.predictor.predict_speculative
        else:
            mem_mode = 0
        mem_commit = mem.commit
        mem_dispatch = mem.dispatch
        mem_address_ready = mem.address_ready
        commit_w = p.config.front_end.commit_width
        dispatch_w = p.config.front_end.dispatch_width
        threshold = p.distant_threshold
        fcfg = fu.config
        qcap = fcfg.fetch_queue_size
        wrong = fcfg.model_wrong_path
        trace_len = fu._trace_len
        fetch = fu.fetch
        branch_resolved = fu.branch_resolved
        inv = p.invariants
        never = _NEVER
        exec_lat = _EXEC_LAT
        is_fp = _IS_FP
        load_op = _LOAD
        store_op = _STORE
        branch_op = _BRANCH
        disp_lat = self._disp_lat
        redirect_lat = self._redirect_lat
        # the distributed LSQ's release heap is mutated in place; the
        # centralized memory system's tick is the base-class no-op
        lsq = getattr(mem, "lsq", None)
        releases = getattr(lsq, "_releases", None)
        lsq_tick = mem.tick

        cycle = p.cycle
        committed_total = stats.committed
        executed = 0
        # Wake-front cache for the issue scan: ``wake_min`` is kept an
        # exact lower bound on every cluster's ``wake_cycle``, so the scan
        # is skipped entirely while ``wake_min > cycle`` (the per-cluster
        # guard would have skipped each cluster anyway).  Wake mutations
        # the running scan cannot attribute — an issued instruction's
        # ``_producer_finished``/``_squash_wrong_path`` fan-out, a drained
        # completion with waiters, a fault-manager pass — are followed by
        # an O(num_clusters) re-min over the final values; the dispatch
        # stage's own wake writes are folded in directly.
        wake_min = 0
        while committed_total < target_committed:
            if not entries and fu._pos >= trace_len and not fu._queue:
                return True  # finished: trace exhausted and ROB drained
            if executed >= budget:
                return False
            executed += 1

            # -- cycle open (step() preamble) --------------------------
            cycle += 1
            p.cycle = cycle
            stats.cycles = cycle
            active = False
            if cycle >= p._next_fault:
                p._next_fault = p._fault_manager.advance(cycle)
                self._refresh_latency_tables()
                disp_lat = self._disp_lat
                redirect_lat = self._redirect_lat
                wake_min = never
                for cluster in clusters:
                    if cluster.wake_cycle < wake_min:
                        wake_min = cluster.wake_cycle
                active = True
            stats.cluster_cycle_product += p.effective_active_clusters

            # -- memory housekeeping + load-completion drain -----------
            if releases is not None and releases and releases[0][0] <= cycle:
                lsq_tick(cycle)
                active = True
            completions = mem._completions
            if completions:
                mem._completions = []
                for index, ready in completions:
                    rec = records.get(index)
                    if rec is None:
                        raise SimulationError(
                            f"completion for unknown load {index}"
                        )
                    rec.finish_cycle = ready
                    waiters = rec.waiters
                    if waiters:
                        # ---- _producer_finished (with
                        # _operand_available and operand_known),
                        # transcribed; the wake writes fold straight
                        # into the wake-front cache ----
                        pcl = rec.cluster
                        remote = rec.remote_ready
                        for consumer, pos in waiters:
                            ccl = consumer.cluster
                            if pcl == ccl:
                                avail = ready
                            else:
                                avail = remote.get(ccl)
                                if avail is None:
                                    avail = transfer(
                                        pcl, ccl, ready, kind="register"
                                    )
                                    remote[ccl] = avail
                            if pos == 1 and consumer.store_split:
                                consumer.op_avail[1] = avail
                                ad = consumer.addr_done
                                if ad is not None:
                                    consumer.finish_cycle = (
                                        avail if avail >= ad else ad
                                    )
                            else:
                                consumer.op_avail[pos] = avail
                                consumer.unknown_ops -= 1
                                if consumer.unknown_ops == 0:
                                    oa = consumer.op_avail
                                    a0 = oa[0] or 0
                                    a1 = (
                                        0
                                        if consumer.store_split
                                        else (oa[1] or 0)
                                    )
                                    consumer.ready_time = (
                                        a0 if a0 >= a1 else a1
                                    )
                            if (
                                consumer.unknown_ops == 0
                                and not consumer.issued
                                and not consumer.squashed
                            ):
                                wake = consumer.ready_time
                                if consumer.earliest_issue > wake:
                                    wake = consumer.earliest_issue
                                cl = clusters[ccl]
                                if wake < cl.wake_cycle:
                                    cl.wake_cycle = wake
                                if wake < wake_min:
                                    wake_min = wake
                        waiters.clear()
                active = True

            # -- commit ------------------------------------------------
            if entries:
                rec = entries[0]
                finish = rec.finish_cycle
                if finish is not None and finish <= cycle:
                    n = 0
                    while True:
                        entries.popleft()
                        n += 1
                        instr = rec.instr
                        stats.committed += 1
                        if instr.is_branch:
                            stats.branches += 1
                        elif instr.is_mem:
                            stats.memrefs += 1
                            stats.loads += instr.is_load
                            stats.stores += instr.is_store
                            mem_commit(instr, cycle)
                        if rec.distant:
                            stats.distant_commits += 1
                        clusters[rec.cluster].on_commit(instr.op, instr.has_dest)
                        done[instr.index] = (rec.cluster, finish)
                        del records[instr.index]
                        if on_commit is not None:
                            on_commit(instr, cycle, rec.distant)
                        if n >= commit_w or not entries:
                            break
                        rec = entries[0]
                        finish = rec.finish_cycle
                        if finish is None or finish > cycle:
                            break
                    committed_total = stats.committed
                    active = True

            # -- issue/select (event-driven, _do_issue fused in) -------
            if wake_min <= cycle:
              head_index = entries[0].instr.index if entries else -1
              issued_total = False
              new_min = never
              for cluster in clusters:
                wc = cluster.wake_cycle
                if wc > cycle:
                    if wc < new_min:
                        new_min = wc
                    continue
                queue = cluster.issue_queue
                if not queue:
                    cluster.wake_cycle = never
                    continue
                cluster.fus.begin_cycle()
                issued_any = False
                next_wake = never
                for i, rec in enumerate(queue):
                    if rec is None:
                        continue
                    if rec.squashed:
                        queue[i] = None
                        issued_any = True
                        cluster.on_issue(rec, rec.instr.op)
                        continue
                    if rec.unknown_ops:
                        continue
                    ready = rec.ready_time
                    if rec.earliest_issue > ready:
                        ready = rec.earliest_issue
                    if ready <= cycle:
                        if cluster.fus.try_issue(rec.instr.op):
                            queue[i] = None
                            issued_any = True
                            # ---- _do_issue, transcribed ----
                            instr = rec.instr
                            rec.issued = True
                            rec.issue_cycle = cycle
                            stats.issued += 1
                            cluster.on_issue(rec, instr.op)
                            if instr.index - head_index >= threshold:
                                rec.distant = True
                            if instr.src1 >= 0 and instr.src2 >= 0:
                                a0 = rec.op_avail[0] or 0
                                a1 = rec.op_avail[1] or 0
                                if a0 != a1:
                                    crit_update(instr.pc, 1 if a1 > a0 else 0)
                            op = instr.op
                            if op is load_op:
                                mem_address_ready(instr, cycle + exec_lat[op])
                            elif op is store_op:
                                finish = cycle + exec_lat[op]
                                rec.addr_done = finish
                                data = rec.op_avail[1]
                                rec.finish_cycle = (
                                    None
                                    if data is None
                                    else (finish if finish >= data else data)
                                )
                                mem_address_ready(instr, finish)
                            else:
                                finish = cycle + exec_lat[op]
                                rec.finish_cycle = finish
                                if (
                                    op is branch_op
                                    and fu.pending_mispredict == instr.index
                                ):
                                    branch_resolved(
                                        instr.index,
                                        finish + redirect_lat[rec.cluster],
                                    )
                                    squash_wrong_path()
                                waiters = rec.waiters
                                if waiters:
                                    # ---- _producer_finished, same
                                    # transcription as the drain's; the
                                    # post-scan re-min sees these wakes,
                                    # so no direct cache update here ----
                                    pcl = rec.cluster
                                    remote = rec.remote_ready
                                    for consumer, pos in waiters:
                                        ccl = consumer.cluster
                                        if pcl == ccl:
                                            avail = finish
                                        else:
                                            avail = remote.get(ccl)
                                            if avail is None:
                                                avail = transfer(
                                                    pcl,
                                                    ccl,
                                                    finish,
                                                    kind="register",
                                                )
                                                remote[ccl] = avail
                                        if (
                                            pos == 1
                                            and consumer.store_split
                                        ):
                                            consumer.op_avail[1] = avail
                                            ad = consumer.addr_done
                                            if ad is not None:
                                                consumer.finish_cycle = (
                                                    avail
                                                    if avail >= ad
                                                    else ad
                                                )
                                        else:
                                            consumer.op_avail[pos] = avail
                                            consumer.unknown_ops -= 1
                                            if consumer.unknown_ops == 0:
                                                oa = consumer.op_avail
                                                a0 = oa[0] or 0
                                                a1 = (
                                                    0
                                                    if consumer.store_split
                                                    else (oa[1] or 0)
                                                )
                                                consumer.ready_time = (
                                                    a0 if a0 >= a1 else a1
                                                )
                                        if (
                                            consumer.unknown_ops == 0
                                            and not consumer.issued
                                            and not consumer.squashed
                                        ):
                                            wake = consumer.ready_time
                                            if consumer.earliest_issue > wake:
                                                wake = consumer.earliest_issue
                                            cl = clusters[ccl]
                                            if wake < cl.wake_cycle:
                                                cl.wake_cycle = wake
                                    waiters.clear()
                        elif cycle < next_wake:
                            next_wake = cycle + 1
                    elif ready < next_wake:
                        next_wake = ready
                if issued_any:
                    cluster.issue_queue = [r for r in queue if r is not None]
                    active = True
                    issued_total = True
                cluster.wake_cycle = next_wake
                if next_wake < new_min:
                    new_min = next_wake
              if issued_total:
                # an issue's producer/squash fan-out may have re-woken
                # clusters behind the scan head: re-min the final values
                new_min = never
                for cluster in clusters:
                    if cluster.wake_cycle < new_min:
                        new_min = cluster.wake_cycle
              wake_min = new_min

            # -- dispatch/steer (choose + _allocate fused in) ----------
            if cycle >= p._dispatch_stalled_until:
                # re-read: branch_resolved may have rebuilt the queue
                q = fu._queue
                dispatched = 0
                while dispatched < dispatch_w:
                    if not q or q[0][1] > cycle or len(entries) >= rob_size:
                        break
                    instr = q[0][0]
                    is_mem = instr.is_mem
                    # ---- LSQ gate + steering hint, per organization ----
                    preferred = None
                    if is_mem:
                        if mem_mode == 1:
                            if len(clsq_entries) >= clsq_cap:
                                break
                        elif mem_mode == 2:
                            if instr.is_store:
                                # gate first: the token is only minted
                                # once a store passes (original order)
                                banks = mem._banks
                                blocked = False
                                for k in banks:
                                    if dlsq_occ[k] >= dlsq_cap:
                                        blocked = True
                                        break
                                if blocked:
                                    break
                                token = pred_tokens.get(instr.index)
                                if token is None:
                                    predicted, tok = predict_spec(instr.pc)
                                    pred_tokens[instr.index] = (predicted, tok)
                                else:
                                    predicted = token[0]
                                preferred = banks[predicted % len(banks)]
                            else:
                                # the load gate itself consults the
                                # predictor, so mint before checking
                                token = pred_tokens.get(instr.index)
                                if token is None:
                                    predicted, tok = predict_spec(instr.pc)
                                    pred_tokens[instr.index] = (predicted, tok)
                                else:
                                    predicted = token[0]
                                banks = mem._banks
                                preferred = banks[predicted % len(banks)]
                                if dlsq_occ[preferred] >= dlsq_cap:
                                    break
                        else:
                            if not can_dispatch(instr):
                                break
                            preferred = preferred_cluster(instr)
                    # ---- _producer_clusters, transcribed ----
                    producers: List[Tuple[int, int]] = []
                    src1 = instr.src1
                    if src1 >= 0:
                        prec = records.get(src1)
                        if prec is not None:
                            producers.append((0, prec.cluster))
                    src2 = instr.src2
                    if src2 >= 0:
                        prec = records.get(src2)
                        if prec is not None:
                            producers.append((1, prec.cluster))
                    # active window re-read each iteration: a controller's
                    # on_dispatch hook may reconfigure mid-burst
                    active_bound = p.active_clusters
                    if inline_steer:
                        # ---- ProducerSteering.choose, transcribed as a
                        # single pass: feasibility, the least-loaded
                        # argmin, and the preferred/producer membership
                        # probes all fold into one walk over the active
                        # window (occupancies cannot change mid-walk, so
                        # the captured values equal the original's
                        # post-scan reads) ----
                        needs_reg = instr.has_dest
                        op = instr.op
                        p0c = p1c = -1
                        if producers:
                            p0pos, p0c = producers[0]
                            if len(producers) == 2:
                                p1pos, p1c = producers[1]
                        least = -1
                        least_occ = never
                        pref_ok = p0_ok = p1_ok = False
                        p0_occ = p1_occ = 0
                        k = 0
                        if is_fp[op]:
                            for c in clusters:
                                if k >= active_bound:
                                    break
                                if (
                                    c.steer_ok[op]
                                    and c._fp_iq < c._iq_cap
                                    and (not needs_reg or c._fp_regs < c._rf_cap)
                                ):
                                    occ = c._int_iq + c._fp_iq
                                    if occ < least_occ:
                                        least = k
                                        least_occ = occ
                                    if k == preferred:
                                        pref_ok = True
                                    if k == p0c:
                                        p0_ok = True
                                        p0_occ = occ
                                    if k == p1c:
                                        p1_ok = True
                                        p1_occ = occ
                                k += 1
                        else:
                            for c in clusters:
                                if k >= active_bound:
                                    break
                                if (
                                    c.steer_ok[op]
                                    and c._int_iq < c._iq_cap
                                    and (not needs_reg or c._int_regs < c._rf_cap)
                                ):
                                    occ = c._int_iq + c._fp_iq
                                    if occ < least_occ:
                                        least = k
                                        least_occ = occ
                                    if k == preferred:
                                        pref_ok = True
                                    if k == p0c:
                                        p0_ok = True
                                        p0_occ = occ
                                    if k == p1c:
                                        p1_ok = True
                                        p1_occ = occ
                                k += 1
                        if least < 0:
                            target = None
                        elif pref_ok:
                            target = preferred
                        else:
                            # usable-producer selection, order-preserving
                            if p0_ok and p1_ok:
                                if p0c == p1c:
                                    candidate = p0c
                                    cand_occ = p0_occ
                                else:
                                    crit = predict_crit(instr.pc)
                                    if p1pos == crit and p0pos != crit:
                                        candidate = p1c
                                        cand_occ = p1_occ
                                    else:
                                        candidate = p0c
                                        cand_occ = p0_occ
                            elif p0_ok:
                                candidate = p0c
                                cand_occ = p0_occ
                            elif p1_ok:
                                candidate = p1c
                                cand_occ = p1_occ
                            else:
                                candidate = -1
                                cand_occ = 0
                            if candidate < 0:
                                target = least
                            elif cand_occ - least_occ > imbalance:
                                target = least
                            else:
                                target = candidate
                    else:
                        target = choose(
                            instr, producers, active_bound, preferred
                        )
                    if target is None:
                        break
                    # ---- _memory_slot_ok, per organization.  Nothing
                    # between the gate above and here allocates, so the
                    # centralized re-check and the decentralized store
                    # re-check are provably the gate's own result; only a
                    # load steered away from its predicted bank needs the
                    # per-cluster occupancy looked at again. ----
                    if is_mem:
                        if mem_mode == 2:
                            if (
                                not instr.is_store
                                and dlsq_occ[target] >= dlsq_cap
                            ):
                                break
                        elif mem_mode == 0:
                            if not memory_slot_ok(instr, target):
                                break
                    q.popleft()
                    # ---- _allocate, transcribed ----
                    rec = InFlight(
                        instr, target, cycle, cycle + 1 + disp_lat[target]
                    )
                    records[instr.index] = rec
                    if src1 >= 0:
                        resolve_operand(rec, 0, src1)
                    if src2 >= 0:
                        resolve_operand(rec, 1, src2)
                    cluster = clusters[target]
                    if rec.unknown_ops == 0:
                        a0 = rec.op_avail[0] or 0
                        a1 = 0 if rec.store_split else (rec.op_avail[1] or 0)
                        wake = a0 if a0 >= a1 else a1
                        rec.ready_time = wake
                        if rec.earliest_issue > wake:
                            wake = rec.earliest_issue
                        if wake < cluster.wake_cycle:
                            cluster.wake_cycle = wake
                        if wake < wake_min:
                            wake_min = wake
                    cluster.allocate(rec, instr.op, instr.has_dest)
                    entries.append(rec)  # rob.push; fullness checked above
                    stats.dispatched += 1
                    if is_mem:
                        mem_dispatch(instr, target, cycle)
                    dispatched += 1
                    if wants_dispatch:
                        controller.on_dispatch(instr, cycle)
                if dispatched:
                    active = True

            # -- fetch (gated exactly on fetch()'s early returns) ------
            q = fu._queue
            if fu.pending_mispredict is not None:
                if wrong and len(q) < qcap:
                    fetch(cycle)
                    active = True
            elif fu._pos < trace_len and cycle >= fu._stalled_until and len(q) < qcap:
                fetch(cycle)
                active = True

            # -- sampling / invariants / wedge guard -------------------
            if cycle >= p._next_sample:
                p._emit_sample()
                active = True
            if inv is not None and cycle >= inv._next_check:
                inv._next_check = cycle + inv.period
                inv.check()
            if max_cycles is not None and cycle > max_cycles:
                raise SimulationError(
                    f"pipeline wedged: {stats.committed} committed in "
                    f"{cycle} cycles"
                )
            if active or mem._completions:
                continue

            # -- idle probe: jump to the next possible event -----------
            nxt = cycle + 1
            t = p._next_fault
            if p._next_sample < t:
                t = p._next_sample
            if inv is not None and inv._next_check < t:
                t = inv._next_check
            if entries:
                f = entries[0].finish_cycle
                if f is not None and f < t:
                    t = f
            if wake_min < t:
                t = wake_min
            q = fu._queue
            if fu.pending_mispredict is not None:
                if wrong and len(q) < qcap:
                    t = nxt
            elif fu._pos < trace_len and len(q) < qcap:
                su = fu._stalled_until
                f = su if su > nxt else nxt
                if f < t:
                    t = f
            if q:
                start = p._dispatch_stalled_until
                if start < nxt:
                    start = nxt
                ready = q[0][1]
                if ready > start:
                    start = ready
                if start > nxt:
                    if start < t:
                        t = start
                elif len(entries) < rob_size:
                    # Dispatch would engage next cycle.  Decide from pure
                    # reads alone whether its head instruction is provably
                    # blocked — every input (cluster occupancies, the
                    # active window, the LSQ occupancy, the queue head) is
                    # constant until some probe event fires, so a block
                    # now is a block for the whole window.  The bank
                    # predictor is never consulted (minting a token early
                    # would diverge), so a decentralized load only counts
                    # as blocked when every bank's slice is full.
                    blocked = False
                    instr = q[0][0]
                    if instr.is_mem:
                        if mem_mode == 1:
                            blocked = len(clsq_entries) >= clsq_cap
                        elif mem_mode == 2:
                            if instr.is_store:
                                for k in mem._banks:
                                    if dlsq_occ[k] >= dlsq_cap:
                                        blocked = True
                                        break
                            else:
                                blocked = True
                                for k in mem._banks:
                                    if dlsq_occ[k] < dlsq_cap:
                                        blocked = False
                                        break
                    if not blocked and inline_steer:
                        # pure feasibility walk: no feasible cluster in
                        # the active window means choose() returns None
                        op = instr.op
                        needs_reg = instr.has_dest
                        blocked = True
                        k = 0
                        active_bound = p.active_clusters
                        if is_fp[op]:
                            for c in clusters:
                                if k >= active_bound:
                                    break
                                if (
                                    c.steer_ok[op]
                                    and c._fp_iq < c._iq_cap
                                    and (
                                        not needs_reg
                                        or c._fp_regs < c._rf_cap
                                    )
                                ):
                                    blocked = False
                                    break
                                k += 1
                        else:
                            for c in clusters:
                                if k >= active_bound:
                                    break
                                if (
                                    c.steer_ok[op]
                                    and c._int_iq < c._iq_cap
                                    and (
                                        not needs_reg
                                        or c._int_regs < c._rf_cap
                                    )
                                ):
                                    blocked = False
                                    break
                                k += 1
                    if blocked:
                        # a distributed dummy-slot release can reopen the
                        # LSQ gate mid-window: make it a probe event (the
                        # heap head is already caught up past ``cycle``)
                        if (
                            mem_mode == 2
                            and releases is not None
                            and releases
                            and releases[0][0] < t
                        ):
                            t = releases[0][0]
                    else:
                        # feasible or undecidable (ablation steering,
                        # exotic memory): do not risk the mutating
                        # choose()/can_dispatch() probes — just run it
                        t = nxt
            clamp = max_cycles + 1 if max_cycles is not None else cycle + _UNBOUNDED_SKIP
            if t > clamp:
                t = clamp
            skip = t - nxt
            if skip > 0:
                cycle += skip
                p.cycle = cycle
                stats.cycles = cycle
                stats.cluster_cycle_product += p.effective_active_clusters * skip
        return True
