"""Batched lockstep execution of independent simulations.

``repro.batch`` advances N independent simulations through the cycle
loop together inside one process: :class:`FusedCore` is the fused,
skip-capable inner loop bound to one
:class:`~repro.pipeline.processor.ClusteredProcessor`, and
:class:`BatchEngine` round-robins a batch of them, retiring finished
members and back-filling from a pending queue.

The package sits *below* the experiments layer (it knows nothing about
sweeps, specs, or caching); ``repro.experiments.backends.batch`` wraps
it as the ``--backend batch`` execution backend.  See
``docs/BATCHING.md`` for the execution model and tuning guide.
"""

from .core import FusedCore
from .engine import BatchEngine, BatchJob, BatchOutcome, BatchResult

__all__ = [
    "BatchEngine",
    "BatchJob",
    "BatchOutcome",
    "BatchResult",
    "FusedCore",
]
