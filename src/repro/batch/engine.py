"""Lockstep batch execution of independent simulations.

A :class:`BatchEngine` owns up to ``batch_size`` live
:class:`~repro.pipeline.processor.ClusteredProcessor` instances — the
*members* — and advances them cycle-synchronously in rounds: each round
gives every member one ``quantum`` of executed cycles through its
:class:`~repro.batch.core.FusedCore`.  A member that reaches its commit
target retires and its slot is back-filled from the pending queue, so the
batch stays full until the queue drains.

The member lifecycle replicates :func:`repro.experiments.runner.run_trace`
exactly:

* **WARMUP** — advance (guardlessly, like the warmup loop) until the
  clamped warmup commit count is reached, then snapshot the baseline
  counters;
* **MEASURE** — advance under ``run()``'s wedge guard until the commit
  limit or trace end, then hand the tail (fault finalize, invariant
  check) to ``processor.run()`` itself, whose loop body is already
  satisfied;
* **retire** — report steady-state metrics computed with ``run_trace``'s
  formulas from the snapshot deltas.

Because members never share mutable state (traces are read-only during a
run — the per-process trace memo depends on that already), lockstep
interleaving cannot change any member's result: every member is
bit-identical to the same spec run serially, whatever the batch
composition or quantum.  ``tests/batch/`` and the backend conformance
suite enforce this.

Wall-clock timeouts are cooperative: the engine bills each member for the
time its own rounds actually consume, so a slow member times out after
the same amount of *simulation work* as it would running alone under the
serial backend's ``SIGALRM``.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Iterator, List, Optional, Tuple

from ..pipeline.processor import _MAX_CPI, ClusteredProcessor
from ..stats import SimStats
from .core import FusedCore

__all__ = ["BatchEngine", "BatchJob", "BatchOutcome", "BatchResult"]


@dataclass
class BatchJob:
    """Everything one member needs — ``run_trace``'s argument list."""

    trace: object
    config: object
    controller: Optional[object] = None
    #: called with the processor's cluster list; returns a steering override
    steering: Optional[Callable[[object], object]] = None
    warmup: int = 0
    label: str = ""
    max_instructions: Optional[int] = None
    fault_schedule: Optional[object] = None
    tracer: Optional[object] = None


@dataclass
class BatchResult:
    """Steady-state metrics of one member, field-for-field the numbers
    :class:`~repro.experiments.runner.RunResult` carries (defined here so
    ``repro.batch`` stays below the experiments layer)."""

    name: str
    label: str
    ipc: float
    committed: int
    cycles: int
    mispredict_interval: float
    avg_active_clusters: float
    reconfigurations: int
    stats: SimStats


@dataclass
class BatchOutcome:
    """One retired member: a result, an error, or a timeout."""

    key: object
    result: Optional[BatchResult] = None
    error: Optional[BaseException] = None
    timed_out: bool = False
    #: engine wall-clock seconds billed to this member's own rounds
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return self.result is not None


_WARMUP = 0
_MEASURE = 1


class BatchEngine:
    """Advance up to ``batch_size`` independent simulations in lockstep.

    ``quantum`` is the executed-cycle budget each member receives per
    round: large enough to amortize the round-robin framing, small enough
    that retirement/back-fill keeps the batch full near the end of the
    queue.  Results are invariant to both knobs (see the module
    docstring); only wall-clock behaviour changes.
    """

    def __init__(
        self,
        batch_size: int = 8,
        *,
        quantum: int = 2048,
        timeout: Optional[float] = None,
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        if quantum < 1:
            raise ValueError("quantum must be positive")
        self.batch_size = batch_size
        self.quantum = quantum
        self.timeout = timeout
        self._pending: Deque[Tuple[object, BatchJob]] = deque()
        self._active: List[_LiveMember] = []
        self._retired = 0

    # -- queueing ------------------------------------------------------

    def submit(self, key: object, job: BatchJob) -> None:
        self._pending.append((key, job))

    @property
    def outstanding(self) -> int:
        return len(self._pending) + len(self._active)

    @property
    def active_count(self) -> int:
        return len(self._active)

    @property
    def retired_count(self) -> int:
        return self._retired

    def cancel_pending(self) -> List[Tuple[object, BatchJob]]:
        """Drop queued jobs (live members keep running to retirement)."""
        dropped = list(self._pending)
        self._pending.clear()
        return dropped

    # -- execution -----------------------------------------------------

    def _refill(self, outcomes: List[BatchOutcome]) -> None:
        while self._pending and len(self._active) < self.batch_size:
            key, job = self._pending.popleft()
            t0 = time.perf_counter()
            try:
                member = _LiveMember(key, job)
            except Exception as exc:
                outcomes.append(
                    BatchOutcome(
                        key, error=exc, elapsed=time.perf_counter() - t0
                    )
                )
                continue
            member.elapsed = time.perf_counter() - t0
            self._active.append(member)

    def step_round(self) -> List[BatchOutcome]:
        """Back-fill, give every live member one quantum, collect retirees."""
        outcomes: List[BatchOutcome] = []
        self._refill(outcomes)
        retired: List[_LiveMember] = []
        for member in self._active:
            t0 = time.perf_counter()
            outcome: Optional[BatchOutcome] = None
            try:
                result = member.advance_round(self.quantum)
            except Exception as exc:
                outcome = BatchOutcome(member.key, error=exc)
            else:
                if result is not None:
                    outcome = BatchOutcome(member.key, result=result)
            member.elapsed += time.perf_counter() - t0
            if (
                outcome is None
                and self.timeout is not None
                and member.elapsed > self.timeout
            ):
                outcome = BatchOutcome(member.key, timed_out=True)
            if outcome is not None:
                outcome.elapsed = member.elapsed
                retired.append(member)
                outcomes.append(outcome)
        if retired:
            self._retired += len(retired)
            self._active = [m for m in self._active if m not in retired]
            self._refill(outcomes)
        return outcomes

    def run(self) -> Iterator[BatchOutcome]:
        """Drive rounds until the queue and the batch are both empty."""
        while self.outstanding:
            for outcome in self.step_round():
                yield outcome


class _LiveMember:
    """One live simulation: WARMUP → MEASURE → retired."""

    __slots__ = (
        "key", "job", "processor", "core", "phase", "warmup_target",
        "cycles0", "committed0", "mispredicts0", "cluster_cycles0",
        "elapsed",
    )

    def __init__(self, key: object, job: BatchJob) -> None:
        self.key = key
        self.job = job
        self.elapsed = 0.0
        processor = ClusteredProcessor(
            job.trace,
            job.config,
            job.controller,
            tracer=job.tracer,
            fault_schedule=job.fault_schedule,
        )
        if job.steering is not None:
            processor.steering = job.steering(processor.clusters)
        self.processor = processor
        self.core = FusedCore(processor)
        # run_trace's warmup clamp: leave at least the last 1000
        # instructions measurable, never warm past the commit bound
        warmup = min(job.warmup, max(0, len(job.trace) - 1000))
        if job.max_instructions is not None:
            warmup = min(warmup, job.max_instructions)
        self.warmup_target = warmup
        self.phase = _WARMUP

    def advance_round(self, quantum: int) -> Optional[BatchResult]:
        """Spend one quantum; a :class:`BatchResult` means retirement."""
        p = self.processor
        if self.phase == _WARMUP:
            # guardless, like run_trace's warmup loop
            if not self.core.advance(self.warmup_target, quantum, None):
                return None
            stats = p.stats
            self.cycles0 = p.cycle
            self.committed0 = stats.committed
            self.mispredicts0 = stats.mispredicts
            self.cluster_cycles0 = stats.cluster_cycle_product
            self.phase = _MEASURE
            return None  # the measurement rounds start fresh
        limit = self.job.max_instructions
        bound = limit if limit is not None else len(p.trace)
        bound = min(bound, len(p.trace))
        max_cycles = max(10_000, bound * _MAX_CPI)  # run()'s wedge guard
        if not self.core.advance(bound, quantum, max_cycles):
            return None
        # the commit target is met, so run()'s loop body never executes:
        # this is exactly its finalization tail (fault finalize +
        # invariant check), with no duplicated private state handling
        stats = p.run(limit)
        return self._result(stats)

    def _result(self, stats: SimStats) -> BatchResult:
        """run_trace's steady-state arithmetic, verbatim."""
        cycles = max(1, stats.cycles - self.cycles0)
        committed = stats.committed - self.committed0
        mispredicts = stats.mispredicts - self.mispredicts0
        return BatchResult(
            name=self.processor.trace.name,
            label=self.job.label,
            ipc=committed / cycles,
            committed=committed,
            cycles=cycles,
            mispredict_interval=(
                (committed / mispredicts) if mispredicts else float("inf")
            ),
            avg_active_clusters=(
                (stats.cluster_cycle_product - self.cluster_cycles0) / cycles
            ),
            reconfigurations=stats.reconfigurations,
            stats=stats,
        )
