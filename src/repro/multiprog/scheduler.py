"""The lockstep co-scheduler: N threads, one fabric, one global clock.

Each thread is a complete :class:`~repro.pipeline.processor.ClusteredProcessor`
(its own front end, ROB, renamer, and cache view) built over the full
physical cluster array, stepped one cycle at a time in thread-index
order.  Cluster *ownership* is the only coupling: a thread dispatches
only into clusters the :class:`~repro.multiprog.ledger.ClusterLedger`
says it owns (enforced by
:class:`~repro.multiprog.steering.MaskedSteering`), so the arbiters
compete on placement — how far a thread's clusters are from the home
cluster and from each other on the real fabric.

Modelling notes (see ``docs/MULTIPROG.md``):

* Threads do not contend for each other's *links* — each processor owns
  a private :class:`~repro.interconnect.network.Network` instance.  The
  communication cost of a bad allocation shows up as longer routes, not
  as cross-thread queueing.
* Reconfiguration controllers are not co-scheduled; threads run with the
  ``none`` policy and the arbiter replaces the controller as the
  cluster-count decision maker.
* Reclaimed clusters leave the owner's dispatch mask immediately and
  drain for ``spec.drain_cycles`` before becoming grantable, mirroring
  the paper's drain-before-deactivate reconfiguration cost.
* Architectural faults (``spec.faults``) apply at the *global* clock:
  a ``cluster_kill`` fails the cluster in the shared ledger (stripping
  any owner's dispatch mask immediately), and if the eviction leaves an
  unfinished thread with zero clusters the scheduler emergency-grants it
  the lowest free cluster before the next cycle — no thread ever starves
  silently.  A ``cluster_restore`` returns the cluster to the free pool;
  the arbiter re-distributes it at the next epoch boundary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..config import (
    ProcessorConfig,
    default_config,
    grid_config,
    ring_of_rings_config,
    torus_config,
)
from ..errors import SimulationError
from ..interconnect.network import build_topology
from ..observability.tracer import NULL_TRACER, Tracer
from ..pipeline.processor import ClusteredProcessor
from ..stats import SimStats
from ..workloads.generator import generate_trace
from ..workloads.profiles import get_profile
from .arbiters import Arbiter, ThreadView, build_arbiter
from .ledger import ClusterLedger
from .spec import MultiProgResult, MultiProgSpec, ThreadResult
from .steering import MaskedSteering

#: fabric name -> ProcessorConfig factory (multiprog's slice of the
#: facade topology vocabulary)
_FABRIC_CONFIGS: Dict[str, Callable[[int], ProcessorConfig]] = {
    "ring": default_config,
    "grid": grid_config,
    "torus": torus_config,
    "ring-of-rings": ring_of_rings_config,
}

#: per-thread trace seeds are decorrelated with this stride so identical
#: profile names still produce independent instruction streams
SEED_STRIDE = 17

#: wedge guard, as in the single-thread processor: a run may not take
#: more than this many global cycles per total instruction
_MAX_CPI = 400


def thread_seed(seed: int, index: int) -> int:
    """The trace-generation seed of thread ``index``."""
    return seed + SEED_STRIDE * index


def fabric_config(spec: MultiProgSpec) -> ProcessorConfig:
    """The shared :class:`ProcessorConfig` of a multiprogrammed run."""
    return _FABRIC_CONFIGS[spec.topology](spec.clusters)


@dataclass
class _Thread:
    """Mutable per-thread bookkeeping, internal to the scheduler."""

    index: int
    workload: str
    processor: ClusteredProcessor
    steering: MaskedSteering
    epoch_committed_base: int = 0
    finished_cycle: Optional[int] = None
    running: bool = field(default=True)


def _arbitrate(
    spec: MultiProgSpec,
    arbiter: Arbiter,
    ledger: ClusterLedger,
    threads: List[_Thread],
    cycle: int,
    tracer: Tracer,
) -> None:
    """One epoch boundary: snapshot views, apply the arbiter's actions."""
    views = []
    total_committed = 0
    for thread in threads:
        committed = thread.processor.stats.committed
        total_committed += committed
        views.append(
            ThreadView(
                index=thread.index,
                finished=not thread.running,
                owned=ledger.owned_by(thread.index),
                committed=committed,
                epoch_committed=committed - thread.epoch_committed_base,
            )
        )
        thread.epoch_committed_base = committed
    actions = arbiter.rebalance(views, ledger.free_clusters(cycle), cycle)
    for action, thread_index, cluster in actions:
        if not 0 <= thread_index < len(threads):
            raise SimulationError(
                f"arbiter {arbiter.name!r} named unknown thread "
                f"{thread_index}"
            )
        thread = threads[thread_index]
        if action == "grant":
            ledger.grant(cluster, thread_index, cycle)
            thread.processor.stats.arb_grants += 1
            if tracer.enabled:
                tracer.emit(
                    "arb_grant",
                    cycle=cycle,
                    committed=total_committed,
                    thread=thread_index,
                    cluster=cluster,
                    arbiter=arbiter.name,
                    owned=len(ledger.owned_by(thread_index)),
                )
        elif action == "reclaim":
            if thread.running and len(ledger.owned_by(thread_index)) <= 1:
                raise SimulationError(
                    f"arbiter {arbiter.name!r} would starve unfinished "
                    f"thread {thread_index} (reclaim of its last cluster "
                    f"{cluster} at cycle {cycle})"
                )
            ledger.reclaim(cluster, thread_index, cycle, spec.drain_cycles)
            thread.processor.stats.arb_reclaims += 1
            if tracer.enabled:
                tracer.emit(
                    "arb_reclaim",
                    cycle=cycle,
                    committed=total_committed,
                    thread=thread_index,
                    cluster=cluster,
                    arbiter=arbiter.name,
                    owned=len(ledger.owned_by(thread_index)),
                )
        else:
            raise SimulationError(
                f"arbiter {arbiter.name!r} returned unknown action "
                f"{action!r}"
            )
    ledger.check_conservation(cycle)
    for thread in threads:
        thread.steering.set_owned(ledger.owned_by(thread.index))


def _apply_fault(
    spec: MultiProgSpec,
    event,
    ledger: ClusterLedger,
    threads: List[_Thread],
    cycle: int,
    tracer: Tracer,
) -> None:
    """Apply one due fault event to the shared ledger (global clock)."""
    committed = sum(t.processor.stats.committed for t in threads)
    if event.kind == "cluster_kill":
        evicted = ledger.fail_cluster(event.cluster, cycle)
        # attribute run-level fault counters to the evicted thread (its
        # machine shrank), falling back to thread 0 for unowned clusters
        stats = threads[evicted if evicted is not None else 0].processor.stats
        stats.faults_injected += 1
        stats.cluster_kills += 1
        live = spec.clusters - len(ledger.failed_clusters())
        if tracer.enabled:
            tracer.emit(
                "fault_inject",
                cycle=cycle,
                committed=committed,
                fault=event.kind,
                target=event.target_label(),
            )
            tracer.emit(
                "remap_start",
                cycle=cycle,
                committed=committed,
                target=event.target_label(),
                live=live,
            )
        if evicted is not None:
            thread = threads[evicted]
            thread.steering.set_owned(ledger.owned_by(evicted))
            if thread.running and not ledger.owned_by(evicted):
                free = ledger.free_clusters(cycle)
                if not free:
                    # no free cluster: shed one from the richest other
                    # running thread (ties: lowest index; victim: its
                    # highest-id cluster) with a zero-cycle drain — the
                    # starving thread cannot wait out a drain window
                    donors = [
                        t
                        for t in threads
                        if t.running
                        and t.index != evicted
                        and len(ledger.owned_by(t.index)) > 1
                    ]
                    if not donors:
                        raise SimulationError(
                            f"cluster_kill of {event.cluster} at cycle "
                            f"{cycle} leaves thread {evicted} with no "
                            "clusters and no donor thread — more threads "
                            "than surviving clusters"
                        )
                    donor = max(
                        donors,
                        key=lambda t: (
                            len(ledger.owned_by(t.index)),
                            -t.index,
                        ),
                    )
                    victim = ledger.owned_by(donor.index)[-1]
                    ledger.reclaim(victim, donor.index, cycle, 0)
                    donor.steering.set_owned(ledger.owned_by(donor.index))
                    donor.processor.stats.arb_reclaims += 1
                    free = ledger.free_clusters(cycle)
                ledger.grant(free[0], evicted, cycle)
                thread.steering.set_owned(ledger.owned_by(evicted))
                thread.processor.stats.arb_grants += 1
                if tracer.enabled:
                    tracer.emit(
                        "arb_grant",
                        cycle=cycle,
                        committed=committed,
                        thread=evicted,
                        cluster=free[0],
                        arbiter="fault-recovery",
                        owned=len(ledger.owned_by(evicted)),
                    )
        if tracer.enabled:
            # ownership remap is combinational: the mask update and any
            # emergency grant land in the same global cycle
            tracer.emit(
                "remap_done",
                cycle=cycle,
                committed=committed,
                target=event.target_label(),
                latency=0,
            )
    elif event.kind == "cluster_restore":
        if ledger.restore_cluster(event.cluster, cycle):
            stats = threads[0].processor.stats
            stats.faults_injected += 1
            if tracer.enabled:
                tracer.emit(
                    "fault_inject",
                    cycle=cycle,
                    committed=committed,
                    fault=event.kind,
                    target=event.target_label(),
                )
    else:  # pragma: no cover - rejected by MultiProgSpec.__post_init__
        raise SimulationError(
            f"multiprog cannot apply fault kind {event.kind!r}"
        )
    ledger.check_conservation(cycle)


def run_multiprog(
    spec: MultiProgSpec, tracer: Optional[Tracer] = None
) -> MultiProgResult:
    """Run one multiprogrammed spec to completion.

    Deterministic: the result is a pure function of ``spec``, and an
    attached ``tracer`` (sink for ``run_start``/``arb_grant``/
    ``arb_reclaim`` events) never perturbs it.
    """
    tracer = tracer if tracer is not None else NULL_TRACER
    config = fabric_config(spec)
    topology = build_topology(config.interconnect, config.num_clusters)
    arbiter = build_arbiter(
        spec.arbiter, spec.clusters, len(spec.workloads), topology
    )

    ledger = ClusterLedger(spec.clusters)
    threads: List[_Thread] = []
    total_instructions = 0
    for index, workload in enumerate(spec.workloads):
        trace = generate_trace(
            get_profile(workload),
            spec.trace_length,
            seed=thread_seed(spec.seed, index),
        )
        total_instructions += len(trace)
        processor = ClusteredProcessor(trace, config)
        steering = MaskedSteering(processor.clusters, processor.criticality)
        processor.steering = steering
        threads.append(_Thread(index, workload, processor, steering))

    allocation = arbiter.initial_allocation()
    if len(allocation) != len(threads):
        raise SimulationError(
            f"arbiter {arbiter.name!r} allocated {len(allocation)} blocks "
            f"for {len(threads)} threads"
        )
    for index, block in enumerate(allocation):
        if not block:
            raise SimulationError(
                f"arbiter {arbiter.name!r} left thread {index} with no "
                f"initial clusters"
            )
        for cluster in block:
            ledger.grant(cluster, index, 0)
    ledger.check_conservation(0)
    for thread in threads:
        thread.steering.set_owned(ledger.owned_by(thread.index))

    if tracer.enabled:
        tracer.emit(
            "run_start",
            cycle=0,
            committed=0,
            workload=spec.name,
            instructions=total_instructions,
            clusters=spec.clusters,
        )

    fault_events = list(spec.faults.events) if spec.faults else []
    fault_pos = 0

    cycle = 0
    cycle_limit = _MAX_CPI * max(1, total_instructions)
    running = list(threads)
    while running:
        while (
            fault_pos < len(fault_events)
            and fault_events[fault_pos].cycle <= cycle
        ):
            _apply_fault(
                spec, fault_events[fault_pos], ledger, threads, cycle, tracer
            )
            fault_pos += 1
        if fault_events and ledger.failed_clusters():
            threads[0].processor.stats.degraded_cycles += 1
        for thread in running:
            thread.processor.step()
            thread.processor.stats.owned_cluster_cycles += len(
                thread.steering.owned
            )
        cycle += 1
        still_running: List[_Thread] = []
        for thread in running:
            if thread.processor.finished:
                thread.running = False
                thread.finished_cycle = cycle
            else:
                still_running.append(thread)
        running = still_running
        if running and cycle % spec.epoch_cycles == 0:
            _arbitrate(spec, arbiter, ledger, threads, cycle, tracer)
        if cycle > cycle_limit:
            alive = [t.index for t in running]
            raise SimulationError(
                f"multiprog run wedged: {cycle} cycles for "
                f"{total_instructions} instructions (threads {alive} "
                f"still running)"
            )

    thread_results = tuple(
        ThreadResult(
            workload=thread.workload,
            index=thread.index,
            ipc=thread.processor.stats.ipc,
            committed=thread.processor.stats.committed,
            cycles=thread.processor.stats.cycles,
            stats=thread.processor.stats,
        )
        for thread in threads
    )
    merged = SimStats.merged(t.processor.stats for t in threads)
    return MultiProgResult(
        spec=spec, threads=thread_results, cycles=cycle, stats=merged
    )
