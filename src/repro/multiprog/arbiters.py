"""Cluster-allocation arbiters: who gets which clusters, and when.

An arbiter sees only :class:`ThreadView` snapshots and the free-cluster
list; it returns a list of ``("grant" | "reclaim", thread, cluster)``
actions that the scheduler validates against the
:class:`~repro.multiprog.ledger.ClusterLedger` (so a buggy arbiter raises
instead of silently corrupting the run).  All choice functions are
deterministic with explicit id tie-breaks — a multiprog run is a pure
function of its spec, exactly like a single-threaded run.

Registration (:func:`register_arbiter`) is by name; the conformance suite
in ``tests/multiprog/`` parametrizes over :data:`ARBITERS`, so a new
arbiter is automatically subjected to the conservation, no-double-grant,
and determinism properties before it can land.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple, Type

from ..errors import ConfigError
from ..interconnect.topology import Topology

#: one arbiter decision: ("grant" | "reclaim", thread index, cluster id)
Action = Tuple[str, int, int]


@dataclass(frozen=True)
class ThreadView:
    """What an arbiter may know about one thread at an epoch boundary."""

    index: int
    finished: bool
    #: owned clusters, ascending id order
    owned: Tuple[int, ...]
    #: instructions committed since the run started
    committed: int
    #: instructions committed during the just-ended epoch
    epoch_committed: int


class Arbiter:
    """Base class: equal contiguous initial partition, no rebalancing."""

    #: registry key; subclasses must override
    name = ""

    def __init__(
        self, num_clusters: int, num_threads: int, topology: Topology
    ) -> None:
        if num_threads < 1 or num_threads > num_clusters:
            raise ConfigError(
                f"{num_threads} threads cannot share {num_clusters} clusters"
            )
        self.num_clusters = num_clusters
        self.num_threads = num_threads
        self.topology = topology

    def initial_allocation(self) -> Tuple[Tuple[int, ...], ...]:
        """Per-thread cluster sets at cycle 0 (must cover every cluster).

        The default is equal contiguous id blocks, remainders to the
        lowest-indexed threads — contiguous ids are physically adjacent
        on the ring and row-adjacent on the grid/torus.
        """
        share, extra = divmod(self.num_clusters, self.num_threads)
        blocks: List[Tuple[int, ...]] = []
        start = 0
        for thread in range(self.num_threads):
            size = share + (1 if thread < extra else 0)
            blocks.append(tuple(range(start, start + size)))
            start += size
        return tuple(blocks)

    def rebalance(
        self,
        views: Sequence[ThreadView],
        free: Tuple[int, ...],
        cycle: int,
    ) -> List[Action]:
        """Actions to apply at this epoch boundary (default: none)."""
        return []


#: arbiter name -> class; populated by :func:`register_arbiter`
ARBITERS: Dict[str, Type[Arbiter]] = {}


def register_arbiter(cls: Type[Arbiter]) -> Type[Arbiter]:
    """Class decorator adding ``cls`` to the :data:`ARBITERS` registry."""
    if not cls.name:
        raise ValueError(f"{cls.__name__} must define a non-empty name")
    if cls.name in ARBITERS:
        raise ValueError(f"duplicate arbiter name {cls.name!r}")
    ARBITERS[cls.name] = cls
    return cls


def arbiter_names() -> Tuple[str, ...]:
    """Registered arbiter names, sorted for deterministic iteration."""
    return tuple(sorted(ARBITERS))


def build_arbiter(
    name: str, num_clusters: int, num_threads: int, topology: Topology
) -> Arbiter:
    cls = ARBITERS.get(name)
    if cls is None:
        raise ConfigError(
            f"unknown arbiter {name!r}; choose from {arbiter_names()}"
        )
    return cls(num_clusters, num_threads, topology)


def _grant_free(
    free: Tuple[int, ...],
    unfinished: List[ThreadView],
    choose_cluster,
) -> Tuple[List[Action], Dict[int, List[int]]]:
    """Grant every free cluster to the currently poorest unfinished thread.

    ``choose_cluster(candidates, owned)`` picks which free cluster the
    recipient receives.  Returns the actions plus the tentative post-grant
    ownership (needed so consecutive grants see each other).
    """
    actions: List[Action] = []
    tentative: Dict[int, List[int]] = {
        view.index: list(view.owned) for view in unfinished
    }
    remaining = list(free)
    while remaining:
        recipient = min(
            unfinished, key=lambda v: (len(tentative[v.index]), v.index)
        )
        cluster = choose_cluster(remaining, tentative[recipient.index])
        remaining.remove(cluster)
        tentative[recipient.index].append(cluster)
        actions.append(("grant", recipient.index, cluster))
    return actions, tentative


@register_arbiter
class StaticArbiter(Arbiter):
    """Fixed equal partition for the whole run.

    Never reclaims — a finished thread's clusters idle until the end,
    which is exactly the throughput loss the dynamic arbiters exist to
    recover.  The multiprog baseline.
    """

    name = "static"


@register_arbiter
class RoundRobinArbiter(Arbiter):
    """Epoch-based reclaim that equalizes cluster counts.

    Each epoch it (1) grants every free cluster, lowest id first, to the
    currently poorest unfinished thread, (2) reclaims everything still
    owned by finished threads, and (3) if the owned-count spread among
    unfinished threads exceeds one, reclaims the richest thread's
    highest-id cluster (one per epoch, so reallocation is gradual and the
    drain pipeline stays short).
    """

    name = "round-robin"

    def rebalance(
        self,
        views: Sequence[ThreadView],
        free: Tuple[int, ...],
        cycle: int,
    ) -> List[Action]:
        unfinished = [v for v in views if not v.finished]
        if not unfinished:
            return []
        actions, tentative = _grant_free(
            free, unfinished, lambda candidates, owned: min(candidates)
        )
        for view in views:
            if view.finished:
                for cluster in view.owned:
                    actions.append(("reclaim", view.index, cluster))
        if len(unfinished) > 1:
            richest = max(
                unfinished, key=lambda v: (len(tentative[v.index]), -v.index)
            )
            poorest = min(
                unfinished, key=lambda v: (len(tentative[v.index]), v.index)
            )
            spread = len(tentative[richest.index]) - len(
                tentative[poorest.index]
            )
            if spread > 1 and len(richest.owned) > 1:
                actions.append(("reclaim", richest.index, richest.owned[-1]))
        return actions


@register_arbiter
class CommAwareArbiter(Arbiter):
    """Round-robin's trigger policy with communication-aware choices.

    Cluster *selection* minimizes intra-thread hop distance on the actual
    fabric, in the spirit of contiguity-preserving supercomputer
    allocation: the initial partition grows each thread's set greedily
    from a seed by nearest-free cluster; a grant gives the recipient the
    free cluster closest to its current set; a rebalancing reclaim peels
    the donor's most *remote* cluster, preserving the compact core.  On
    the hierarchical ring this keeps threads inside their local rings,
    off the contended hub ring.
    """

    name = "comm-aware"

    def _distance(self, cluster: int, owned: Sequence[int]) -> int:
        """Total hops between ``cluster`` and a thread's owned set."""
        hops = self.topology.hops
        return sum(hops(cluster, other) for other in owned)

    def _closest(self, candidates: Sequence[int], owned: Sequence[int]) -> int:
        """The candidate nearest ``owned`` (ties: lowest id)."""
        return min(
            candidates,
            key=lambda cluster: (self._distance(cluster, owned), cluster),
        )

    def initial_allocation(self) -> Tuple[Tuple[int, ...], ...]:
        share, extra = divmod(self.num_clusters, self.num_threads)
        unallocated = list(range(self.num_clusters))
        blocks: List[Tuple[int, ...]] = []
        for thread in range(self.num_threads):
            size = share + (1 if thread < extra else 0)
            grown = [unallocated.pop(0)]  # seed: lowest unallocated id
            while len(grown) < size:
                nxt = self._closest(unallocated, grown)
                unallocated.remove(nxt)
                grown.append(nxt)
            blocks.append(tuple(sorted(grown)))
        return tuple(blocks)

    def rebalance(
        self,
        views: Sequence[ThreadView],
        free: Tuple[int, ...],
        cycle: int,
    ) -> List[Action]:
        unfinished = [v for v in views if not v.finished]
        if not unfinished:
            return []
        actions, tentative = _grant_free(
            free,
            unfinished,
            lambda candidates, owned: (
                self._closest(candidates, owned) if owned else min(candidates)
            ),
        )
        for view in views:
            if view.finished:
                for cluster in view.owned:
                    actions.append(("reclaim", view.index, cluster))
        if len(unfinished) > 1:
            richest = max(
                unfinished, key=lambda v: (len(tentative[v.index]), -v.index)
            )
            poorest = min(
                unfinished, key=lambda v: (len(tentative[v.index]), v.index)
            )
            spread = len(tentative[richest.index]) - len(
                tentative[poorest.index]
            )
            if spread > 1 and len(richest.owned) > 1:
                # peel the cluster farthest from the rest of the set
                victim = max(
                    richest.owned,
                    key=lambda cluster: (
                        self._distance(
                            cluster,
                            [c for c in richest.owned if c != cluster],
                        ),
                        cluster,
                    ),
                )
                actions.append(("reclaim", richest.index, victim))
        return actions
