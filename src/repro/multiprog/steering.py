"""Ownership-masked instruction steering for co-scheduled threads.

A thread's processor is built over the *full* physical fabric (so hop
distances are real), but it may only dispatch into clusters it currently
owns.  :class:`MaskedSteering` enforces that at the steering interface:
the feasible set is the intersection of the thread's owned clusters with
the capacity-feasible ones, and within it the selection logic mirrors the
paper's :class:`~repro.clusters.steering.ProducerSteering` (bank
preference, producer preference with criticality tiebreak, least-loaded
imbalance override) so single-thread behaviour is directly comparable.

Reclaimed clusters leave the mask immediately — in-flight instructions
there drain naturally, exactly like the processor's own prefix
deactivation — and granted clusters join it at the epoch boundary.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from ..clusters.cluster import Cluster
from ..clusters.criticality import CriticalityPredictor
from ..clusters.steering import SteeringHeuristic
from ..workloads.instruction import Instr


class MaskedSteering(SteeringHeuristic):
    """Producer steering restricted to an updatable owned-cluster set."""

    def __init__(
        self,
        clusters: Sequence[Cluster],
        criticality: Optional[CriticalityPredictor] = None,
        imbalance_threshold: int = 4,
    ) -> None:
        super().__init__(clusters)
        self.criticality = criticality or CriticalityPredictor()
        self.imbalance_threshold = imbalance_threshold
        #: ascending cluster ids this thread may dispatch into
        self.owned: Tuple[int, ...] = ()

    def set_owned(self, owned: Iterable[int]) -> None:
        self.owned = tuple(sorted(owned))

    def choose(
        self,
        instr: Instr,
        producer_clusters: Sequence[Tuple[int, int]],
        active: int,
        preferred: Optional[int] = None,
    ) -> Optional[int]:
        clusters = self.clusters
        needs_reg = instr.has_dest
        op = instr.op
        feasible: List[int] = [
            k
            for k in self.owned
            if k < active and clusters[k].can_accept(op, needs_reg)
        ]
        if not feasible:
            return None

        # 1. decentralized cache: favour the predicted bank cluster
        if preferred is not None and preferred in feasible:
            return preferred

        # 2. producer preference with criticality tiebreak (the two-operand
        # cases of ProducerSteering; >2 producers collapse to the first)
        candidate: Optional[int] = None
        usable = [pc for pc in producer_clusters if pc[1] in feasible]
        if len(usable) == 1:
            candidate = usable[0][1]
        elif len(usable) >= 2:
            pos0, c0 = usable[0]
            pos1, c1 = usable[1]
            if c0 == c1:
                candidate = c0
            else:
                crit = self.criticality.predict_critical_operand(instr.pc)
                candidate = c1 if pos1 == crit and pos0 != crit else c0

        # 3. load-imbalance override / no-producer fallback (lowest owned
        # feasible cluster wins occupancy ties)
        least = feasible[0]
        least_occ = clusters[least].iq_occupancy
        for k in feasible:
            occ = clusters[k].iq_occupancy
            if occ < least_occ:
                least = k
                least_occ = occ
        if candidate is None:
            return least
        if clusters[candidate].iq_occupancy - least_occ > self.imbalance_threshold:
            return least
        return candidate
