"""Declarative multiprogrammed-run specification and result types."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from ..errors import ConfigError
from ..resilience import FaultSchedule
from ..stats import SimStats

#: fabrics the co-scheduler supports (memory organization is orthogonal
#: and stays centralized — the shared home cluster hosts the cache)
FABRICS: Tuple[str, ...] = ("ring", "grid", "torus", "ring-of-rings")

#: the co-scheduler models at most this many hardware threads
MAX_THREADS = 4

#: default per-thread trace length (shorter than the single-thread default:
#: a multiprog run steps one processor per thread per cycle)
DEFAULT_TRACE_LENGTH = 20_000


@dataclass(frozen=True)
class MultiProgSpec:
    """Everything needed to reproduce one multiprogrammed run, by value.

    ``workloads`` names 2-4 benchmark profiles (1 is allowed as the
    degenerate solo case, used by baselines and tests).  Each thread's
    trace is generated with a decorrelated seed
    (:func:`~repro.multiprog.scheduler.thread_seed`), so co-scheduling
    ``("gzip", "gzip")`` still runs two *different* instruction streams.

    Like :class:`~repro.experiments.sweep.RunSpec`, the spec is frozen,
    picklable, and a few hundred bytes — traces are regenerated on the
    worker side.
    """

    workloads: Tuple[str, ...]
    trace_length: int = DEFAULT_TRACE_LENGTH
    seed: int = 7
    topology: str = "ring"
    arbiter: str = "static"
    clusters: int = 16
    #: cycles between arbiter invocations
    epoch_cycles: int = 2_000
    #: cycles a reclaimed cluster drains before it is grantable again
    drain_cycles: int = 30
    #: architectural fault schedule applied at the *global* clock; only
    #: cluster kinds make sense here — ownership is the coupling between
    #: threads, so a fault fails a cluster in the shared ledger rather
    #: than inside any one thread's private pipeline.  No home-cluster
    #: protection: losing dispatch rights to cluster 0 is exactly an
    #: arbiter reclaim, not machine death.
    faults: Optional[FaultSchedule] = None
    #: reporting name only — excluded from the repr (and therefore from
    #: RunSpec.cache_key, which interpolates ``multiprog={...!r}``), for
    #: the same reason RunSpec.label is exempt: relabeling an exhibit
    #: must not fork its cache entries (audited by analysis rule K601)
    label: str = field(default="", repr=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "workloads", tuple(self.workloads))
        if not 1 <= len(self.workloads) <= MAX_THREADS:
            raise ConfigError(
                f"multiprog needs 1..{MAX_THREADS} workloads, got "
                f"{len(self.workloads)}"
            )
        if self.topology not in FABRICS:
            raise ConfigError(
                f"unknown multiprog topology {self.topology!r}; choose "
                f"from {FABRICS}"
            )
        from .arbiters import ARBITERS

        if self.arbiter not in ARBITERS:
            raise ConfigError(
                f"unknown arbiter {self.arbiter!r}; choose from "
                f"{tuple(sorted(ARBITERS))}"
            )
        if self.clusters < len(self.workloads):
            raise ConfigError(
                f"{len(self.workloads)} threads cannot share "
                f"{self.clusters} clusters (every unfinished thread keeps "
                f"at least one)"
            )
        if self.trace_length < 1:
            raise ConfigError("trace_length must be positive")
        if self.epoch_cycles < 1:
            raise ConfigError("epoch_cycles must be positive")
        if self.drain_cycles < 0:
            raise ConfigError("drain_cycles cannot be negative")
        if self.faults is not None:
            for event in self.faults.events:
                if event.kind not in ("cluster_kill", "cluster_restore"):
                    raise ConfigError(
                        f"multiprog fault schedules support cluster_kill/"
                        f"cluster_restore only, got {event.kind!r} (link and "
                        "FU faults live inside a single thread's fabric)"
                    )
                if event.cluster >= self.clusters:
                    raise ConfigError(
                        f"{event.kind} targets cluster {event.cluster}, but "
                        f"the fabric has {self.clusters} clusters"
                    )

    @property
    def name(self) -> str:
        """The run's display name, e.g. ``"gzip+swim"``."""
        return "+".join(self.workloads)

    def resolved_label(self) -> str:
        return self.label or self.arbiter


@dataclass(frozen=True)
class ThreadResult:
    """One thread's whole-run outcome (no warmup exclusion — threads
    interact from cycle 0, so there is no steady state to isolate)."""

    workload: str
    index: int
    ipc: float
    committed: int
    cycles: int
    stats: SimStats

    @property
    def avg_owned_clusters(self) -> float:
        return self.stats.avg_owned_clusters


@dataclass(frozen=True)
class MultiProgResult:
    """Outcome of one multiprogrammed run.

    ``cycles`` is the *global* cycle count (until the last thread
    finished); ``stats`` is the per-thread statistics merged with
    :meth:`repro.stats.SimStats.merge`, so its ``cycles`` field is the
    *sum* of thread cycles, as for any merged statistics.
    """

    spec: MultiProgSpec
    threads: Tuple[ThreadResult, ...]
    cycles: int
    stats: SimStats

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def committed(self) -> int:
        return sum(t.committed for t in self.threads)

    @property
    def throughput_ipc(self) -> float:
        """Total committed instructions per global cycle."""
        if self.cycles == 0:
            return 0.0
        return self.committed / self.cycles

    @property
    def harmonic_mean_ipc(self) -> float:
        """Harmonic mean of per-thread IPCs (the fairness-leaning mean)."""
        if not self.threads or any(t.ipc == 0 for t in self.threads):
            return 0.0
        return len(self.threads) / sum(1.0 / t.ipc for t in self.threads)

    @property
    def arb_grants(self) -> int:
        return self.stats.arb_grants

    @property
    def arb_reclaims(self) -> int:
        return self.stats.arb_reclaims

    def weighted_speedup(self, solo_ipcs: Sequence[float]) -> float:
        """Mean of per-thread ``shared_ipc / solo_ipc`` ratios.

        ``solo_ipcs`` are the threads' IPCs when each runs alone on the
        same fabric with all clusters (supplied by the caller — e.g. the
        ``fig_multiprog`` exhibit measures them in the same sweep batch).
        """
        if len(solo_ipcs) != len(self.threads):
            raise ValueError(
                f"need one solo IPC per thread: got {len(solo_ipcs)} for "
                f"{len(self.threads)} threads"
            )
        ratios = []
        for thread, solo in zip(self.threads, solo_ipcs):
            if solo <= 0:
                raise ValueError(f"solo IPC must be positive, got {solo!r}")
            ratios.append(thread.ipc / solo)
        return sum(ratios) / len(ratios)
