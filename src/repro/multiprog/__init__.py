"""Multiprogrammed co-scheduling: threads competing for clusters.

The paper's future-work section asks what happens when *multiple* threads
share the 16 clusters.  This package co-schedules 2-4 synthetic workloads
in lockstep, with cluster ownership managed by a pluggable
**cluster-allocation arbiter** (see :mod:`~repro.multiprog.arbiters`):

* ``static`` — equal contiguous partition, never rebalanced;
* ``round-robin`` — epoch-based reclaim/regrant that equalizes cluster
  counts and recycles the clusters of finished threads;
* ``comm-aware`` — the same trigger policy, but cluster *choice* minimizes
  intra-thread hop distance (a contiguity-preserving allocator in the
  spirit of communication-aware supercomputer allocation).

Each thread is a full :class:`~repro.pipeline.processor.ClusteredProcessor`
over the shared physical fabric; ownership is enforced at dispatch by
:class:`~repro.multiprog.steering.MaskedSteering`, so a thread's placement
on the fabric (hop distances to the home cluster and between its own
clusters) is what the arbiters compete on.  Arbiter decisions are emitted
as ``arb_grant``/``arb_reclaim`` trace events, and every arbiter x
topology combination must pass the conformance suite in
``tests/multiprog/`` before registration is considered valid.

See ``docs/MULTIPROG.md`` for the model, the fairness metrics, and a
Perfetto walkthrough.
"""

from .arbiters import (
    ARBITERS,
    Arbiter,
    ThreadView,
    arbiter_names,
    build_arbiter,
    register_arbiter,
)
from .ledger import ClusterLedger
from .scheduler import run_multiprog, thread_seed
from .spec import FABRICS, MultiProgResult, MultiProgSpec, ThreadResult
from .steering import MaskedSteering

__all__ = [
    "ARBITERS",
    "Arbiter",
    "ClusterLedger",
    "FABRICS",
    "MaskedSteering",
    "MultiProgResult",
    "MultiProgSpec",
    "ThreadResult",
    "ThreadView",
    "arbiter_names",
    "build_arbiter",
    "register_arbiter",
    "run_multiprog",
    "thread_seed",
]
