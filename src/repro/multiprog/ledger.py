"""The cluster-ownership ledger: who may dispatch where, and since when.

Every physical cluster is in exactly one of four states at any cycle:

``OWNED``
    One thread holds exclusive dispatch rights.
``DRAINING``
    Recently reclaimed; in-flight instructions finish naturally, but the
    cluster is not grantable until ``drain_cycles`` have elapsed (the
    multiprog analogue of the paper's reconfiguration drain).
``FREE``
    Grantable to any thread.
``FAILED``
    Taken out by an architectural fault (:mod:`repro.resilience`); not
    grantable until a matching restore event brings it back.  Failing an
    owned cluster strips the owner — :meth:`fail_cluster` returns the
    evicted thread so the scheduler can compensate it.

The ledger *enforces* the conservation invariants the conformance suite
checks: granting a non-free cluster or reclaiming someone else's cluster
raises :class:`~repro.errors.SimulationError` immediately, with enough
context to identify the misbehaving arbiter.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..errors import SimulationError

#: state names, as reported by :meth:`ClusterLedger.state`
OWNED = "owned"
DRAINING = "draining"
FREE = "free"
FAILED = "failed"


class ClusterLedger:
    """Tracks per-cluster ownership with drain latencies."""

    def __init__(self, num_clusters: int) -> None:
        if num_clusters < 1:
            raise ValueError("num_clusters must be positive")
        self.num_clusters = num_clusters
        self._owner: List[Optional[int]] = [None] * num_clusters
        self._drain_until: List[int] = [0] * num_clusters
        self._failed: List[bool] = [False] * num_clusters

    def _check_cluster(self, cluster: int) -> None:
        if not 0 <= cluster < self.num_clusters:
            raise SimulationError(
                f"cluster {cluster} out of range [0, {self.num_clusters})"
            )

    def owner(self, cluster: int) -> Optional[int]:
        """The owning thread index, or None when free/draining."""
        self._check_cluster(cluster)
        return self._owner[cluster]

    def state(self, cluster: int, cycle: int) -> str:
        self._check_cluster(cluster)
        if self._failed[cluster]:
            return FAILED
        if self._owner[cluster] is not None:
            return OWNED
        if cycle < self._drain_until[cluster]:
            return DRAINING
        return FREE

    def grant(self, cluster: int, thread: int, cycle: int) -> None:
        """Give ``thread`` exclusive dispatch rights to ``cluster``."""
        self._check_cluster(cluster)
        if self._failed[cluster]:
            raise SimulationError(
                f"grant of failed cluster {cluster} to thread {thread} at "
                f"cycle {cycle}: the cluster is architecturally dead until "
                "a restore event"
            )
        holder = self._owner[cluster]
        if holder is not None:
            raise SimulationError(
                f"double grant at cycle {cycle}: cluster {cluster} is "
                f"already owned by thread {holder}, cannot grant to "
                f"thread {thread}"
            )
        if cycle < self._drain_until[cluster]:
            raise SimulationError(
                f"grant of draining cluster {cluster} to thread {thread} "
                f"at cycle {cycle} (drains until "
                f"{self._drain_until[cluster]})"
            )
        self._owner[cluster] = thread

    def reclaim(
        self, cluster: int, thread: int, cycle: int, drain_cycles: int
    ) -> None:
        """Take ``cluster`` back from ``thread``; it drains, then frees."""
        self._check_cluster(cluster)
        holder = self._owner[cluster]
        if holder != thread:
            raise SimulationError(
                f"bad reclaim at cycle {cycle}: cluster {cluster} is "
                f"owned by {holder!r}, not thread {thread}"
            )
        self._owner[cluster] = None
        self._drain_until[cluster] = cycle + drain_cycles

    # -- architectural faults ------------------------------------------
    def fail_cluster(self, cluster: int, cycle: int) -> Optional[int]:
        """Mark ``cluster`` architecturally failed; returns the evicted
        owner (None if it was free or draining).  Idempotent: failing a
        failed cluster returns None and changes nothing."""
        self._check_cluster(cluster)
        if self._failed[cluster]:
            return None
        evicted = self._owner[cluster]
        self._owner[cluster] = None
        self._drain_until[cluster] = 0
        self._failed[cluster] = True
        return evicted

    def restore_cluster(self, cluster: int, cycle: int) -> bool:
        """Bring a failed cluster back (it re-enters as FREE, grantable at
        the next epoch boundary).  Returns False if it was not failed."""
        self._check_cluster(cluster)
        if not self._failed[cluster]:
            return False
        self._failed[cluster] = False
        self._drain_until[cluster] = 0
        return True

    def failed_clusters(self) -> Tuple[int, ...]:
        return tuple(
            cluster
            for cluster in range(self.num_clusters)
            if self._failed[cluster]
        )

    def owned_by(self, thread: int) -> Tuple[int, ...]:
        """The clusters ``thread`` owns, in ascending id order."""
        return tuple(
            cluster
            for cluster, holder in enumerate(self._owner)
            if holder == thread
        )

    def free_clusters(self, cycle: int) -> Tuple[int, ...]:
        return tuple(
            cluster
            for cluster in range(self.num_clusters)
            if not self._failed[cluster]
            and self._owner[cluster] is None
            and cycle >= self._drain_until[cluster]
        )

    def draining_clusters(self, cycle: int) -> Tuple[int, ...]:
        return tuple(
            cluster
            for cluster in range(self.num_clusters)
            if not self._failed[cluster]
            and self._owner[cluster] is None
            and cycle < self._drain_until[cluster]
        )

    def check_conservation(self, cycle: int) -> None:
        """Every cluster in exactly one state; raises on violation.

        The four state tuples are computed independently from the same
        arrays, so this holds by construction — the check exists so the
        conformance suite (and the scheduler's own sampling) can assert
        it *after arbitrary arbiter action sequences*.
        """
        owned = sum(1 for holder in self._owner if holder is not None)
        free = len(self.free_clusters(cycle))
        draining = len(self.draining_clusters(cycle))
        failed = len(self.failed_clusters())
        if owned + free + draining + failed != self.num_clusters:
            raise SimulationError(
                f"cluster conservation violated at cycle {cycle}: "
                f"{owned} owned + {free} free + {draining} draining + "
                f"{failed} failed != {self.num_clusters}"
            )
