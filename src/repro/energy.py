"""Leakage-energy accounting for cluster disabling.

The paper motivates dynamic cluster allocation partly through energy:
"Entire clusters can turn off their supply voltage, thereby greatly saving
on leakage energy, a technique that would not have been possible in a
monolithic processor", and reports that 8.3 of 16 clusters are disabled on
average.  This module quantifies that: a simple per-cluster-cycle leakage
model plus dynamic per-instruction and per-transfer components, good enough
to rank configurations (it is not a circuit-level power model).

Units are arbitrary "energy units"; only ratios are meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass

from .stats import SimStats


@dataclass(frozen=True)
class EnergyModel:
    """Relative energy coefficients.

    Defaults follow the common rule of thumb for wire-limited deep-submicron
    designs that leakage is a large fraction of total power: one cluster
    leaks 1 unit per cycle while powered; executing an instruction costs 4
    units; moving a value one hop costs 1 unit per hop-cycle.
    """

    cluster_leakage_per_cycle: float = 1.0
    energy_per_instruction: float = 4.0
    energy_per_transfer_cycle: float = 1.0
    #: front-end + caches leak regardless of cluster gating
    uncore_leakage_per_cycle: float = 4.0

    def leakage(self, stats: SimStats) -> float:
        """Leakage of the powered clusters plus the uncore."""
        return (
            self.cluster_leakage_per_cycle * stats.cluster_cycle_product
            + self.uncore_leakage_per_cycle * stats.cycles
        )

    def dynamic(self, stats: SimStats) -> float:
        transfer_cycles = (
            stats.register_transfer_cycles + stats.memory_transfer_cycles
        )
        return (
            self.energy_per_instruction * stats.committed
            + self.energy_per_transfer_cycle * transfer_cycles
        )

    def total(self, stats: SimStats) -> float:
        return self.leakage(stats) + self.dynamic(stats)

    def energy_per_committed_instruction(self, stats: SimStats) -> float:
        if stats.committed == 0:
            return 0.0
        return self.total(stats) / stats.committed


def leakage_savings(stats: SimStats, total_clusters: int) -> float:
    """Fraction of cluster leakage avoided by voltage-gating idle clusters.

    With all clusters always powered, cluster leakage would be
    ``total_clusters * cycles``; the gated machine leaks only for active
    cluster-cycles.
    """
    if stats.cycles == 0 or total_clusters <= 0:
        return 0.0
    full = total_clusters * stats.cycles
    return 1.0 - stats.cluster_cycle_product / full


def compare_energy(
    baseline: SimStats,
    tuned: SimStats,
    total_clusters: int,
    model: EnergyModel = EnergyModel(),
) -> dict:
    """Energy-per-instruction comparison between two runs of the same work."""
    return {
        "baseline_epi": model.energy_per_committed_instruction(baseline),
        "tuned_epi": model.energy_per_committed_instruction(tuned),
        "leakage_savings": leakage_savings(tuned, total_clusters),
        "epi_ratio": (
            model.energy_per_committed_instruction(tuned)
            / model.energy_per_committed_instruction(baseline)
            if baseline.committed and tuned.committed
            else 0.0
        ),
    }
