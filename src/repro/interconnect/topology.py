"""Interconnect topologies.

A topology enumerates *directed* links between clusters and provides the
routed link sequence for any (src, dst) pair.  Section 2.3 of the paper
considers two options:

* a **ring** built from two unidirectional rings (16 clusters -> 32 links,
  worst case 8 hops);
* a 2-D **grid** with XY routing (16 clusters -> 48 links, worst case 6
  hops).
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple


class Topology:
    """Base class: a set of directed links plus a static routing function."""

    def __init__(self, num_nodes: int) -> None:
        if num_nodes < 1:
            raise ValueError("num_nodes must be positive")
        self.num_nodes = num_nodes

    @property
    def num_links(self) -> int:
        raise NotImplementedError

    def route(self, src: int, dst: int) -> Sequence[int]:
        """The directed link ids traversed from ``src`` to ``dst``."""
        raise NotImplementedError

    def link_endpoints(self) -> Dict[int, Tuple[int, int]]:
        """Map each directed link id to its ``(source, destination)`` nodes.

        The invariant checker walks every cached route against this table
        to prove the route is a connected chain of real links; every
        concrete topology must implement it.
        """
        raise NotImplementedError

    def hops(self, src: int, dst: int) -> int:
        return len(self.route(src, dst))

    def max_hops(self) -> int:
        return max(
            self.hops(s, d)
            for s in range(self.num_nodes)
            for d in range(self.num_nodes)
        )

    def _check(self, src: int, dst: int) -> None:
        if not (0 <= src < self.num_nodes and 0 <= dst < self.num_nodes):
            raise ValueError(f"node out of range: {src} -> {dst}")
