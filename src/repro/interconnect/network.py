"""Link-level network model with bandwidth contention.

Each directed link carries ``link_bandwidth`` transfers per cycle.  A
transfer crosses its route hop by hop; at each hop it waits for a free slot
on the link (slots are granted in request order — a monotone next-free-cycle
reservation per link, which is the standard fast approximation) and then
takes ``hop_latency`` cycles to traverse.

The two idealization switches reproduce the paper's communication-cost
breakdown experiments ("assuming zero inter-cluster communication cost for
loads and stores improved performance by 31%, ... for register-to-register
communication by 11%").
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..config import InterconnectConfig
from ..errors import ConfigError
from ..faults import scrambled_topology
from ..stats import SimStats
from ..timing import SlotReserver
from .degraded import DegradedTopology
from .grid import GridTopology
from .hierring import HierRingTopology
from .ring import RingTopology
from .topology import Topology
from .torus import TorusTopology


def build_topology(config: InterconnectConfig, num_nodes: int) -> Topology:
    if config.topology == "ring":
        topology: Topology = RingTopology(num_nodes)
    elif config.topology == "grid":
        topology = GridTopology(num_nodes)
    elif config.topology == "torus":
        topology = TorusTopology(num_nodes)
    elif config.topology == "ring-of-rings":
        topology = HierRingTopology(num_nodes)
    else:
        raise ConfigError(f"unknown topology {config.topology!r}")
    # chaos hook: a no-op dict lookup unless a FaultPlan armed
    # scramble_topology (see repro.faults)
    return scrambled_topology(topology)


class Network:
    """Schedules transfers between clusters over a :class:`Topology`."""

    def __init__(
        self,
        config: InterconnectConfig,
        num_nodes: int,
        stats: Optional[SimStats] = None,
    ) -> None:
        self.config = config
        self.topology = build_topology(config, num_nodes)
        self.stats = stats or SimStats()
        self._links = SlotReserver(
            self.topology.num_links, max(1, config.link_bandwidth)
        )
        #: messages this network scheduled, maintained alongside the stats
        #: counters so the invariant checker can verify conservation (every
        #: scheduled message accounted exactly once in the statistics)
        self.messages_sent = 0
        # idealization/contention switches, hoisted off the transfer hot
        # path (config is fixed for the life of the network)
        self._free_memory = config.free_memory_communication
        self._free_register = config.free_register_communication
        self._contended = config.model_contention
        self._hop_latency = config.hop_latency
        #: link-fault state (see :mod:`repro.resilience`): the healthy
        #: topology is kept; ``topology`` swaps to a rerouted
        #: :class:`DegradedTopology` view only while severs exist
        self._base_topology = self.topology
        self._dead_links: Set[int] = set()
        #: directed link id -> degraded traversal latency (replaces
        #: ``hop_latency`` on that link)
        self._degraded_links: Dict[int, int] = {}
        #: per-link latency table, or None while all links are healthy
        #: (the hot paths branch on this one reference)
        self._link_latency: Optional[List[int]] = None

    def reset_contention(self) -> None:
        """Forget all link reservations (used when the pipeline is flushed)."""
        self._links.reset()

    # -- link faults (driven by repro.resilience.FaultManager) ---------

    @property
    def is_degraded(self) -> bool:
        return bool(self._dead_links or self._degraded_links)

    def _wire_links(self, src: int, dst: int) -> List[int]:
        """Both directed link ids of the physical wire between two nodes."""
        found = [
            link
            for link, ends in self._base_topology.link_endpoints().items()
            if ends == (src, dst) or ends == (dst, src)
        ]
        return sorted(found)

    def require_link(self, src: int, dst: int) -> None:
        """Raise unless a physical link joins ``src`` and ``dst``."""
        if not self._wire_links(src, dst):
            raise ConfigError(
                f"no {self.config.topology} link joins clusters {src} and "
                f"{dst}; link faults must name physical neighbours"
            )

    def sever_link(self, src: int, dst: int) -> bool:
        """Remove the wire from routing; False if already severed."""
        links = self._wire_links(src, dst)
        if not links:
            raise ConfigError(f"no link joins clusters {src} and {dst}")
        if set(links) <= self._dead_links:
            return False
        self._dead_links.update(links)
        self._rebuild()
        return True

    def degrade_link(self, src: int, dst: int, factor: int) -> bool:
        """Multiply the wire's traversal latency; False if unchanged."""
        links = self._wire_links(src, dst)
        if not links:
            raise ConfigError(f"no link joins clusters {src} and {dst}")
        latency = self.config.hop_latency * factor
        changed = False
        for link in links:
            if self._degraded_links.get(link) != latency:
                self._degraded_links[link] = latency
                changed = True
        if changed:
            self._rebuild()
        return changed

    def restore_link(self, src: int, dst: int) -> bool:
        """Undo sever/degrade on the wire; False if it was healthy."""
        links = self._wire_links(src, dst)
        if not links:
            raise ConfigError(f"no link joins clusters {src} and {dst}")
        changed = False
        for link in links:
            if link in self._dead_links:
                self._dead_links.discard(link)
                changed = True
            if self._degraded_links.pop(link, None) is not None:
                changed = True
        if changed:
            self._rebuild()
        return changed

    def _rebuild(self) -> None:
        """Re-derive the routing view and latency table from fault state."""
        if self._dead_links:
            self.topology = DegradedTopology(
                self._base_topology, self._dead_links
            )
        else:
            self.topology = self._base_topology
        if self._degraded_links:
            table = [self.config.hop_latency] * self._base_topology.num_links
            for link, latency in self._degraded_links.items():
                table[link] = latency
            self._link_latency = table
        else:
            self._link_latency = None

    # -- latency -------------------------------------------------------

    def hops(self, src: int, dst: int) -> int:
        return self.topology.hops(src, dst)

    def uncontended_latency(self, src: int, dst: int) -> int:
        table = self._link_latency
        if table is None:
            return self.topology.hops(src, dst) * self._hop_latency
        return sum(table[link] for link in self.topology.route(src, dst))

    def transfer(
        self, src: int, dst: int, start_cycle: int, kind: str = "register"
    ) -> int:
        """Schedule one transfer; returns the arrival cycle at ``dst``.

        ``kind`` is "register" or "memory" and selects both the statistics
        bucket and the idealization switch that may zero the cost.
        """
        if src == dst:
            return start_cycle
        memory_kind = kind == "memory"
        if memory_kind:
            if self._free_memory:
                return start_cycle
        elif self._free_register:
            return start_cycle

        if self._contended:
            ready = start_cycle
            reserve = self._links.reserve
            table = self._link_latency
            if table is None:
                hop_latency = self._hop_latency
                for link in self.topology.route(src, dst):
                    ready = reserve(link, ready) + hop_latency
            else:
                for link in self.topology.route(src, dst):
                    ready = reserve(link, ready) + table[link]
            arrival = ready
        else:
            arrival = start_cycle + self.uncontended_latency(src, dst)

        latency = arrival - start_cycle
        self.messages_sent += 1
        stats = self.stats
        if memory_kind:
            stats.memory_transfers += 1
            stats.memory_transfer_cycles += latency
        else:
            stats.register_transfers += 1
            stats.register_transfer_cycles += latency
        return arrival

    def broadcast_arrivals(
        self, src: int, start_cycle: int, kind: str = "memory"
    ) -> Dict[int, int]:
        """Send one message to every other cluster; returns per-node arrival.

        Used for the store-address broadcast of the decentralized LSQ
        (Section 5), which the paper notes increases interconnect traffic.
        On the ring the broadcast *circulates*: one copy travels clockwise
        and one counter-clockwise, each link forwarding the message once —
        not N-1 independent point-to-point transfers.  Other topologies fall
        back to per-destination transfers.
        """
        n = self.topology.num_nodes
        arrivals: Dict[int, int] = {src: start_cycle}
        if kind == "memory" and self.config.free_memory_communication:
            return {k: start_cycle for k in range(n)}
        # the circulating fast path assumes the intact ring with uniform
        # link latency; any link fault falls back to per-destination
        # transfers (a sever also swaps in DegradedTopology, failing the
        # isinstance check)
        if (
            isinstance(self.topology, RingTopology)
            and self._link_latency is None
            and n > 1
        ):
            hop = self.config.hop_latency
            contend = self.config.model_contention
            for direction, link_of in (
                (1, lambda node: node),  # clockwise link id == source node
                (-1, lambda node: n + node),  # ccw link id == N + source node
            ):
                node = src
                ready = start_cycle
                steps = n // 2 if direction == 1 else (n - 1) // 2
                for _ in range(steps):
                    if contend:
                        ready = self._links.reserve(link_of(node), ready) + hop
                    else:
                        ready += hop
                    node = (node + direction) % n
                    arrivals[node] = min(arrivals.get(node, ready), ready)
                    self.messages_sent += 1
                    self.stats.memory_transfers += 1
                    self.stats.memory_transfer_cycles += ready - start_cycle
            return arrivals
        for dst in range(n):
            if dst != src:
                arrivals[dst] = self.transfer(src, dst, start_cycle, kind)
        return arrivals

    def broadcast(self, src: int, start_cycle: int, kind: str = "memory") -> int:
        """Broadcast and return the worst-case arrival cycle."""
        return max(self.broadcast_arrivals(src, start_cycle, kind).values())
