"""Link-level network model with bandwidth contention.

Each directed link carries ``link_bandwidth`` transfers per cycle.  A
transfer crosses its route hop by hop; at each hop it waits for a free slot
on the link (slots are granted in request order — a monotone next-free-cycle
reservation per link, which is the standard fast approximation) and then
takes ``hop_latency`` cycles to traverse.

The two idealization switches reproduce the paper's communication-cost
breakdown experiments ("assuming zero inter-cluster communication cost for
loads and stores improved performance by 31%, ... for register-to-register
communication by 11%").
"""

from __future__ import annotations

from typing import Dict, Optional

from ..config import InterconnectConfig
from ..errors import ConfigError
from ..faults import scrambled_topology
from ..stats import SimStats
from ..timing import SlotReserver
from .grid import GridTopology
from .hierring import HierRingTopology
from .ring import RingTopology
from .topology import Topology
from .torus import TorusTopology


def build_topology(config: InterconnectConfig, num_nodes: int) -> Topology:
    if config.topology == "ring":
        topology: Topology = RingTopology(num_nodes)
    elif config.topology == "grid":
        topology = GridTopology(num_nodes)
    elif config.topology == "torus":
        topology = TorusTopology(num_nodes)
    elif config.topology == "ring-of-rings":
        topology = HierRingTopology(num_nodes)
    else:
        raise ConfigError(f"unknown topology {config.topology!r}")
    # chaos hook: a no-op dict lookup unless a FaultPlan armed
    # scramble_topology (see repro.faults)
    return scrambled_topology(topology)


class Network:
    """Schedules transfers between clusters over a :class:`Topology`."""

    def __init__(
        self,
        config: InterconnectConfig,
        num_nodes: int,
        stats: Optional[SimStats] = None,
    ) -> None:
        self.config = config
        self.topology = build_topology(config, num_nodes)
        self.stats = stats or SimStats()
        self._links = SlotReserver(
            self.topology.num_links, max(1, config.link_bandwidth)
        )
        #: messages this network scheduled, maintained alongside the stats
        #: counters so the invariant checker can verify conservation (every
        #: scheduled message accounted exactly once in the statistics)
        self.messages_sent = 0

    def reset_contention(self) -> None:
        """Forget all link reservations (used when the pipeline is flushed)."""
        self._links.reset()

    def hops(self, src: int, dst: int) -> int:
        return self.topology.hops(src, dst)

    def uncontended_latency(self, src: int, dst: int) -> int:
        return self.topology.hops(src, dst) * self.config.hop_latency

    def transfer(
        self, src: int, dst: int, start_cycle: int, kind: str = "register"
    ) -> int:
        """Schedule one transfer; returns the arrival cycle at ``dst``.

        ``kind`` is "register" or "memory" and selects both the statistics
        bucket and the idealization switch that may zero the cost.
        """
        if src == dst:
            return start_cycle
        cfg = self.config
        memory_kind = kind == "memory"
        if memory_kind:
            if cfg.free_memory_communication:
                return start_cycle
        elif cfg.free_register_communication:
            return start_cycle

        if cfg.model_contention:
            ready = start_cycle
            reserve = self._links.reserve
            hop_latency = cfg.hop_latency
            for link in self.topology.route(src, dst):
                ready = reserve(link, ready) + hop_latency
            arrival = ready
        else:
            arrival = start_cycle + self.uncontended_latency(src, dst)

        latency = arrival - start_cycle
        self.messages_sent += 1
        stats = self.stats
        if memory_kind:
            stats.memory_transfers += 1
            stats.memory_transfer_cycles += latency
        else:
            stats.register_transfers += 1
            stats.register_transfer_cycles += latency
        return arrival

    def broadcast_arrivals(
        self, src: int, start_cycle: int, kind: str = "memory"
    ) -> Dict[int, int]:
        """Send one message to every other cluster; returns per-node arrival.

        Used for the store-address broadcast of the decentralized LSQ
        (Section 5), which the paper notes increases interconnect traffic.
        On the ring the broadcast *circulates*: one copy travels clockwise
        and one counter-clockwise, each link forwarding the message once —
        not N-1 independent point-to-point transfers.  Other topologies fall
        back to per-destination transfers.
        """
        n = self.topology.num_nodes
        arrivals: Dict[int, int] = {src: start_cycle}
        if kind == "memory" and self.config.free_memory_communication:
            return {k: start_cycle for k in range(n)}
        if isinstance(self.topology, RingTopology) and n > 1:
            hop = self.config.hop_latency
            contend = self.config.model_contention
            for direction, link_of in (
                (1, lambda node: node),  # clockwise link id == source node
                (-1, lambda node: n + node),  # ccw link id == N + source node
            ):
                node = src
                ready = start_cycle
                steps = n // 2 if direction == 1 else (n - 1) // 2
                for _ in range(steps):
                    if contend:
                        ready = self._links.reserve(link_of(node), ready) + hop
                    else:
                        ready += hop
                    node = (node + direction) % n
                    arrivals[node] = min(arrivals.get(node, ready), ready)
                    self.messages_sent += 1
                    self.stats.memory_transfers += 1
                    self.stats.memory_transfer_cycles += ready - start_cycle
            return arrivals
        for dst in range(n):
            if dst != src:
                arrivals[dst] = self.transfer(src, dst, start_cycle, kind)
        return arrivals

    def broadcast(self, src: int, start_cycle: int, kind: str = "memory") -> int:
        """Broadcast and return the worst-case arrival cycle."""
        return max(self.broadcast_arrivals(src, start_cycle, kind).values())
