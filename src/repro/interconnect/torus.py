"""2-D torus interconnect: a grid with wraparound links in both dimensions.

The multiprogramming experiments need a fabric where every cluster sees a
symmetric neighbourhood — on the open grid the corner clusters are
strictly worse real estate, which biases the comparison between
allocation arbiters.  The torus closes the grid edges, halving the
worst-case distance of each dimension (a 4x4 torus has 64 directed links
and a maximum distance of 4 hops) while keeping the deadlock-free
dimension-ordered routing discipline.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

from .topology import Topology


class TorusTopology(Topology):
    """Clusters in a 2-D wraparound array; each connects to four
    neighbours (two when a dimension has only two nodes, where the
    +1 and -1 neighbours coincide).

    Messages route X first, then Y, taking the shorter wrap direction in
    each dimension independently; ties go in the increasing-index
    direction so routing is fully deterministic.
    """

    def __init__(self, num_nodes: int, cols: int = 0) -> None:
        super().__init__(num_nodes)
        if cols <= 0:
            cols = int(round(math.sqrt(num_nodes)))
            cols = max(1, cols)
            while num_nodes % cols != 0:
                cols -= 1
        if num_nodes % cols != 0:
            raise ValueError(
                f"{num_nodes} nodes do not fill a torus of {cols} columns"
            )
        self.cols = cols
        self.rows = num_nodes // cols
        self._link_ids: Dict[Tuple[int, int], int] = {}
        for node in range(num_nodes):
            r, c = divmod(node, cols)
            for dr, dc in ((0, 1), (0, -1), (1, 0), (-1, 0)):
                nr = (r + dr) % self.rows
                nc = (c + dc) % self.cols
                neighbour = nr * cols + nc
                if neighbour != node:
                    self._link_ids.setdefault(
                        (node, neighbour), len(self._link_ids)
                    )
        self._route_cache: List[List[Sequence[int]]] = [
            [self._compute_route(s, d) for d in range(num_nodes)]
            for s in range(num_nodes)
        ]

    @property
    def num_links(self) -> int:
        return len(self._link_ids)

    @staticmethod
    def _wrap_step(at: int, to: int, size: int) -> int:
        """The per-step direction (+1/-1) of the shorter wrap, ties +1."""
        forward = (to - at) % size
        backward = (at - to) % size
        return 1 if forward <= backward else -1

    def _compute_route(self, src: int, dst: int) -> Sequence[int]:
        links: List[int] = []
        r, c = divmod(src, self.cols)
        dr, dc = divmod(dst, self.cols)
        node = src
        while c != dc:
            step = self._wrap_step(c, dc, self.cols)
            nc = (c + step) % self.cols
            nxt = r * self.cols + nc
            links.append(self._link_ids[(node, nxt)])
            node = nxt
            c = nc
        while r != dr:
            step = self._wrap_step(r, dr, self.rows)
            nr = (r + step) % self.rows
            nxt = nr * self.cols + c
            links.append(self._link_ids[(node, nxt)])
            node = nxt
            r = nr
        return tuple(links)

    def route(self, src: int, dst: int) -> Sequence[int]:
        self._check(src, dst)
        return self._route_cache[src][dst]

    def hops(self, src: int, dst: int) -> int:
        self._check(src, dst)
        r, c = divmod(src, self.cols)
        dr, dc = divmod(dst, self.cols)
        row_hops = min((dr - r) % self.rows, (r - dr) % self.rows)
        col_hops = min((dc - c) % self.cols, (c - dc) % self.cols)
        return row_hops + col_hops

    def link_endpoints(self) -> Dict[int, Tuple[int, int]]:
        return {link: ends for ends, link in self._link_ids.items()}
