"""Inter-cluster interconnect: topologies and the contention-aware network."""

from .grid import GridTopology
from .hierring import HierRingTopology
from .network import Network, build_topology
from .ring import RingTopology
from .topology import Topology
from .torus import TorusTopology

__all__ = [
    "GridTopology",
    "HierRingTopology",
    "Network",
    "RingTopology",
    "Topology",
    "TorusTopology",
    "build_topology",
]
