"""Inter-cluster interconnect: topologies and the contention-aware network."""

from .grid import GridTopology
from .network import Network, build_topology
from .ring import RingTopology
from .topology import Topology

__all__ = ["GridTopology", "Network", "RingTopology", "Topology", "build_topology"]
