"""Rerouted topology view after link-sever faults.

A :class:`DegradedTopology` wraps a healthy base topology minus a set of
severed directed links, and recomputes *all* routes as BFS shortest paths
over the surviving links.  The base link-id space is preserved (severed
ids simply go unused), so the network's per-link contention state carries
over unchanged across a sever.

Routing a pair with no surviving path raises
:class:`~repro.errors.UnreachableCluster` — a partitioned fabric is an
unsurvivable fault for this machine model (every cluster must reach the
home cluster's front end and L2), and inventing a latency would silently
corrupt every downstream statistic.

Determinism: adjacency lists are ordered by link id and BFS expands
nodes in insertion order, so equal-length route ties always resolve the
same way on every platform.
"""

from __future__ import annotations

from typing import Dict, Sequence, Set, Tuple

from ..errors import UnreachableCluster
from .topology import Topology


class DegradedTopology(Topology):
    """``base`` minus ``dead_links``, rerouted (see module docstring)."""

    def __init__(self, base: Topology, dead_links: Set[int]) -> None:
        super().__init__(base.num_nodes)
        self.base = base
        self._endpoints: Dict[int, Tuple[int, int]] = {
            link: ends
            for link, ends in base.link_endpoints().items()
            if link not in dead_links
        }
        adjacency: Dict[int, list] = {n: [] for n in range(self.num_nodes)}
        for link, (src, dst) in sorted(self._endpoints.items()):
            adjacency[src].append((dst, link))
        self._routes: Dict[Tuple[int, int], Tuple[int, ...]] = {}
        for src in range(self.num_nodes):
            prev: Dict[int, Tuple[int, int]] = {src: (-1, -1)}
            frontier = [src]
            while frontier:
                nxt = []
                for node in frontier:
                    for neighbour, link in adjacency[node]:
                        if neighbour not in prev:
                            prev[neighbour] = (node, link)
                            nxt.append(neighbour)
                frontier = nxt
            for dst in prev:
                if dst == src:
                    continue
                path = []
                node = dst
                while node != src:
                    node, link = prev[node]
                    path.append(link)
                self._routes[(src, dst)] = tuple(reversed(path))

    @property
    def num_links(self) -> int:
        # the base id space: severed ids go unused but stay allocated, so
        # the network's per-link contention reservations survive a sever
        return self.base.num_links

    def route(self, src: int, dst: int) -> Sequence[int]:
        self._check(src, dst)
        if src == dst:
            return ()
        found = self._routes.get((src, dst))
        if found is None:
            raise UnreachableCluster(
                f"no surviving route from cluster {src} to {dst}: link "
                "faults have partitioned the interconnect"
            )
        return found

    def link_endpoints(self) -> Dict[int, Tuple[int, int]]:
        return dict(self._endpoints)
