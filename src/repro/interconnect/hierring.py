"""Hierarchical ring-of-rings interconnect.

Clusters are partitioned into groups; each group is a small dual
unidirectional ring (as in :class:`~repro.interconnect.ring.RingTopology`)
and the first node of every group doubles as that group's *hub*.  The
hubs themselves form a dual unidirectional global ring.  A cross-group
message therefore travels local ring -> hub -> global ring -> hub ->
local ring, which rewards allocators that keep a thread's clusters inside
one group: intra-group traffic never touches the contended global ring.

For 16 clusters in groups of 4 this gives 40 directed links and a
maximum distance of 6 hops — between the flat ring (32 links, 8 hops)
and the grid (48 links, 6 hops), but with a much sharper locality cliff.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

from .topology import Topology


def _ring_path(start: int, stop: int, size: int) -> List[Tuple[int, int]]:
    """The (position, direction) steps of the shorter way round a ring.

    Positions are ring-local indices; ``direction`` is +1 (clockwise) or
    -1, with ties going clockwise as in :class:`RingTopology`.
    """
    cw = (stop - start) % size
    ccw = (start - stop) % size
    steps: List[Tuple[int, int]] = []
    position = start
    if cw <= ccw:
        for _ in range(cw):
            steps.append((position, 1))
            position = (position + 1) % size
    else:
        for _ in range(ccw):
            steps.append((position, -1))
            position = (position - 1) % size
    return steps


class HierRingTopology(Topology):
    """Ring of rings: local group rings bridged by a global hub ring.

    ``group`` is the local ring size; it must divide ``num_nodes`` and
    defaults to the divisor nearest ``sqrt(num_nodes)`` so 16 clusters
    form 4 groups of 4.  Node ``g * group`` is group ``g``'s hub.
    """

    def __init__(self, num_nodes: int, group: int = 0) -> None:
        super().__init__(num_nodes)
        if group <= 0:
            group = int(round(math.sqrt(num_nodes)))
            group = max(1, group)
            while num_nodes % group != 0:
                group -= 1
        if num_nodes % group != 0:
            raise ValueError(
                f"{num_nodes} nodes do not fill rings of {group}"
            )
        self.group = group
        self.num_groups = num_nodes // group
        self._link_ids: Dict[Tuple[int, int], int] = {}
        # local rings first (deterministic: group order, cw then ccw)
        if group > 1:
            for g in range(self.num_groups):
                base = g * group
                for i in range(group):
                    self._add(base + i, base + (i + 1) % group)
                for i in range(group):
                    self._add(base + i, base + (i - 1) % group)
        # then the global hub ring
        if self.num_groups > 1:
            for g in range(self.num_groups):
                self._add(g * group, ((g + 1) % self.num_groups) * group)
            for g in range(self.num_groups):
                self._add(g * group, ((g - 1) % self.num_groups) * group)
        self._route_cache: List[List[Sequence[int]]] = [
            [self._compute_route(s, d) for d in range(num_nodes)]
            for s in range(num_nodes)
        ]

    def _add(self, src: int, dst: int) -> None:
        if src != dst:
            self._link_ids.setdefault((src, dst), len(self._link_ids))

    @property
    def num_links(self) -> int:
        return len(self._link_ids)

    def hub(self, node: int) -> int:
        """The hub node of ``node``'s group."""
        return (node // self.group) * self.group

    def _local_links(self, src: int, dst: int) -> List[int]:
        """Links along the local ring between two same-group nodes."""
        base = self.hub(src)
        links: List[int] = []
        for position, direction in _ring_path(
            src - base, dst - base, self.group
        ):
            node = base + position
            nxt = base + (position + direction) % self.group
            links.append(self._link_ids[(node, nxt)])
        return links

    def _global_links(self, src_hub: int, dst_hub: int) -> List[int]:
        """Links along the hub ring between two hub nodes."""
        links: List[int] = []
        for position, direction in _ring_path(
            src_hub // self.group, dst_hub // self.group, self.num_groups
        ):
            node = position * self.group
            nxt = ((position + direction) % self.num_groups) * self.group
            links.append(self._link_ids[(node, nxt)])
        return links

    def _compute_route(self, src: int, dst: int) -> Sequence[int]:
        if src == dst:
            return ()
        src_hub, dst_hub = self.hub(src), self.hub(dst)
        if src_hub == dst_hub:
            return tuple(self._local_links(src, dst))
        return tuple(
            self._local_links(src, src_hub)
            + self._global_links(src_hub, dst_hub)
            + self._local_links(dst_hub, dst)
        )

    def route(self, src: int, dst: int) -> Sequence[int]:
        self._check(src, dst)
        return self._route_cache[src][dst]

    def link_endpoints(self) -> Dict[int, Tuple[int, int]]:
        return {link: ends for ends, link in self._link_ids.items()}
