"""Dual unidirectional ring interconnect (the paper's primary topology)."""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from .topology import Topology


class RingTopology(Topology):
    """Two unidirectional rings.

    Clockwise link ``i`` connects node ``i`` to ``(i+1) % N`` and has id
    ``i``; counter-clockwise link ``i`` connects node ``i`` to ``(i-1) % N``
    and has id ``N + i``.  A 16-node ring therefore has 32 directed links and
    a maximum distance of 8 hops, exactly as in Section 2.3.

    Routing takes the direction with fewer hops (ties go clockwise).
    """

    def __init__(self, num_nodes: int) -> None:
        super().__init__(num_nodes)
        self._route_cache: List[List[Sequence[int]]] = [
            [self._compute_route(s, d) for d in range(num_nodes)]
            for s in range(num_nodes)
        ]

    @property
    def num_links(self) -> int:
        return 2 * self.num_nodes

    def _compute_route(self, src: int, dst: int) -> Sequence[int]:
        n = self.num_nodes
        cw = (dst - src) % n
        ccw = (src - dst) % n
        links: List[int] = []
        if cw <= ccw:
            node = src
            for _ in range(cw):
                links.append(node)  # clockwise link id == source node
                node = (node + 1) % n
        else:
            node = src
            for _ in range(ccw):
                links.append(n + node)  # ccw link id == N + source node
                node = (node - 1) % n
        return tuple(links)

    def route(self, src: int, dst: int) -> Sequence[int]:
        self._check(src, dst)
        return self._route_cache[src][dst]

    def hops(self, src: int, dst: int) -> int:
        self._check(src, dst)
        n = self.num_nodes
        cw = (dst - src) % n
        ccw = (src - dst) % n
        return min(cw, ccw)

    def link_endpoints(self) -> Dict[int, Tuple[int, int]]:
        n = self.num_nodes
        endpoints = {i: (i, (i + 1) % n) for i in range(n)}
        endpoints.update({n + i: (i, (i - 1) % n) for i in range(n)})
        return endpoints
