"""2-D grid interconnect with XY (dimension-ordered) routing (Section 6)."""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

from .topology import Topology


class GridTopology(Topology):
    """Clusters laid out in a 2-D array; each connects to up to four
    neighbours.  A 4x4 grid has 24 undirected edges = 48 directed links and
    a maximum distance of 6 hops, matching the paper.

    Messages route X first, then Y (deadlock-free dimension-ordered
    routing).
    """

    def __init__(self, num_nodes: int, cols: int = 0) -> None:
        super().__init__(num_nodes)
        if cols <= 0:
            cols = int(round(math.sqrt(num_nodes)))
            cols = max(1, cols)
            while num_nodes % cols != 0:
                cols -= 1
        if num_nodes % cols != 0:
            raise ValueError(f"{num_nodes} nodes do not fill a grid of {cols} columns")
        self.cols = cols
        self.rows = num_nodes // cols
        self._link_ids: Dict[Tuple[int, int], int] = {}
        for node in range(num_nodes):
            r, c = divmod(node, cols)
            for dr, dc in ((0, 1), (0, -1), (1, 0), (-1, 0)):
                nr, nc = r + dr, c + dc
                if 0 <= nr < self.rows and 0 <= nc < self.cols:
                    neighbour = nr * cols + nc
                    self._link_ids[(node, neighbour)] = len(self._link_ids)
        self._route_cache: List[List[Sequence[int]]] = [
            [self._compute_route(s, d) for d in range(num_nodes)]
            for s in range(num_nodes)
        ]

    @property
    def num_links(self) -> int:
        return len(self._link_ids)

    def _compute_route(self, src: int, dst: int) -> Sequence[int]:
        links: List[int] = []
        r, c = divmod(src, self.cols)
        dr, dc = divmod(dst, self.cols)
        node = src
        while c != dc:
            step = 1 if dc > c else -1
            nxt = node + step
            links.append(self._link_ids[(node, nxt)])
            node = nxt
            c += step
        while r != dr:
            step = 1 if dr > r else -1
            nxt = node + step * self.cols
            links.append(self._link_ids[(node, nxt)])
            node = nxt
            r += step
        return tuple(links)

    def route(self, src: int, dst: int) -> Sequence[int]:
        self._check(src, dst)
        return self._route_cache[src][dst]

    def hops(self, src: int, dst: int) -> int:
        self._check(src, dst)
        r, c = divmod(src, self.cols)
        dr, dc = divmod(dst, self.cols)
        return abs(r - dr) + abs(c - dc)

    def link_endpoints(self) -> Dict[int, Tuple[int, int]]:
        return {link: ends for ends, link in self._link_ids.items()}
