"""repro — reproduction of "Dynamically Managing the Communication-
Parallelism Trade-off in Future Clustered Processors" (ISCA 2003).

Public API tour (the stable facade lives in :mod:`repro.api`):

>>> from repro import simulate
>>> result = simulate("gzip", trace_length=20_000, seed=1)
>>> 0.0 < result.ipc <= 16.0
True

Dynamic reconfiguration (the paper's contribution):

>>> result = simulate("swim", trace_length=20_000, reconfig_policy="explore")  # doctest: +SKIP

Matrices of runs fan out over worker processes with caching and
checkpointing:

>>> from repro import SimSpec, sweep
>>> outcome = sweep([SimSpec("gzip", reconfig_policy=f"static-{n}")
...                  for n in (4, 16)], jobs=2)  # doctest: +SKIP

The re-exports below resolve lazily (PEP 562): ``import repro`` pays for
nothing until an attribute is touched, and standalone tooling that lives
under this package — ``python -m repro.analysis`` in particular — keeps
working even when the simulator stack itself cannot import (that linter's
whole job is diagnosing such trees).
"""

from importlib import import_module

from ._version import __version__ as __version__

#: public name -> defining submodule (relative to this package)
_EXPORTS = {
    "MultiProgResult": ".api",
    "MultiProgSpec": ".api",
    "SimResult": ".api",
    "SimSpec": ".api",
    "SweepResult": ".api",
    "simulate": ".api",
    "sweep": ".api",
    "SweepConfig": ".experiments.sweep",
    "CacheConfig": ".config",
    "ClusterConfig": ".config",
    "FrontEndConfig": ".config",
    "InterconnectConfig": ".config",
    "MemoryConfig": ".config",
    "ProcessorConfig": ".config",
    "centralized_cache": ".config",
    "decentralized_cache": ".config",
    "decentralized_config": ".config",
    "default_config": ".config",
    "grid_config": ".config",
    "monolithic_config": ".config",
    "ring_of_rings_config": ".config",
    "torus_config": ".config",
    "run_multiprog": ".multiprog",
    "DistantILPController": ".core",
    "ExploreConfig": ".core",
    "FineGrainConfig": ".core",
    "FineGrainController": ".core",
    "IntervalExploreController": ".core",
    "NoExploreConfig": ".core",
    "ReconfigurationController": ".core",
    "StaticController": ".core",
    "SubroutineController": ".core",
    "instability_factor": ".core",
    "instability_profile": ".core",
    "record_intervals": ".core",
    "EnergyModel": ".energy",
    "compare_energy": ".energy",
    "leakage_savings": ".energy",
    "ConfigError": ".errors",
    "ReproError": ".errors",
    "SimulationError": ".errors",
    "WorkloadError": ".errors",
    "FaultEvent": ".resilience",
    "FaultSchedule": ".resilience",
    "JsonlTracer": ".observability",
    "MemoryTracer": ".observability",
    "TraceSession": ".observability",
    "Tracer": ".observability",
    "ScalingCurve": ".partition",
    "best_partition": ".partition",
    "measure_scaling": ".partition",
    "partition_report": ".partition",
    "ClusteredProcessor": ".pipeline",
    "simulate_monolithic": ".pipeline",
    "IntervalRecord": ".stats",
    "IntervalWindow": ".stats",
    "SimStats": ".stats",
    "BENCHMARK_NAMES": ".workloads",
    "PAPER_TABLE3": ".workloads",
    "PAPER_TABLE4": ".workloads",
    "Profile": ".workloads",
    "Trace": ".workloads",
    "all_profiles": ".workloads",
    "generate_trace": ".workloads",
    "get_profile": ".workloads",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name):
    origin = _EXPORTS.get(name)
    if origin is not None:
        value = getattr(import_module(origin, __name__), name)
    else:
        # plain submodule access (repro.api, repro.experiments, ...)
        try:
            value = import_module(f".{name}", __name__)
        except ImportError as exc:
            raise AttributeError(
                f"module {__name__!r} has no attribute {name!r}"
            ) from exc
    globals()[name] = value  # cache: __getattr__ runs once per name
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
