"""repro — reproduction of "Dynamically Managing the Communication-
Parallelism Trade-off in Future Clustered Processors" (ISCA 2003).

Public API tour:

>>> from repro import get_profile, generate_trace, default_config, simulate
>>> trace = generate_trace(get_profile("gzip"), length=20_000, seed=1)
>>> stats = simulate(trace, default_config(num_clusters=16))
>>> round(stats.ipc, 2)  # doctest: +SKIP
1.7

Dynamic reconfiguration (the paper's contribution):

>>> from repro import IntervalExploreController, ExploreConfig
>>> controller = IntervalExploreController(ExploreConfig.scaled())
>>> stats = simulate(trace, default_config(), controller)  # doctest: +SKIP
"""

from .config import (
    CacheConfig,
    ClusterConfig,
    FrontEndConfig,
    InterconnectConfig,
    MemoryConfig,
    ProcessorConfig,
    centralized_cache,
    decentralized_cache,
    decentralized_config,
    default_config,
    grid_config,
    monolithic_config,
)
from .core import (
    DistantILPController,
    ExploreConfig,
    FineGrainConfig,
    FineGrainController,
    IntervalExploreController,
    NoExploreConfig,
    ReconfigurationController,
    StaticController,
    SubroutineController,
    instability_factor,
    instability_profile,
    record_intervals,
)
from .energy import EnergyModel, compare_energy, leakage_savings
from .errors import ConfigError, ReproError, SimulationError, WorkloadError
from .partition import ScalingCurve, best_partition, measure_scaling, partition_report
from .pipeline import ClusteredProcessor, simulate, simulate_monolithic
from .stats import IntervalRecord, IntervalWindow, SimStats
from .workloads import (
    BENCHMARK_NAMES,
    PAPER_TABLE3,
    PAPER_TABLE4,
    Profile,
    Trace,
    all_profiles,
    generate_trace,
    get_profile,
)

__version__ = "1.0.0"

__all__ = [
    "BENCHMARK_NAMES",
    "CacheConfig",
    "ClusterConfig",
    "ClusteredProcessor",
    "ConfigError",
    "EnergyModel",
    "DistantILPController",
    "ExploreConfig",
    "FineGrainConfig",
    "FineGrainController",
    "FrontEndConfig",
    "InterconnectConfig",
    "IntervalExploreController",
    "IntervalRecord",
    "IntervalWindow",
    "MemoryConfig",
    "NoExploreConfig",
    "PAPER_TABLE3",
    "PAPER_TABLE4",
    "ProcessorConfig",
    "Profile",
    "ScalingCurve",
    "ReconfigurationController",
    "ReproError",
    "SimStats",
    "SimulationError",
    "StaticController",
    "SubroutineController",
    "Trace",
    "WorkloadError",
    "all_profiles",
    "best_partition",
    "centralized_cache",
    "compare_energy",
    "decentralized_cache",
    "decentralized_config",
    "default_config",
    "generate_trace",
    "get_profile",
    "grid_config",
    "instability_factor",
    "leakage_savings",
    "instability_profile",
    "measure_scaling",
    "monolithic_config",
    "partition_report",
    "record_intervals",
    "simulate",
    "simulate_monolithic",
]
