"""repro — reproduction of "Dynamically Managing the Communication-
Parallelism Trade-off in Future Clustered Processors" (ISCA 2003).

Public API tour (the stable facade lives in :mod:`repro.api`):

>>> from repro import simulate
>>> result = simulate("gzip", trace_length=20_000, seed=1)
>>> 0.0 < result.ipc <= 16.0
True

Dynamic reconfiguration (the paper's contribution):

>>> result = simulate("swim", trace_length=20_000, reconfig_policy="explore")  # doctest: +SKIP

Matrices of runs fan out over worker processes with caching and
checkpointing:

>>> from repro import SimSpec, sweep
>>> outcome = sweep([SimSpec("gzip", reconfig_policy=f"static-{n}")
...                  for n in (4, 16)], jobs=2)  # doctest: +SKIP
"""

from .api import SimResult, SimSpec, SweepResult, simulate, sweep
from .config import (
    CacheConfig,
    ClusterConfig,
    FrontEndConfig,
    InterconnectConfig,
    MemoryConfig,
    ProcessorConfig,
    centralized_cache,
    decentralized_cache,
    decentralized_config,
    default_config,
    grid_config,
    monolithic_config,
)
from .core import (
    DistantILPController,
    ExploreConfig,
    FineGrainConfig,
    FineGrainController,
    IntervalExploreController,
    NoExploreConfig,
    ReconfigurationController,
    StaticController,
    SubroutineController,
    instability_factor,
    instability_profile,
    record_intervals,
)
from .energy import EnergyModel, compare_energy, leakage_savings
from .errors import ConfigError, ReproError, SimulationError, WorkloadError
from .partition import ScalingCurve, best_partition, measure_scaling, partition_report
from .pipeline import ClusteredProcessor, simulate_monolithic
from .stats import IntervalRecord, IntervalWindow, SimStats
from .workloads import (
    BENCHMARK_NAMES,
    PAPER_TABLE3,
    PAPER_TABLE4,
    Profile,
    Trace,
    all_profiles,
    generate_trace,
    get_profile,
)

__version__ = "1.0.0"

__all__ = [
    "BENCHMARK_NAMES",
    "CacheConfig",
    "ClusterConfig",
    "ClusteredProcessor",
    "ConfigError",
    "EnergyModel",
    "DistantILPController",
    "ExploreConfig",
    "FineGrainConfig",
    "FineGrainController",
    "FrontEndConfig",
    "InterconnectConfig",
    "IntervalExploreController",
    "IntervalRecord",
    "IntervalWindow",
    "MemoryConfig",
    "NoExploreConfig",
    "PAPER_TABLE3",
    "PAPER_TABLE4",
    "ProcessorConfig",
    "Profile",
    "ScalingCurve",
    "ReconfigurationController",
    "ReproError",
    "SimResult",
    "SimSpec",
    "SimStats",
    "SimulationError",
    "StaticController",
    "SubroutineController",
    "SweepResult",
    "Trace",
    "WorkloadError",
    "all_profiles",
    "best_partition",
    "centralized_cache",
    "compare_energy",
    "decentralized_cache",
    "decentralized_config",
    "default_config",
    "generate_trace",
    "get_profile",
    "grid_config",
    "instability_factor",
    "leakage_savings",
    "instability_profile",
    "measure_scaling",
    "monolithic_config",
    "partition_report",
    "record_intervals",
    "simulate",
    "simulate_monolithic",
    "sweep",
]
