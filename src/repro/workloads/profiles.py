"""The nine benchmark profiles of the paper (Table 3), as synthetic stand-ins.

The paper uses four SPEC2k integer programs, three SPEC2k FP programs, and
two Mediabench programs.  We cannot run Alpha binaries, so each benchmark is
replaced by a :class:`Profile` that reproduces the properties the paper's
evaluation actually depends on:

* degree of **distant ILP** (independent loop iterations and wide expression
  trees vs. serial recurrences) — decides whether 16 clusters beat 4
  (Figure 3);
* **branch-misprediction interval** (Table 3) — decides the useful window;
* **memory behaviour** (working-set size, access regularity) — decides load
  latency tolerance and bank predictability;
* **phase structure** (Table 4) — steady FP codes vs. integer codes with
  fine- or coarse-grained variability, which decides which controller wins.

``PAPER_TABLE3``/``PAPER_TABLE4`` record the paper's measured values for
EXPERIMENTS.md comparisons.
"""

from __future__ import annotations

from typing import Dict, Tuple

from .blocks import PhaseParams
from .generator import Profile

#: Paper Table 3: (base monolithic IPC, mispredict interval in instructions)
PAPER_TABLE3: Dict[str, Tuple[float, int]] = {
    "cjpeg": (2.06, 82),
    "crafty": (1.85, 118),
    "djpeg": (4.07, 249),
    "galgel": (3.43, 88),
    "gzip": (1.83, 87),
    "mgrid": (2.28, 8977),
    "parser": (1.42, 88),
    "swim": (1.67, 22600),
    "vpr": (1.20, 171),
}

#: Paper Table 4: minimum acceptable interval length (instructions) and the
#: instability factor at a 10K interval, per benchmark.
PAPER_TABLE4: Dict[str, Tuple[int, float]] = {
    "gzip": (10_000, 0.04),
    "vpr": (320_000, 0.14),
    "crafty": (320_000, 0.30),
    "parser": (40_000_000, 0.12),
    "swim": (10_000, 0.00),
    "mgrid": (10_000, 0.00),
    "galgel": (10_000, 0.01),
    "cjpeg": (40_000, 0.09),
    "djpeg": (1_280_000, 0.31),
}


def _cjpeg() -> Profile:
    """JPEG compression: block-parallel DCT work alternating with serial
    Huffman coding at a moderate grain."""
    dct = PhaseParams(
        name="cjpeg-dct",
        body_size=30,
        frac_fp=0.15,
        frac_load=0.24,
        frac_store=0.12,
        cross_iter_dep=0.08,
        chain_prob=0.30,
        inner_branches=2,
        random_branch_frac=0.08,
        biased_taken_prob=0.96,
        mem_pattern="strided",
        working_set=24 * 1024,
        stride=8,
    )
    huffman = PhaseParams(
        name="cjpeg-huffman",
        body_size=14,
        frac_fp=0.0,
        frac_load=0.28,
        frac_store=0.10,
        cross_iter_dep=0.40,
        chain_prob=0.65,
        inner_branches=3,
        random_branch_frac=0.09,
        biased_taken_prob=0.95,
        mem_pattern="hotcold",
        working_set=20 * 1024,
    )
    return Profile(
        name="cjpeg",
        phases=(dct, huffman),
        schedule="alternate",
        segment_length=2_500,
        description="Mediabench JPEG encode: DCT blocks + Huffman coding",
    )


def _crafty() -> Profile:
    """Chess search: branchy, pointer-heavy, fine-grained phase changes."""
    search = PhaseParams(
        name="crafty-search",
        body_size=16,
        frac_load=0.26,
        frac_store=0.08,
        cross_iter_dep=0.25,
        chain_prob=0.50,
        inner_branches=3,
        random_branch_frac=0.04,
        biased_taken_prob=0.975,
        call_prob=0.30,
        callee_body=8,
        mem_pattern="random",
        working_set=20 * 1024,
    )
    evaluate = PhaseParams(
        name="crafty-eval",
        body_size=24,
        frac_load=0.22,
        frac_store=0.06,
        cross_iter_dep=0.12,
        chain_prob=0.40,
        inner_branches=2,
        random_branch_frac=0.04,
        biased_taken_prob=0.97,
        mem_pattern="random",
        working_set=16 * 1024,
    )
    movegen = PhaseParams(
        name="crafty-movegen",
        body_size=12,
        frac_load=0.30,
        frac_store=0.14,
        cross_iter_dep=0.55,
        chain_prob=0.65,
        inner_branches=3,
        random_branch_frac=0.045,
        biased_taken_prob=0.97,
        mem_pattern="chase",
        working_set=8 * 1024,
    )
    return Profile(
        name="crafty",
        phases=(search, evaluate, movegen),
        schedule="random",
        segment_length=1_200,
        description="SPEC2k Int chess: fine-grained phase variability",
    )


def _djpeg() -> Profile:
    """JPEG decode: highly parallel IDCT interleaved with shorter serial
    upsampling/output phases at a fine grain (high distant ILP overall)."""
    idct = PhaseParams(
        name="djpeg-idct",
        body_size=40,
        frac_fp=0.15,
        frac_load=0.16,
        frac_store=0.12,
        cross_iter_dep=0.0,
        chain_prob=0.18,
        second_src_prob=0.45,
        inner_branches=1,
        random_branch_frac=0.02,
        biased_taken_prob=0.985,
        loop_taken_prob=0.99,
        mem_pattern="strided",
        working_set=24 * 1024,
        stride=8,
    )
    upsample = PhaseParams(
        name="djpeg-upsample",
        body_size=14,
        frac_fp=0.0,
        frac_load=0.28,
        frac_store=0.16,
        cross_iter_dep=0.50,
        chain_prob=0.60,
        inner_branches=2,
        random_branch_frac=0.035,
        biased_taken_prob=0.98,
        mem_pattern="strided",
        working_set=16 * 1024,
    )
    return Profile(
        name="djpeg",
        phases=(idct, upsample),
        schedule="alternate",
        segment_length=2_000,
        description="Mediabench JPEG decode: distant ILP with fine phases",
    )


def _galgel() -> Profile:
    """Fluid dynamics: FP loops with distant ILP but branchier than the
    other FP codes (Table 3 shows an 88-instruction mispredict interval)."""
    solver = PhaseParams(
        name="galgel-solver",
        body_size=36,
        frac_fp=0.50,
        frac_mul=0.25,
        frac_load=0.24,
        frac_store=0.10,
        cross_iter_dep=0.03,
        chain_prob=0.20,
        second_src_prob=0.45,
        inner_branches=2,
        random_branch_frac=0.09,
        biased_taken_prob=0.96,
        mem_pattern="strided",
        working_set=32 * 1024,
        stride=8,
    )
    return Profile(
        name="galgel",
        phases=(solver,),
        schedule="steady",
        segment_length=8_192,
        description="SPEC2k FP Galerkin: stable, distant ILP, branchy",
    )


def _gzip() -> Profile:
    """LZ77 compression: prolonged phases, some with distant ILP (long
    literal runs) and some serial (match chains).  The paper highlights that
    the dynamic scheme beats even the best static choice here."""
    literal = PhaseParams(
        name="gzip-literal",
        body_size=30,
        frac_load=0.24,
        frac_store=0.12,
        cross_iter_dep=0.30,
        chain_prob=0.60,
        inner_branches=2,
        random_branch_frac=0.13,
        biased_taken_prob=0.94,
        mem_pattern="strided",
        working_set=24 * 1024,
        stride=8,
    )
    match = PhaseParams(
        name="gzip-match",
        body_size=14,
        frac_load=0.30,
        frac_store=0.08,
        cross_iter_dep=0.60,
        chain_prob=0.70,
        second_src_prob=0.50,
        dep_window=10,
        inner_branches=3,
        random_branch_frac=0.08,
        biased_taken_prob=0.96,
        mem_pattern="hotcold",
        working_set=48 * 1024,
        hot_prob=0.90,
    )
    return Profile(
        name="gzip",
        phases=(literal, match),
        schedule="alternate",
        segment_length=24_576,
        description="SPEC2k Int gzip: prolonged alternating ILP phases",
    )


def _mgrid() -> Profile:
    """Multigrid solver: long, extremely predictable FP loops with abundant
    distant ILP (mispredict interval ~9000)."""
    relax = PhaseParams(
        name="mgrid-relax",
        body_size=40,
        frac_fp=0.60,
        frac_mul=0.30,
        frac_load=0.28,
        frac_store=0.10,
        cross_iter_dep=0.0,
        chain_prob=0.45,
        inner_branches=1,
        random_branch_frac=0.0,
        biased_taken_prob=0.998,
        loop_taken_prob=0.998,
        mem_pattern="strided",
        working_set=160 * 1024,
        stride=8,
    )
    return Profile(
        name="mgrid",
        phases=(relax,),
        schedule="steady",
        segment_length=8_192,
        description="SPEC2k FP multigrid: stable loops, distant ILP",
    )


def _parser() -> Profile:
    """Natural-language parsing: input-dependent behaviour that only looks
    uniform at very coarse interval lengths (Table 4: 40M)."""
    tokenize = PhaseParams(
        name="parser-tokenize",
        body_size=16,
        frac_load=0.28,
        frac_store=0.10,
        cross_iter_dep=0.25,
        chain_prob=0.55,
        inner_branches=3,
        random_branch_frac=0.065,
        biased_taken_prob=0.96,
        mem_pattern="hotcold",
        working_set=32 * 1024,
    )
    link = PhaseParams(
        name="parser-link",
        body_size=20,
        frac_load=0.30,
        frac_store=0.08,
        cross_iter_dep=0.30,
        chain_prob=0.60,
        inner_branches=3,
        random_branch_frac=0.07,
        biased_taken_prob=0.96,
        call_prob=0.25,
        callee_body=10,
        mem_pattern="chase",
        working_set=24 * 1024,
    )
    prune = PhaseParams(
        name="parser-prune",
        body_size=12,
        frac_load=0.26,
        frac_store=0.12,
        cross_iter_dep=0.20,
        chain_prob=0.55,
        inner_branches=2,
        random_branch_frac=0.06,
        biased_taken_prob=0.96,
        mem_pattern="random",
        working_set=48 * 1024,
    )
    return Profile(
        name="parser",
        phases=(tokenize, link, prune),
        schedule="random",
        segment_length=12_288,
        description="SPEC2k Int parser: irregular, coarse-grained variability",
    )


def _swim() -> Profile:
    """Shallow-water model: memory-bound, perfectly predictable FP loops
    over large arrays, fully independent iterations."""
    stencil = PhaseParams(
        name="swim-stencil",
        body_size=48,
        frac_fp=0.62,
        frac_mul=0.25,
        frac_load=0.30,
        frac_store=0.12,
        cross_iter_dep=0.0,
        chain_prob=0.50,
        inner_branches=1,
        random_branch_frac=0.0,
        biased_taken_prob=0.9995,
        loop_taken_prob=0.9995,
        mem_pattern="strided",
        working_set=2560 * 1024,
        stride=16,
    )
    return Profile(
        name="swim",
        phases=(stencil,),
        schedule="steady",
        segment_length=8_192,
        description="SPEC2k FP swim: memory-bound stencils, distant ILP",
    )


def _vpr() -> Profile:
    """Place-and-route: serial cost evaluation over irregular structures;
    low ILP, modest phase variability."""
    place = PhaseParams(
        name="vpr-place",
        body_size=14,
        frac_load=0.30,
        frac_store=0.10,
        cross_iter_dep=0.45,
        chain_prob=0.65,
        inner_branches=3,
        random_branch_frac=0.02,
        biased_taken_prob=0.98,
        mem_pattern="random",
        working_set=40 * 1024,
    )
    route = PhaseParams(
        name="vpr-route",
        body_size=18,
        frac_load=0.28,
        frac_store=0.08,
        cross_iter_dep=0.40,
        chain_prob=0.65,
        inner_branches=3,
        random_branch_frac=0.025,
        biased_taken_prob=0.98,
        mem_pattern="chase",
        working_set=40 * 1024,
    )
    return Profile(
        name="vpr",
        phases=(place, route),
        schedule="alternate",
        segment_length=5_000,
        description="SPEC2k Int vpr: low ILP, communication-averse",
    )


_PROFILE_FACTORIES = {
    "cjpeg": _cjpeg,
    "crafty": _crafty,
    "djpeg": _djpeg,
    "galgel": _galgel,
    "gzip": _gzip,
    "mgrid": _mgrid,
    "parser": _parser,
    "swim": _swim,
    "vpr": _vpr,
}

BENCHMARK_NAMES = tuple(sorted(_PROFILE_FACTORIES))

#: Programs the paper identifies as having abundant distant ILP (they scale
#: to 16 clusters in Figure 3).
DISTANT_ILP_BENCHMARKS = ("djpeg", "swim", "mgrid", "galgel")


def get_profile(name: str) -> Profile:
    """The profile for one of the nine Table 3 benchmarks."""
    try:
        return _PROFILE_FACTORIES[name]()
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; choose from {BENCHMARK_NAMES}"
        ) from None


def all_profiles() -> Dict[str, Profile]:
    """All nine benchmark profiles, keyed by name."""
    return {name: get_profile(name) for name in BENCHMARK_NAMES}
