"""Effective-address stream generators.

Each generator models one static load/store site.  The mix of streams in a
phase determines L1/L2 hit rates, bank-conflict behaviour, and — in the
decentralized cache — how predictable the accessed bank is (a strided stream
visits banks in a repeating pattern the two-level bank predictor can learn;
a random stream within a large working set cannot be learned).
"""

from __future__ import annotations

import random
from typing import Protocol


class AddressStream(Protocol):
    """One static memory instruction's sequence of effective addresses."""

    def next_address(self) -> int:
        """The next effective (byte) address this site touches."""
        ...


class StridedStream:
    """Sequential array walk: ``base, base+stride, base+2*stride, ...``

    Wraps at ``extent`` bytes so the working set is bounded.  This is the
    dominant pattern of the loop-based FP codes (swim, mgrid, galgel) and of
    media row processing (cjpeg/djpeg).
    """

    def __init__(self, base: int, stride: int, extent: int) -> None:
        if stride == 0:
            raise ValueError("stride must be nonzero")
        if extent <= 0:
            raise ValueError("extent must be positive")
        self.base = base
        self.stride = stride
        self.extent = extent
        self._offset = 0

    def next_address(self) -> int:
        addr = self.base + self._offset
        self._offset = (self._offset + self.stride) % self.extent
        return addr


class WorkingSetStream:
    """Uniform random touches within a working set of ``size`` bytes.

    Models hash tables and irregular structures (crafty, parser, vpr).  The
    working-set size relative to the L1 determines the hit rate; the
    randomness makes bank prediction hard.
    """

    def __init__(self, base: int, size: int, rng: random.Random, align: int = 4) -> None:
        if size <= 0:
            raise ValueError("size must be positive")
        self.base = base
        self.size = size
        self.align = align
        self._rng = rng

    def next_address(self) -> int:
        off = self._rng.randrange(0, self.size)
        return self.base + (off - off % self.align)


class PointerChaseStream:
    """A fixed pseudo-random cyclic permutation walked one node per access.

    Models linked-list/pointer traversal: the *sequence* repeats (so the bank
    pattern per site is eventually learnable) but has no spatial locality.
    """

    def __init__(self, base: int, nodes: int, node_size: int, rng: random.Random) -> None:
        if nodes < 1:
            raise ValueError("need at least one node")
        order = list(range(nodes))
        rng.shuffle(order)
        self.base = base
        self.node_size = node_size
        self._order = order
        self._pos = 0

    def next_address(self) -> int:
        addr = self.base + self._order[self._pos] * self.node_size
        self._pos = (self._pos + 1) % len(self._order)
        return addr


class HotColdStream:
    """A small hot region hit with probability ``hot_prob``; a large cold
    region otherwise.  Models stack-plus-heap behaviour (gzip)."""

    def __init__(
        self,
        base: int,
        hot_size: int,
        cold_size: int,
        hot_prob: float,
        rng: random.Random,
        align: int = 4,
    ) -> None:
        if not (0.0 <= hot_prob <= 1.0):
            raise ValueError("hot_prob must be in [0, 1]")
        self.base = base
        self.hot_size = hot_size
        self.cold_size = cold_size
        self.hot_prob = hot_prob
        self.align = align
        self._rng = rng

    def next_address(self) -> int:
        if self._rng.random() < self.hot_prob:
            off = self._rng.randrange(0, self.hot_size)
        else:
            off = self.hot_size + self._rng.randrange(0, self.cold_size)
        return self.base + (off - off % self.align)
