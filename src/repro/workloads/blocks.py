"""Static program structure for the synthetic workload generator.

A phase of a synthetic benchmark is a loop: a sequence of instruction
*segments* separated by conditional-branch sites, closed by a loop-back
branch.  The static structure (PCs, op classes, branch sites, per-site
address streams) is fixed once per phase so that the branch predictor, BTB,
and bank predictor see realistic repeating patterns; the *dynamic* trace is
produced by walking this structure iteration by iteration
(:mod:`repro.workloads.generator`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import List, Optional

from .addresses import (
    AddressStream,
    HotColdStream,
    PointerChaseStream,
    StridedStream,
    WorkingSetStream,
)
from .instruction import OpClass


@dataclass
class StaticInstr:
    """One static instruction slot in a loop body."""

    slot: int  # unique within the body; keys cross-iteration dependences
    pc: int
    op: OpClass
    stream: Optional[AddressStream] = None  # loads/stores only


class BranchSite:
    """A static conditional-branch site with a fixed outcome process.

    Kinds:
        ``biased``  — taken with probability ``param`` (predictable when the
                      bias is strong).
        ``random``  — taken with probability ``param`` independently, meant
                      for data-dependent branches (unpredictable at 0.5).
        ``noisy``   — taken with probability ``param`` except that a
                      ``noise`` fraction of executions is a fair coin flip.
                      This is the workhorse: every site is learnable, and
                      the noise fraction directly sets the floor on the
                      misprediction rate (~ noise/2), so a benchmark's
                      mispredict interval calibrates deterministically
                      instead of depending on a per-site kind lottery.
        ``pattern`` — deterministic repeating pattern of period ``param``
                      (one not-taken per period), learnable by the two-level
                      predictor but not by the bimodal one.
    """

    KINDS = ("biased", "random", "noisy", "pattern")

    def __init__(
        self,
        pc: int,
        kind: str,
        param: float,
        rng: random.Random,
        noise: float = 0.0,
    ) -> None:
        if kind not in self.KINDS:
            raise ValueError(f"unknown branch kind {kind!r}")
        if not 0.0 <= noise <= 1.0:
            raise ValueError("noise must be a probability")
        self.pc = pc
        self.kind = kind
        self.param = param
        self.noise = noise
        self._rng = rng
        self._count = 0

    def next_outcome(self) -> bool:
        if self.kind == "pattern":
            period = max(2, int(self.param))
            taken = (self._count % period) != (period - 1)
            self._count += 1
            return taken
        if self.kind == "noisy" and self._rng.random() < self.noise:
            return self._rng.random() < 0.5
        return self._rng.random() < self.param


@dataclass
class PhaseParams:
    """Tunable knobs of one program phase.

    The important axis for the paper is ``cross_iter_dep``: the probability
    that a compute instruction depends on the same slot of the *previous*
    iteration.  At 0 the loop iterations are independent and the program has
    abundant *distant* ILP (it scales to 16 clusters); near 1 the loop is a
    serial recurrence and extra clusters only add communication cost.
    """

    name: str = "phase"
    body_size: int = 24
    frac_fp: float = 0.0
    frac_mul: float = 0.08
    frac_load: float = 0.25
    frac_store: float = 0.10
    cross_iter_dep: float = 0.0
    within_dep: float = 0.75
    second_src_prob: float = 0.35
    dep_window: int = 6
    #: probability an operand continues the most recent chain (deep, serial
    #: expression trees) rather than picking any recent producer (wide,
    #: parallel expression trees)
    chain_prob: float = 0.6
    inner_branches: int = 2
    random_branch_frac: float = 0.0
    biased_taken_prob: float = 0.88
    pattern_branch_frac: float = 0.0
    pattern_period: int = 4
    loop_taken_prob: float = 0.96
    call_prob: float = 0.0
    callee_body: int = 10
    mem_pattern: str = "strided"  # strided | random | hotcold | chase
    working_set: int = 16 * 1024
    stride: int = 4
    hot_prob: float = 0.9

    def __post_init__(self) -> None:
        if self.body_size < 2:
            raise ValueError("body_size must be >= 2")
        if not 0.0 <= self.cross_iter_dep <= 1.0:
            raise ValueError("cross_iter_dep must be a probability")
        if self.mem_pattern not in ("strided", "random", "hotcold", "chase"):
            raise ValueError(f"unknown mem_pattern {self.mem_pattern!r}")


def _make_stream(
    params: PhaseParams, base: int, rng: random.Random
) -> AddressStream:
    if params.mem_pattern == "strided":
        return StridedStream(base=base, stride=params.stride, extent=params.working_set)
    if params.mem_pattern == "random":
        return WorkingSetStream(base=base, size=params.working_set, rng=rng)
    if params.mem_pattern == "hotcold":
        hot = max(64, params.working_set // 16)
        return HotColdStream(
            base=base,
            hot_size=hot,
            cold_size=params.working_set,
            hot_prob=params.hot_prob,
            rng=rng,
        )
    nodes = max(1, params.working_set // 64)
    return PointerChaseStream(base=base, nodes=nodes, node_size=64, rng=rng)


@dataclass
class LoopBody:
    """The static structure of one phase: segments, branch sites, callee."""

    params: PhaseParams
    segments: List[List[StaticInstr]]
    branch_sites: List[BranchSite]  # branch_sites[i] follows segments[i]
    loop_branch: BranchSite
    callee: List[StaticInstr]
    call_pc: int
    return_pc: int
    pc_base: int

    @property
    def num_slots(self) -> int:
        n = sum(len(s) for s in self.segments)
        return n + len(self.callee)


def build_loop_body(
    params: PhaseParams, pc_base: int, rng: random.Random, data_base: int
) -> LoopBody:
    """Materialize the static loop structure for one phase.

    PCs are assigned sequentially from ``pc_base`` (4 bytes apart).  The
    phase's ``working_set`` is its *total* data footprint: it is divided
    evenly among the static memory instructions, each of which walks its own
    region above ``data_base``.
    """
    n_segments = params.inner_branches + 1
    per_segment = max(1, params.body_size // n_segments)

    def _op_list(n: int) -> List[OpClass]:
        """Exactly-proportioned op mix, shuffled.

        Sampling each slot independently would make the number of memory
        sites — and with it the data footprint and cache behaviour — swing
        wildly across seeds; fixed counts keep every build of a profile
        statistically comparable.
        """
        loads = round(params.frac_load * n)
        stores = round(params.frac_store * n)
        compute = max(0, n - loads - stores)
        fp = round(params.frac_fp * compute)
        fp_mul = round(params.frac_mul * fp)
        int_mul = round(params.frac_mul * (compute - fp))
        ops = (
            [OpClass.LOAD] * loads
            + [OpClass.STORE] * stores
            + [OpClass.FP_MUL] * fp_mul
            + [OpClass.FP_ALU] * (fp - fp_mul)
            + [OpClass.INT_MUL] * int_mul
            + [OpClass.INT_ALU] * (compute - fp - int_mul)
        )
        rng.shuffle(ops)
        return ops

    body_ops = _op_list(n_segments * per_segment)
    segment_ops = [
        body_ops[i * per_segment : (i + 1) * per_segment] for i in range(n_segments)
    ]
    callee_ops = _op_list(params.callee_body)
    all_ops = body_ops + callee_ops

    # Loads in strided phases model stencils: groups of up to three sites
    # walk the *same* array at neighbouring offsets, sharing cache lines the
    # way a[i-1], a[i], a[i+1] do.  Each group (and each store site) gets
    # its own region; the phase working set is split across regions.
    _STENCIL_GROUP = 3
    if params.mem_pattern == "strided":
        n_load_sites = sum(1 for op in all_ops if op is OpClass.LOAD)
        n_store_sites = sum(1 for op in all_ops if op is OpClass.STORE)
        n_regions = -(-n_load_sites // _STENCIL_GROUP) + n_store_sites
    else:
        n_regions = sum(1 for op in all_ops if op in (OpClass.LOAD, OpClass.STORE))
    site_extent = max(256, params.working_set // max(1, n_regions))

    pc = pc_base
    slot = 0
    stream_region = data_base
    segments: List[List[StaticInstr]] = []
    branch_sites: List[BranchSite] = []
    stencil_state = {"base": -1, "members": _STENCIL_GROUP}

    def make_static(op: OpClass) -> StaticInstr:
        nonlocal pc, slot, stream_region
        stream = None
        if op in (OpClass.LOAD, OpClass.STORE):
            site_params = params if params.working_set == site_extent else replace(
                params, working_set=site_extent
            )
            if params.mem_pattern == "strided" and op is OpClass.LOAD:
                if stencil_state["members"] >= _STENCIL_GROUP:
                    stencil_state["base"] = stream_region
                    stencil_state["members"] = 0
                    stream_region += site_extent + 256
                offset = abs(params.stride) * stencil_state["members"]
                stencil_state["members"] += 1
                stream = StridedStream(
                    base=stencil_state["base"] + offset,
                    stride=params.stride,
                    extent=site_extent,
                )
            else:
                stream = _make_stream(site_params, stream_region, rng)
                stream_region += site_extent + 256
        instr = StaticInstr(slot=slot, pc=pc, op=op, stream=stream)
        pc += 4
        slot += 1
        return instr

    n_pattern_sites = int(round(params.pattern_branch_frac * params.inner_branches))
    for seg_idx in range(n_segments):
        seg = [make_static(op) for op in segment_ops[seg_idx]]
        segments.append(seg)
        if seg_idx < n_segments - 1:
            if seg_idx < n_pattern_sites:
                site = BranchSite(pc, "pattern", params.pattern_period, rng)
            else:
                site = BranchSite(
                    pc,
                    "noisy",
                    params.biased_taken_prob,
                    rng,
                    noise=params.random_branch_frac,
                )
            branch_sites.append(site)
            pc += 4

    call_pc = pc
    pc += 4
    callee_base = pc_base + 0x10000
    saved_pc = pc
    pc = callee_base
    callee = [make_static(op) for op in callee_ops]
    return_pc = pc
    pc = saved_pc

    loop_branch = BranchSite(pc, "biased", params.loop_taken_prob, rng)

    return LoopBody(
        params=params,
        segments=segments,
        branch_sites=branch_sites,
        loop_branch=loop_branch,
        callee=callee,
        call_pc=call_pc,
        return_pc=return_pc,
        pc_base=pc_base,
    )
