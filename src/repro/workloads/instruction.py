"""Dynamic instruction model.

The simulator is trace driven: a workload is a sequence of :class:`Instr`
records, one per *dynamic* instruction.  Data dependences are encoded as the
trace indices of the producing instructions (``-1`` when the operand is
immediately available — an immediate, a loop invariant, or a value produced
before the simulation window).  This makes register renaming implicit while
still letting the steering heuristic see exactly which cluster produced each
operand, which is all the paper's mechanisms need.
"""

from __future__ import annotations

from enum import IntEnum
from typing import Iterable, List


class OpClass(IntEnum):
    """Functional-unit class of an instruction."""

    INT_ALU = 0
    INT_MUL = 1
    FP_ALU = 2
    FP_MUL = 3
    LOAD = 4
    STORE = 5
    BRANCH = 6

    @property
    def is_fp(self) -> bool:
        return self in (OpClass.FP_ALU, OpClass.FP_MUL)

    @property
    def is_mem(self) -> bool:
        return self in (OpClass.LOAD, OpClass.STORE)


#: op classes that write a register the steering heuristic must place
_HAS_DEST = {
    OpClass.INT_ALU: True,
    OpClass.INT_MUL: True,
    OpClass.FP_ALU: True,
    OpClass.FP_MUL: True,
    OpClass.LOAD: True,
    OpClass.STORE: False,
    OpClass.BRANCH: False,
}

# per-op-class flag tables indexed by the IntEnum value; consulted once in
# Instr.__init__ so the pipeline reads plain slot attributes instead of
# calling properties (the former dominate the simulator's profile)
_HAS_DEST_T = tuple(_HAS_DEST[op] for op in OpClass)
_IS_BRANCH_T = tuple(op is OpClass.BRANCH for op in OpClass)
_IS_MEM_T = tuple(op in (OpClass.LOAD, OpClass.STORE) for op in OpClass)
_IS_LOAD_T = tuple(op is OpClass.LOAD for op in OpClass)
_IS_STORE_T = tuple(op is OpClass.STORE for op in OpClass)
_IS_FP_T = tuple(op in (OpClass.FP_ALU, OpClass.FP_MUL) for op in OpClass)


class Instr:
    """One dynamic instruction.

    Attributes:
        index: position in the trace (also the implicit destination tag).
        pc: static program counter (drives all predictors and the
            fine-grained reconfiguration table).
        op: the :class:`OpClass`.
        src1, src2: trace indices of producer instructions, or ``-1``.
        addr: effective byte address for loads/stores (0 otherwise).
        taken: actual branch outcome (branches only).
        target: actual next PC when taken (branches only).
        is_call / is_return: subroutine boundary markers (branches only).
    """

    __slots__ = (
        "index",
        "pc",
        "op",
        "src1",
        "src2",
        "addr",
        "taken",
        "target",
        "is_call",
        "is_return",
        "has_dest",
        "is_branch",
        "is_mem",
        "is_load",
        "is_store",
        "is_fp",
    )

    def __init__(
        self,
        index: int,
        pc: int,
        op: OpClass,
        src1: int = -1,
        src2: int = -1,
        addr: int = 0,
        taken: bool = False,
        target: int = 0,
        is_call: bool = False,
        is_return: bool = False,
    ) -> None:
        self.index = index
        self.pc = pc
        self.op = op
        self.src1 = src1
        self.src2 = src2
        self.addr = addr
        self.taken = taken
        self.target = target
        self.is_call = is_call
        self.is_return = is_return
        # derived flags, precomputed once (instructions are immutable)
        self.has_dest = _HAS_DEST_T[op]
        self.is_branch = _IS_BRANCH_T[op]
        self.is_mem = _IS_MEM_T[op]
        self.is_load = _IS_LOAD_T[op]
        self.is_store = _IS_STORE_T[op]
        self.is_fp = _IS_FP_T[op]

    def sources(self) -> Iterable[int]:
        """The producer indices of this instruction's register operands."""
        if self.src1 >= 0:
            yield self.src1
        if self.src2 >= 0:
            yield self.src2

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        extra = ""
        if self.is_mem:
            extra = f" addr={self.addr:#x}"
        if self.is_branch:
            extra = f" taken={self.taken}"
        return (
            f"Instr(#{self.index} pc={self.pc:#x} {self.op.name}"
            f" src=({self.src1},{self.src2}){extra})"
        )


class Trace:
    """A complete dynamic instruction trace plus metadata."""

    def __init__(self, name: str, instructions: List[Instr]) -> None:
        self.name = name
        self.instructions = instructions
        self._validate()

    def _validate(self) -> None:
        for i, instr in enumerate(self.instructions):
            if instr.index != i:
                raise ValueError(
                    f"trace {self.name!r}: instruction {i} has index {instr.index}"
                )
            if instr.src1 >= i or instr.src2 >= i:
                raise ValueError(
                    f"trace {self.name!r}: instruction {i} depends on the future"
                )

    def __len__(self) -> int:
        return len(self.instructions)

    def __getitem__(self, i: int) -> Instr:
        return self.instructions[i]

    def __iter__(self):
        return iter(self.instructions)

    @property
    def branch_count(self) -> int:
        return sum(1 for i in self.instructions if i.is_branch)

    @property
    def memref_count(self) -> int:
        return sum(1 for i in self.instructions if i.is_mem)

    @property
    def fp_fraction(self) -> float:
        if not self.instructions:
            return 0.0
        return sum(1 for i in self.instructions if i.is_fp) / len(self.instructions)

    def slice(self, start: int, stop: int) -> "Trace":
        """A reindexed sub-trace covering ``[start, stop)``.

        Dependences that reach before ``start`` become immediately-ready
        operands, matching how a warmed-up simulation window behaves.
        """
        sub: List[Instr] = []
        for j, instr in enumerate(self.instructions[start:stop]):
            src1 = instr.src1 - start if instr.src1 >= start else -1
            src2 = instr.src2 - start if instr.src2 >= start else -1
            sub.append(
                Instr(
                    index=j,
                    pc=instr.pc,
                    op=instr.op,
                    src1=src1,
                    src2=src2,
                    addr=instr.addr,
                    taken=instr.taken,
                    target=instr.target,
                    is_call=instr.is_call,
                    is_return=instr.is_return,
                )
            )
        return Trace(f"{self.name}[{start}:{stop}]", sub)
