"""Synthetic workloads: instruction model, trace generator, benchmark profiles."""

from .addresses import (
    AddressStream,
    HotColdStream,
    PointerChaseStream,
    StridedStream,
    WorkingSetStream,
)
from .blocks import BranchSite, LoopBody, PhaseParams, StaticInstr, build_loop_body
from .generator import Profile, generate_trace
from .instruction import Instr, OpClass, Trace
from .profiles import (
    BENCHMARK_NAMES,
    DISTANT_ILP_BENCHMARKS,
    PAPER_TABLE3,
    PAPER_TABLE4,
    all_profiles,
    get_profile,
)

__all__ = [
    "AddressStream",
    "BranchSite",
    "BENCHMARK_NAMES",
    "DISTANT_ILP_BENCHMARKS",
    "HotColdStream",
    "Instr",
    "LoopBody",
    "OpClass",
    "PAPER_TABLE3",
    "PAPER_TABLE4",
    "PhaseParams",
    "PointerChaseStream",
    "Profile",
    "StaticInstr",
    "StridedStream",
    "Trace",
    "WorkingSetStream",
    "all_profiles",
    "build_loop_body",
    "generate_trace",
    "get_profile",
]
