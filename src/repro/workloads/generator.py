"""Synthetic dynamic-trace generation.

``generate_trace(profile, length, seed)`` walks the static loop structure of
each phase (:mod:`repro.workloads.blocks`) and emits a :class:`Trace`.  The
profile's phase *schedule* decides when the program switches phases, which is
what the paper's controllers must detect and react to.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..errors import WorkloadError
from .blocks import LoopBody, PhaseParams, StaticInstr, build_loop_body
from .instruction import Instr, OpClass, Trace

_RECENT_WINDOW = 16


@dataclass(frozen=True)
class Profile:
    """A synthetic benchmark: phases plus a phase schedule.

    Schedules:
        ``steady``    — a single phase for the whole trace.
        ``alternate`` — cycle through ``phases`` round-robin, each segment
                        lasting ``segment_length`` instructions (±jitter).
        ``random``    — switch to a uniformly-chosen different phase after
                        each segment; geometric segment lengths around
                        ``segment_length``.
    """

    name: str
    phases: Tuple[PhaseParams, ...]
    schedule: str = "steady"
    segment_length: int = 8192
    segment_jitter: float = 0.25
    description: str = ""

    def __post_init__(self) -> None:
        if not self.phases:
            raise WorkloadError(f"profile {self.name!r} has no phases")
        if self.schedule not in ("steady", "alternate", "random"):
            raise WorkloadError(f"unknown schedule {self.schedule!r}")
        if self.segment_length < 1:
            raise WorkloadError("segment_length must be positive")


class _PhaseState:
    """Per-phase dynamic generation state.

    ``prev_iter``/``cur_iter`` map static slots to their latest dynamic
    instances (used by the induction chain and pointer-chase sites).

    ``serial_tail`` threads the phase's *serial recurrence*: every compute
    instruction that draws a cross-iteration dependence chains onto the
    previous such instruction, and the last one becomes the value the next
    iteration starts from.  This makes ``cross_iter_dep`` behave like real
    serial code (one recurrence whose depth grows with the parameter)
    instead of many independent per-slot recurrences, which would still be
    perfectly parallel across iterations.
    """

    __slots__ = ("body", "prev_iter", "cur_iter", "serial_tail")

    def __init__(self, body: LoopBody) -> None:
        self.body = body
        self.prev_iter: Dict[int, int] = {}
        self.cur_iter: Dict[int, int] = {}
        self.serial_tail = -1

    def end_iteration(self) -> None:
        self.prev_iter = self.cur_iter
        self.cur_iter = {}


class _TraceBuilder:
    """Accumulates dynamic instructions and dependence bookkeeping."""

    def __init__(self, rng: random.Random) -> None:
        self.rng = rng
        self.instructions: List[Instr] = []
        self.recent: List[int] = []  # indices of recent dest-producing instrs

    def _note_producer(self, index: int) -> None:
        self.recent.append(index)
        if len(self.recent) > _RECENT_WINDOW:
            del self.recent[0]

    def pick_recent(self, window: int, chain_prob: float = 0.6) -> int:
        """A producer for a new operand.

        With probability ``chain_prob`` the immediately preceding producer
        is chosen (continuing a dependence chain — the common shape in real
        code, and what lets the steering heuristic keep chains inside one
        cluster); otherwise a uniformly random recent producer.
        """
        if not self.recent:
            return -1
        if self.rng.random() < chain_prob:
            return self.recent[-1]
        window = min(window, len(self.recent))
        return self.recent[-1 - self.rng.randrange(window)]

    def emit(self, instr: Instr) -> int:
        self.instructions.append(instr)
        if instr.has_dest:
            self._note_producer(instr.index)
        return instr.index

    @property
    def next_index(self) -> int:
        return len(self.instructions)


def _emit_static(
    builder: _TraceBuilder, state: _PhaseState, sinstr: StaticInstr, induction: bool
) -> None:
    """Emit one dynamic instance of a static (non-branch) instruction."""
    params = state.body.params
    rng = builder.rng
    idx = builder.next_index

    src1 = -1
    src2 = -1
    if sinstr.op in (OpClass.LOAD, OpClass.STORE):
        # operand 0 is the address.  Array walks hang off the cheap loop
        # induction chain; pointer chases serialize on the previous access
        # of the same site; the rest use a computed pointer.
        if params.mem_pattern == "chase" and sinstr.slot in state.prev_iter:
            src1 = state.prev_iter[sinstr.slot]
        else:
            induction_producer = state.cur_iter.get(0, -1)
            if induction_producer >= 0 and rng.random() < 0.9:
                src1 = induction_producer
            elif rng.random() < params.within_dep:
                src1 = builder.pick_recent(params.dep_window, chain_prob=0.2)
        if sinstr.op is OpClass.STORE:
            src2 = builder.pick_recent(params.dep_window, params.chain_prob)
    else:
        if induction:
            # the loop counter: a one-add-per-iteration recurrence
            src1 = state.prev_iter.get(sinstr.slot, -1)
        elif rng.random() < params.cross_iter_dep:
            # extend the phase's single serial recurrence
            if state.serial_tail >= 0:
                src1 = state.serial_tail
            state.serial_tail = idx
        elif rng.random() < params.within_dep:
            src1 = builder.pick_recent(params.dep_window, params.chain_prob)
        if rng.random() < params.second_src_prob:
            src2 = builder.pick_recent(params.dep_window, params.chain_prob)

    addr = 0
    if sinstr.stream is not None:
        addr = sinstr.stream.next_address()

    instr = Instr(
        index=idx,
        pc=sinstr.pc,
        op=sinstr.op,
        src1=src1,
        src2=src2,
        addr=addr,
    )
    builder.emit(instr)
    state.cur_iter[sinstr.slot] = idx if instr.has_dest else state.cur_iter.get(
        sinstr.slot, -1
    )


def _emit_branch(
    builder: _TraceBuilder,
    pc: int,
    taken: bool,
    target: int,
    params: PhaseParams,
    is_call: bool = False,
    is_return: bool = False,
) -> None:
    rng = builder.rng
    src1 = builder.pick_recent(params.dep_window) if rng.random() < 0.75 else -1
    builder.emit(
        Instr(
            index=builder.next_index,
            pc=pc,
            op=OpClass.BRANCH,
            src1=src1,
            taken=taken,
            target=target,
            is_call=is_call,
            is_return=is_return,
        )
    )


def _emit_iteration(builder: _TraceBuilder, state: _PhaseState) -> None:
    """Emit one dynamic loop iteration of the phase."""
    body = state.body
    params = body.params
    rng = builder.rng

    skip_next = False
    n_segments = len(body.segments)
    for seg_idx, segment in enumerate(body.segments):
        if skip_next:
            skip_next = False
            continue
        for pos, sinstr in enumerate(segment):
            induction = seg_idx == 0 and pos == 0
            _emit_static(builder, state, sinstr, induction)
        if seg_idx < len(body.branch_sites):
            site = body.branch_sites[seg_idx]
            taken = site.next_outcome()
            if taken:
                if seg_idx + 2 < n_segments:
                    target = body.segments[seg_idx + 2][0].pc
                else:
                    target = body.call_pc
                skip_next = True
            else:
                target = site.pc + 4
            _emit_branch(builder, site.pc, taken, target, params)

    if params.call_prob > 0.0 and rng.random() < params.call_prob:
        _emit_branch(
            builder,
            body.call_pc,
            taken=True,
            target=body.callee[0].pc if body.callee else body.return_pc,
            params=params,
            is_call=True,
        )
        for sinstr in body.callee:
            _emit_static(builder, state, sinstr, induction=False)
        _emit_branch(
            builder,
            body.return_pc,
            taken=True,
            target=body.loop_branch.pc,
            params=params,
            is_return=True,
        )

    loop_taken = body.loop_branch.next_outcome()
    loop_target = body.segments[0][0].pc
    _emit_branch(
        builder,
        body.loop_branch.pc,
        taken=loop_taken,
        target=loop_target if loop_taken else body.loop_branch.pc + 4,
        params=params,
    )
    state.end_iteration()
    # iterations exchange values only through the induction chain and the
    # explicit cross-iteration dependences; expression chains do not leak
    # across the back edge
    builder.recent.clear()


class _Scheduler:
    """Yields (phase_index, segment_length) pairs per the profile schedule."""

    def __init__(self, profile: Profile, rng: random.Random) -> None:
        self.profile = profile
        self.rng = rng
        self._next_phase = 0

    def next_segment(self) -> Tuple[int, int]:
        profile = self.profile
        base = profile.segment_length
        jitter = profile.segment_jitter
        length = max(64, int(base * (1.0 + self.rng.uniform(-jitter, jitter))))
        if profile.schedule == "steady":
            return 0, length
        if profile.schedule == "alternate":
            phase = self._next_phase
            self._next_phase = (phase + 1) % len(profile.phases)
            return phase, length
        # random
        n = len(profile.phases)
        choices = [i for i in range(n) if i != self._next_phase] or [0]
        phase = self.rng.choice(choices)
        self._next_phase = phase
        return phase, length


def generate_trace(profile: Profile, length: int, seed: int = 1) -> Trace:
    """Generate a dynamic trace of ``length`` instructions for ``profile``.

    Deterministic for a given (profile, length, seed); the same trace should
    be replayed across processor configurations for a fair comparison.
    """
    if length < 1:
        raise WorkloadError("trace length must be positive")
    rng = random.Random(seed)
    builder = _TraceBuilder(rng)

    states = []
    for i, params in enumerate(profile.phases):
        body = build_loop_body(
            params,
            pc_base=0x0010_0000 * (i + 1),
            rng=rng,
            data_base=0x0200_0000 * (i + 1),
        )
        states.append(_PhaseState(body))

    scheduler = _Scheduler(profile, rng)
    while builder.next_index < length:
        phase_idx, seg_len = scheduler.next_segment()
        state = states[phase_idx]
        segment_end = builder.next_index + seg_len
        while builder.next_index < min(segment_end, length):
            _emit_iteration(builder, state)

    # Dependences point backwards, so truncating to the requested length is
    # always safe and keeps interval arithmetic exact.
    return Trace(profile.name, builder.instructions[:length])
