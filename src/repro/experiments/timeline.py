"""Reconfiguration timelines: what a controller did, when.

Wraps any controller and records every active-cluster change with its cycle
and committed-instruction position, then renders an ASCII strip chart.
Useful for eyeballing controller behaviour (exploration sweeps, phase
tracking, fine-grained thrash) without a waveform viewer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..workloads.instruction import Instr

#: glyph per active-cluster count (log scale: 1..16)
_GLYPHS = {1: ".", 2: ":", 4: "|", 8: "#", 16: "@"}


@dataclass(frozen=True)
class Reconfiguration:
    cycle: int
    committed: int
    clusters: int


class _RecordingProxy:
    """Pass-through to the processor that logs reconfigurations.

    A module-level class (rather than a closure inside ``attach``) so that
    an attached :class:`TimelineRecorder` stays picklable — sweep workers
    ship recorded controllers back across process boundaries.
    """

    def __init__(self, processor, recorder: "TimelineRecorder") -> None:
        # bypass __getattr__-era attribute lookups during construction
        object.__setattr__(self, "_processor", processor)
        object.__setattr__(self, "_recorder", recorder)

    def __getattr__(self, name):
        if name.startswith("_"):
            # during unpickling __getattr__ runs before __dict__ is
            # restored; recursing on _processor here would never terminate
            raise AttributeError(name)
        return getattr(self._processor, name)

    def set_active_clusters(self, n, reason=""):
        processor = self._processor
        before = processor.active_clusters
        processor.set_active_clusters(n, reason)
        if processor.active_clusters != before:
            self._recorder.events.append(
                Reconfiguration(
                    cycle=processor.cycle,
                    committed=processor.stats.committed,
                    clusters=processor.active_clusters,
                )
            )


class TimelineRecorder:
    """Controller decorator that records reconfiguration events.

    Forwards every hook to the wrapped controller while snooping
    ``set_active_clusters`` calls through a proxy processor handle.
    """

    def __init__(self, inner) -> None:
        self.inner = inner
        self.events: List[Reconfiguration] = []
        self._processor = None

    # -- controller interface -------------------------------------------
    @property
    def needs_dispatch_events(self) -> bool:
        return getattr(self.inner, "needs_dispatch_events", False)

    def attach(self, processor) -> None:
        self._processor = processor
        self.inner.attach(_RecordingProxy(processor, self))

    def on_commit(self, instr: Instr, cycle: int, distant: bool) -> None:
        self.inner.on_commit(instr, cycle, distant)

    def on_dispatch(self, instr: Instr, cycle: int) -> None:
        self.inner.on_dispatch(instr, cycle)

    # -- rendering -------------------------------------------------------
    def render(self, total_committed: int, width: int = 64) -> str:
        """ASCII strip: one glyph per bucket of committed instructions.

        Legend: ``.`` 1, ``:`` 2, ``|`` 4, ``#`` 8, ``@`` 16 active clusters
        (nearest glyph for other counts).
        """
        if total_committed <= 0 or width <= 0:
            return ""
        per_bucket = max(1, total_committed // width)
        strip = []
        events = sorted(self.events, key=lambda e: e.committed)
        current = (
            self._processor.config.num_clusters if self._processor else 16
        )
        idx = 0
        for bucket in range(width):
            boundary = bucket * per_bucket
            while idx < len(events) and events[idx].committed <= boundary:
                current = events[idx].clusters
                idx += 1
            strip.append(_glyph(current))
        legend = "  (. 1  : 2  | 4  # 8  @ 16 clusters)"
        return "".join(strip) + legend


def _glyph(clusters: int) -> str:
    best = min(_GLYPHS, key=lambda k: abs(k - clusters))
    return _GLYPHS[best]
