"""Parallel sweep engine with content-hashed result caching.

Every paper exhibit is a matrix of *independent* single-configuration
simulations, which makes the whole reproduction embarrassingly parallel.
This module supplies the machinery the exhibits (and the benchmark
harness) fan out on:

* :class:`RunSpec` / :class:`ControllerSpec` — fully declarative, picklable
  descriptions of one run.  Workers rebuild the trace and the controller
  from the spec, so nothing stateful ever crosses a process boundary and a
  parallel sweep is bit-identical to the serial loop it replaced.
* :class:`ResultCache` — a content-addressed on-disk cache keyed by a
  stable hash of the trace-generation parameters, the
  :class:`~repro.config.ProcessorConfig`, the controller spec, and a digest
  of the simulator's own source tree (so editing the code invalidates
  everything automatically).
* :class:`SweepConfig` — one validated dataclass holding every runner
  knob (backend, parallelism, cache, timeout/retry, journal, tracing).
* :class:`SweepRunner` — fans specs out across a pluggable
  :class:`~repro.experiments.backends.ExecutionBackend` (in-process
  serial, local process pool, or a TCP-distributed worker fleet) with
  per-run timeout and retry, records structured failures instead of
  crashing the sweep, and exposes progress/latency/utilization metrics.

Determinism is the design constraint: every backend must produce
the same :class:`~repro.stats.SimStats` as ``SweepConfig(jobs=1)`` and as
the plain ``run_trace`` loop, for the same seeds.

Fault tolerance is the second design constraint.  A sweep survives —
always with a structured record, never an unhandled exception — all of:

* a worker hard-crash (``BrokenProcessPool``): the pool is respawned and
  the in-flight specs re-queued; a spec that repeatedly kills workers is
  *quarantined* with ``status="poisoned"`` rather than retried forever
  (suspects are probed one-at-a-time after a crash, so an innocent spec
  that happened to share the pool with a crasher is never blamed);
* SIGINT/SIGTERM: in-flight runs drain, finished results are flushed to
  the journal, then :class:`~repro.errors.SweepInterrupted` carries the
  partial records out;
* a corrupted or bit-rotten cache entry: detected by checksum *before*
  unpickling, evicted, recomputed;
* a killed sweep: pass ``journal=``/``resume=True`` (CLI ``--resume``) and
  completed work is skipped on the next attempt — the resumed exhibit is
  bit-identical to an uninterrupted run.

Transient failures back off exponentially with full jitter between
retries (``retry_backoff`` base seconds, doubling per attempt, capped).
"""

from __future__ import annotations

import dataclasses
import hashlib
import math
import os
import pathlib
import pickle
import random
import signal
import tempfile
import threading
import time
import warnings
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from .. import faults
from .._version import __version__
from ..config import ProcessorConfig, env_int, env_text
from ..errors import (
    BackendError,
    ConfigError,
    SimulationError,
    SweepError,
    SweepInterrupted,
)
from ..core import (
    DistantILPController,
    ExploreConfig,
    FineGrainConfig,
    FineGrainController,
    IntervalExploreController,
    NoExploreConfig,
    StaticController,
    SubroutineController,
)
from ..multiprog import MultiProgResult, MultiProgSpec, run_multiprog
from ..multiprog.scheduler import fabric_config
from ..resilience import FaultSchedule
from ..stats import IntervalRecord
from ..workloads.generator import generate_trace
from ..workloads.profiles import get_profile
from .journal import SweepJournal
from .runner import DEFAULT_WARMUP, RunResult, run_trace
from .timeline import Reconfiguration, TimelineRecorder

#: environment knob: cache directory (default ``~/.cache/repro``)
CACHE_DIR_ENV = "REPRO_CACHE_DIR"
#: environment knob: default worker count for CLI/benchmark sweeps
JOBS_ENV = "REPRO_JOBS"
#: environment knob: default execution backend for ``backend="auto"``
BACKEND_ENV = "REPRO_SWEEP_BACKEND"
#: environment knob: default worker lanes for the distributed backend
LANES_ENV = "REPRO_LANES"

#: bump when the cached payload layout changes
#: (v2: payload carries a SHA-256 checksum of the pickled record, verified
#: before unpickling, so bit-rot and truncation are detected up front)
CACHE_SCHEMA_VERSION = 2


# ----------------------------------------------------------------------
# declarative run descriptions


@dataclass(frozen=True)
class ControllerSpec:
    """A picklable recipe for a reconfiguration controller.

    Controllers are stateful objects, so the sweep ships this declarative
    description instead and every worker builds a fresh instance — the same
    reason :mod:`repro.experiments.figures` used factory callables before.

    ``kind`` is one of ``none``, ``static``, ``explore``, ``no-explore``,
    ``finegrain``, ``subroutine``; ``algo`` carries the (frozen, hashable)
    algorithm-constant dataclass where one applies.
    """

    kind: str = "none"
    clusters: Optional[int] = None
    #: typed as the closed union of algorithm-constant dataclasses (all
    #: frozen, all repr-stable) so the wire/cache-key rules can prove the
    #: spec picklable and its repr deterministic (P502/K601)
    algo: Optional[
        Union[ExploreConfig, NoExploreConfig, FineGrainConfig]
    ] = None

    def __post_init__(self) -> None:
        if self.kind not in _CONTROLLER_BUILDERS:
            raise ValueError(
                f"unknown controller kind {self.kind!r}; "
                f"choose from {sorted(_CONTROLLER_BUILDERS)}"
            )
        if self.kind == "static" and not self.clusters:
            raise ValueError("static controller spec needs a cluster count")

    # -- convenience constructors ---------------------------------------
    @classmethod
    def none(cls) -> "ControllerSpec":
        return cls("none")

    @classmethod
    def static(cls, clusters: int) -> "ControllerSpec":
        return cls("static", clusters=clusters)

    @classmethod
    def explore(cls, algo: Optional[ExploreConfig] = None) -> "ControllerSpec":
        return cls("explore", algo=algo or ExploreConfig.scaled())

    @classmethod
    def no_explore(cls, algo: Optional[NoExploreConfig] = None) -> "ControllerSpec":
        return cls("no-explore", algo=algo or NoExploreConfig.scaled())

    @classmethod
    def finegrain(cls, algo: Optional[FineGrainConfig] = None) -> "ControllerSpec":
        return cls("finegrain", algo=algo or FineGrainConfig())

    @classmethod
    def subroutine(cls, algo: Optional[FineGrainConfig] = None) -> "ControllerSpec":
        return cls("subroutine", algo=algo)

    def build(self):
        """A fresh controller instance (or ``None`` for ``kind='none'``)."""
        return _CONTROLLER_BUILDERS[self.kind](self)


_CONTROLLER_BUILDERS: Dict[str, Callable[[ControllerSpec], object]] = {
    "none": lambda spec: None,
    "static": lambda spec: StaticController(spec.clusters),
    "explore": lambda spec: IntervalExploreController(spec.algo),
    "no-explore": lambda spec: DistantILPController(spec.algo),
    "finegrain": lambda spec: FineGrainController(spec.algo),
    "subroutine": lambda spec: SubroutineController(spec.algo),
}


def _build_steering(spec: Tuple) -> Callable:
    """Steering-override factory from a declarative ``("mod-n", 3)`` /
    ``("first-fit",)`` tuple (see the steering ablation benchmark)."""
    from ..clusters.steering import FirstFitSteering, ModNSteering

    kind = spec[0]
    if kind == "mod-n":
        n = spec[1] if len(spec) > 1 else 3
        return lambda clusters: ModNSteering(clusters, n=n)
    if kind == "first-fit":
        return lambda clusters: FirstFitSteering(clusters)
    raise ValueError(f"unknown steering spec {spec!r}")


@dataclass(frozen=True)
class RunSpec:
    """Everything needed to reproduce one simulation run, by value.

    The trace is *not* shipped to workers — they regenerate it from
    ``(profile, trace_length, seed)``, which is deterministic, so a spec
    is a few hundred bytes regardless of trace length.

    ``label`` names the scheme for reporting and is deliberately excluded
    from the cache key: two exhibits that run the same configuration under
    different labels share one cache entry.
    """

    profile: str
    trace_length: int
    seed: int = 7
    config: ProcessorConfig = field(default_factory=ProcessorConfig)
    controller: ControllerSpec = field(default_factory=ControllerSpec)
    warmup: int = DEFAULT_WARMUP
    label: str = ""
    #: optional steering override, e.g. ``("mod-n", 3)`` or ``("first-fit",)``
    steering: Optional[Tuple] = None
    #: when set, run :func:`repro.core.instability.record_intervals` at this
    #: granularity instead of a measured run (the Table 4 recording mode)
    record_granularity: Optional[int] = None
    #: commit-bounded instruction limit (None = whole trace); the facade
    #: vocabulary's ``max_instructions``, counted from the start of the
    #: trace, warmup included
    max_instructions: Optional[int] = None
    #: when set, the worker runs the multiprogrammed co-scheduler instead
    #: of a single-thread simulation; build such specs with
    #: :func:`multiprog_run_spec` so the redundant fields stay consistent
    multiprog: Optional[MultiProgSpec] = None
    #: architectural fault schedule applied to the run; part of the cache
    #: key — a faulted run is a different machine, never interchangeable
    #: with the healthy one
    faults: Optional[FaultSchedule] = None

    def cache_key(self) -> str:
        """Stable content hash of the run's inputs plus the code version."""
        payload = "|".join(
            (
                f"schema={CACHE_SCHEMA_VERSION}",
                f"version={__version__}",
                f"code={_code_digest()}",
                f"profile={self.profile}",
                f"length={self.trace_length}",
                f"seed={self.seed}",
                f"warmup={self.warmup}",
                f"config={self.config!r}",
                f"controller={self.controller!r}",
                f"steering={self.steering!r}",
                f"record={self.record_granularity!r}",
                f"max_instructions={self.max_instructions!r}",
                f"multiprog={self.multiprog!r}",
                f"faults={self.faults!r}",
            )
        )
        return hashlib.sha256(payload.encode()).hexdigest()


#: fields that deliberately do NOT flow into :meth:`RunSpec.cache_key`.
#: Audited by analysis rules K601/K602: adding a field to RunSpec or
#: SweepConfig forces a choice — thread it into the key, or declare it
#: non-semantic here.  A stale or contradictory entry is itself a
#: finding, so this list can only ever shrink behind the code.
CACHE_KEY_EXEMPT: Dict[str, Tuple[str, ...]] = {
    # reporting name only: two exhibits running the same configuration
    # under different labels share one cache entry (see RunSpec docstring)
    "RunSpec": ("label",),
    # execution policy, not simulation semantics: every backend produces
    # bit-identical records (the conformance suite proves it), so none of
    # the runner knobs may ever influence a cached result
    "SweepConfig": (
        "backend", "jobs", "lanes", "batch_size", "cache_dir", "use_cache",
        "timeout", "retries", "retry_backoff", "journal", "resume",
        "poison_threshold", "trace_dir",
    ),
}

_CODE_DIGEST: Optional[str] = None


def _code_digest() -> str:
    """Digest of the ``repro`` package's source files.

    Any edit to the simulator invalidates every cache entry — the paper
    numbers must always come from the code in the tree, never from a stale
    cache.  Computed once per process (~1 MB of source).
    """
    global _CODE_DIGEST
    if _CODE_DIGEST is None:
        package_root = pathlib.Path(__file__).resolve().parent.parent
        digest = hashlib.sha256()
        for path in sorted(package_root.rglob("*.py")):
            digest.update(str(path.relative_to(package_root)).encode())
            digest.update(path.read_bytes())
        _CODE_DIGEST = digest.hexdigest()[:16]
    return _CODE_DIGEST


@dataclass
class RunRecord:
    """Outcome of one sweep entry — success or structured failure.

    ``status="poisoned"`` marks a spec quarantined after repeatedly
    hard-crashing worker processes; it is final and never retried.
    """

    spec: RunSpec
    status: str  # "ok" | "failed" | "timeout" | "poisoned"
    result: Optional[RunResult] = None
    #: interval recording (``record_granularity`` mode) instead of a result
    records: Optional[List[IntervalRecord]] = None
    #: per-thread detail of a multiprogrammed run (``result`` then carries
    #: the aggregate: throughput IPC over global cycles, merged stats)
    multiprog_result: Optional[MultiProgResult] = None
    #: every active-cluster change, in commit order (determinism evidence)
    events: Tuple[Reconfiguration, ...] = ()
    error: str = ""
    attempts: int = 1
    duration: float = 0.0
    from_cache: bool = False
    #: satisfied from a checkpoint journal during a resumed sweep
    from_journal: bool = False

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def relabelled_for(self, spec: RunSpec) -> "RunRecord":
        """A copy of this record carrying ``spec``'s label and identity.

        Cache and journal hits may have been stored by another exhibit
        under a different label; the *copy* keeps the stored record (and
        any other reader of the same entry) unmutated.
        """
        result = self.result
        if result is not None:
            result = dataclasses.replace(result, label=spec.label)
        return dataclasses.replace(self, spec=spec, result=result)


# ----------------------------------------------------------------------
# worker side


#: per-worker-process trace memo; traces are large, so keep only a few
_TRACE_MEMO: Dict[Tuple[str, int, int], object] = {}
_TRACE_MEMO_LIMIT = 8


def _trace_for(profile: str, length: int, seed: int):
    key = (profile, length, seed)
    trace = _TRACE_MEMO.get(key)
    if trace is None:
        trace = generate_trace(get_profile(profile), length, seed)
        if len(_TRACE_MEMO) >= _TRACE_MEMO_LIMIT:
            _TRACE_MEMO.pop(next(iter(_TRACE_MEMO)))
        _TRACE_MEMO[key] = trace
    return trace


class _RunTimeout(Exception):
    pass


def _alarm_handler(signum, frame):  # pragma: no cover - fires asynchronously
    raise _RunTimeout()


def multiprog_run_spec(spec: MultiProgSpec) -> RunSpec:
    """Wrap a :class:`MultiProgSpec` as a sweep-engine :class:`RunSpec`.

    The mirrored scalar fields (profile/length/seed/config) keep cache
    keys, validation bounds, and reporting working unchanged; the worker
    dispatches on ``multiprog`` and ignores them otherwise.
    """
    return RunSpec(
        profile=spec.name,
        trace_length=spec.trace_length,
        seed=spec.seed,
        config=fabric_config(spec),
        warmup=0,
        label=spec.resolved_label(),
        multiprog=spec,
    )


def _run_multiprog_spec(spec: RunSpec) -> RunRecord:
    """Worker-side execution of a multiprogrammed spec."""
    start = time.perf_counter()
    mp = run_multiprog(spec.multiprog)
    stats = mp.stats
    # aggregate view: throughput over *global* cycles; "reconfigurations"
    # counts arbiter actions, the multiprog analogue of cluster changes
    result = RunResult(
        name=mp.name,
        label=spec.label,
        ipc=mp.throughput_ipc,
        committed=mp.committed,
        cycles=mp.cycles,
        mispredict_interval=stats.mispredict_interval,
        avg_active_clusters=(
            stats.owned_cluster_cycles / mp.cycles if mp.cycles else 0.0
        ),
        reconfigurations=stats.arb_grants + stats.arb_reclaims,
        stats=stats,
    )
    return RunRecord(
        spec=spec,
        status="ok",
        result=result,
        multiprog_result=mp,
        duration=time.perf_counter() - start,
    )


def _run_spec(spec: RunSpec) -> RunRecord:
    """Execute one spec (no error handling — see :func:`execute_spec`)."""
    if spec.multiprog is not None:
        return _run_multiprog_spec(spec)
    start = time.perf_counter()
    trace = _trace_for(spec.profile, spec.trace_length, spec.seed)

    if spec.record_granularity is not None:
        from ..core.instability import record_intervals

        records = record_intervals(trace, spec.config, spec.record_granularity)
        return RunRecord(
            spec=spec,
            status="ok",
            records=records,
            duration=time.perf_counter() - start,
        )

    controller = spec.controller.build()
    recorder = TimelineRecorder(controller) if controller is not None else None
    steering = _build_steering(spec.steering) if spec.steering else None
    result = run_trace(
        trace,
        spec.config,
        recorder if recorder is not None else None,
        warmup=spec.warmup,
        label=spec.label,
        steering=steering,
        max_instructions=spec.max_instructions,
        fault_schedule=spec.faults,
    )
    return RunRecord(
        spec=spec,
        status="ok",
        result=result,
        events=tuple(recorder.events) if recorder else (),
        duration=time.perf_counter() - start,
    )


def _validate_record(record: RunRecord) -> None:
    """Sweep-level sanity gate on a finished result.

    A simulation that *completes* but reports NaN or impossible numbers is
    more dangerous than one that crashes — it silently poisons an exhibit.
    Raises :class:`SimulationError` (becoming a structured failure).
    """
    result = record.result
    if result is None:
        return
    width = record.spec.config.front_end.commit_width
    if record.spec.multiprog is not None:
        # aggregate throughput: every thread commits through its own ROB
        width *= len(record.spec.multiprog.workloads)
    if not math.isfinite(result.ipc) or not 0 <= result.ipc <= width:
        raise SimulationError(
            f"result IPC {result.ipc!r} outside sane bounds [0, {width}] "
            f"for {record.spec.profile}"
        )
    if result.committed < 0 or result.cycles <= 0:
        raise SimulationError(
            f"impossible result: {result.committed} committed in "
            f"{result.cycles} cycles for {record.spec.profile}"
        )


def execute_spec(spec: RunSpec, timeout: Optional[float] = None) -> RunRecord:
    """Run one spec, converting any failure into a structured record.

    The per-run timeout is enforced with ``SIGALRM`` inside the worker (so
    a runaway simulation is actually interrupted, not merely abandoned);
    when the signal is unavailable — non-main thread, non-Unix — the run
    proceeds unbounded rather than crashing.
    """
    start = time.perf_counter()
    use_alarm = (
        timeout is not None
        and hasattr(signal, "setitimer")
        and threading.current_thread() is threading.main_thread()
    )
    previous = None
    if use_alarm:
        previous = signal.signal(signal.SIGALRM, _alarm_handler)
        # repeating interval: a raise that lands while a C-invoked frame
        # (e.g. a gc callback) is on the stack is swallowed as
        # "unraisable"; the next tick retries it
        signal.setitimer(signal.ITIMER_REAL, timeout, min(timeout, 0.05))
    try:
        faults.on_execute(spec)
        record = _run_spec(spec)
        faults.poison_record(record)
        _validate_record(record)
        return record
    except _RunTimeout:
        if use_alarm:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
        return RunRecord(
            spec=spec,
            status="timeout",
            error=f"run exceeded {timeout:g}s timeout",
            duration=time.perf_counter() - start,
        )
    except Exception as exc:
        return RunRecord(
            spec=spec,
            status="failed",
            error=f"{type(exc).__name__}: {exc}",
            duration=time.perf_counter() - start,
        )
    finally:
        if use_alarm:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous)


# ----------------------------------------------------------------------
# on-disk result cache


class ResultCache:
    """Content-addressed pickle-per-entry cache under one directory.

    Entries are written atomically (temp file + rename) so concurrent
    sweeps sharing a cache directory cannot observe torn writes.  Each
    entry stores the pickled record alongside its SHA-256, verified
    *before* unpickling — a bit-rotten or truncated payload is evicted up
    front, never fed to the unpickler.  A corrupt or mismatched entry is
    evicted and recomputed, never fatal.
    """

    def __init__(self, directory: Optional[os.PathLike] = None) -> None:
        self.directory = pathlib.Path(directory or default_cache_dir())

    def _path(self, key: str) -> pathlib.Path:
        return self.directory / f"{key}.pkl"

    def get(self, spec: RunSpec) -> Optional[RunRecord]:
        key = spec.cache_key()
        path = self._path(key)
        try:
            with open(path, "rb") as fh:
                payload = pickle.load(fh)
            if payload["schema"] != CACHE_SCHEMA_VERSION or payload["key"] != key:
                raise ValueError("cache entry does not match its key")
            record_bytes = payload["record"]
            if hashlib.sha256(record_bytes).hexdigest() != payload["sha256"]:
                raise ValueError("cache entry failed its checksum (bit rot?)")
            record = pickle.loads(record_bytes)
            if not isinstance(record, RunRecord) or not record.ok:
                raise ValueError("cache entry is not a successful RunRecord")
        except FileNotFoundError:
            return None
        except Exception:
            self.evict(key)
            return None
        # the stored spec may carry another exhibit's label; report ours on
        # a copy, so two exhibits sharing one entry cannot clobber each
        # other's labels
        record = record.relabelled_for(spec)
        record.from_cache = True
        return record

    def put(self, record: RunRecord) -> None:
        if not record.ok:
            return
        key = record.spec.cache_key()
        self.directory.mkdir(parents=True, exist_ok=True)
        record_bytes = pickle.dumps(record)
        payload = {
            "schema": CACHE_SCHEMA_VERSION,
            "key": key,
            "sha256": hashlib.sha256(record_bytes).hexdigest(),
            # fault hook: chaos tests corrupt the payload here to prove the
            # checksum catches it on the way back in (no-op otherwise)
            "record": faults.corrupt_cache_payload(record_bytes),
        }
        fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(payload, fh)
            os.replace(tmp, self._path(key))
        except Exception:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def evict(self, key: str) -> None:
        try:
            os.unlink(self._path(key))
        except OSError:
            pass


def default_cache_dir() -> pathlib.Path:
    env = env_text(CACHE_DIR_ENV)
    if env:
        return pathlib.Path(env)
    return pathlib.Path.home() / ".cache" / "repro"


# ----------------------------------------------------------------------
# metrics


@dataclass
class SweepMetrics:
    """Progress and performance counters for one :class:`SweepRunner`."""

    jobs: int = 1
    submitted: int = 0
    completed: int = 0
    failed: int = 0
    timeouts: int = 0
    retries: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    #: specs satisfied from the checkpoint journal on a resumed sweep
    journal_skips: int = 0
    #: worker-pool respawns after a ``BrokenProcessPool``
    pool_respawns: int = 0
    #: specs quarantined after repeatedly crashing worker processes
    poisoned: int = 0
    #: journal append failures tolerated (read-only journal dir etc.)
    journal_errors: int = 0
    wall_seconds: float = 0.0
    busy_seconds: float = 0.0
    latencies: List[float] = field(default_factory=list)
    #: one entry per completed spec (input order of completion): profile,
    #: label, status, attempts, cache/journal provenance, and wall-clock
    #: positions within the sweep (``end_seconds`` since sweep start,
    #: ``run_seconds`` executing, ``queue_seconds`` waiting for a worker)
    spec_timings: List[Dict] = field(default_factory=list)
    #: execution-backend telemetry: kind, worker/lane inventory, respawn
    #: count, and wall-clock lifecycle events (connect/exit/assignment)
    backend: Dict[str, object] = field(default_factory=dict)

    def latency_percentile(self, pct: float) -> float:
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        idx = min(len(ordered) - 1, int(round((pct / 100.0) * (len(ordered) - 1))))
        return ordered[idx]

    @property
    def p50_seconds(self) -> float:
        return self.latency_percentile(50)

    @property
    def p95_seconds(self) -> float:
        return self.latency_percentile(95)

    @property
    def worker_utilization(self) -> float:
        """Fraction of worker-seconds spent simulating (1.0 = saturated)."""
        if self.wall_seconds <= 0 or self.jobs <= 0:
            return 0.0
        return min(1.0, self.busy_seconds / (self.wall_seconds * self.jobs))

    @property
    def hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def snapshot(self) -> Dict[str, object]:
        """JSON-serializable summary (CI uploads this as an artifact)."""
        return {
            "jobs": self.jobs,
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "timeouts": self.timeouts,
            "retries": self.retries,
            "journal_skips": self.journal_skips,
            "pool_respawns": self.pool_respawns,
            "poisoned": self.poisoned,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": round(self.hit_rate, 4),
            "wall_seconds": round(self.wall_seconds, 4),
            "busy_seconds": round(self.busy_seconds, 4),
            "worker_utilization": round(self.worker_utilization, 4),
            "p50_run_seconds": round(self.p50_seconds, 4),
            "p95_run_seconds": round(self.p95_seconds, 4),
            "specs": list(self.spec_timings),
            "backend": dict(self.backend),
        }


# ----------------------------------------------------------------------
# the runner


def default_jobs() -> int:
    """``REPRO_JOBS`` if set, else ``cpu_count - 1`` (min 1)."""
    jobs = env_int(JOBS_ENV)
    if jobs is not None:
        return max(1, jobs)
    return max(1, (os.cpu_count() or 2) - 1)


#: backoff delays are capped at this many seconds regardless of attempt
MAX_RETRY_BACKOFF = 30.0


@dataclass(frozen=True)
class SweepConfig:
    """Every :class:`SweepRunner` knob, validated, in one place.

    This replaced the runner's grown ``__init__`` kwarg pile; build one
    and pass it as the runner's single positional argument (the facade
    :func:`repro.api.sweep` and the CLI both do).  The old keyword
    spellings still construct one — behind a ``DeprecationWarning`` —
    for one more release.

    ``backend`` selects the execution mechanism:

    * ``"auto"`` (default) — ``REPRO_SWEEP_BACKEND`` if set; else
      ``"distributed"`` when ``lanes`` is given; else ``"batch"`` when
      ``batch_size`` is given; else ``"serial"`` for ``jobs <= 1`` and
      ``"process-pool"`` otherwise.
    * ``"serial"`` / ``"process-pool"`` / ``"distributed"`` /
      ``"batch"`` — explicit.  ``"batch"`` runs ``batch_size``
      simulations per process in lockstep (``docs/BATCHING.md``) and
      composes with ``jobs > 1`` as a pool whose tasks are full batches.
    * an :class:`~repro.experiments.backends.ExecutionBackend` instance —
      escape hatch for tests and custom executors (single-use).

    ``lanes`` is the distributed worker-lane list (``"local,4"``,
    ``"host:port,slots"``, ``;``-separated; default ``REPRO_LANES`` or
    one local lane with ``jobs`` slots).  All backends produce
    bit-identical records for identical specs.
    """

    backend: Union[str, object] = "auto"
    jobs: Optional[int] = None
    lanes: Optional[str] = None
    batch_size: Optional[int] = None
    cache_dir: Optional[os.PathLike] = None
    use_cache: bool = True
    timeout: Optional[float] = None
    retries: int = 1
    retry_backoff: float = 0.0
    journal: Optional[object] = None
    resume: bool = False
    poison_threshold: int = 3
    trace_dir: Optional[os.PathLike] = None

    def __post_init__(self) -> None:
        if isinstance(self.backend, str):
            from .backends import BACKEND_KINDS

            if self.backend not in ("auto",) + BACKEND_KINDS:
                raise ConfigError(
                    f"unknown backend {self.backend!r}; choose from "
                    f"{('auto',) + BACKEND_KINDS} or pass an "
                    "ExecutionBackend instance"
                )
        elif not all(
            callable(getattr(self.backend, method, None))
            for method in ("submit", "drain", "cancel")
        ):
            raise ConfigError(
                f"backend must be a name or an ExecutionBackend, "
                f"got {type(self.backend).__name__}"
            )
        if self.jobs is not None and int(self.jobs) < 0:
            raise ConfigError(f"jobs must be >= 0, got {self.jobs!r}")
        if self.batch_size is not None and int(self.batch_size) < 1:
            raise ConfigError(
                f"batch_size must be >= 1, got {self.batch_size!r}"
            )
        if self.timeout is not None and not float(self.timeout) > 0:
            raise ConfigError(f"timeout must be positive, got {self.timeout!r}")
        if int(self.retries) < 0:
            raise ConfigError(f"retries must be >= 0, got {self.retries!r}")
        if float(self.retry_backoff) < 0:
            raise ConfigError(
                f"retry_backoff must be >= 0, got {self.retry_backoff!r}"
            )
        if int(self.poison_threshold) < 1:
            raise ConfigError(
                f"poison_threshold must be >= 1, got {self.poison_threshold!r}"
            )

    def resolved_jobs(self) -> int:
        """Worker count after defaults (``REPRO_JOBS``/CPU count)."""
        return default_jobs() if self.jobs is None else max(1, int(self.jobs))

    def resolved_lanes(self) -> Optional[str]:
        if self.lanes is not None:
            return self.lanes
        return env_text(LANES_ENV) or None

    def resolved_backend(self) -> Union[str, object]:
        """The concrete backend after ``"auto"`` resolution."""
        if not isinstance(self.backend, str) or self.backend != "auto":
            return self.backend
        env = env_text(BACKEND_ENV)
        if env:
            return env
        if self.resolved_lanes() is not None:
            return "distributed"
        if self.batch_size is not None:
            return "batch"
        return "serial" if self.resolved_jobs() <= 1 else "process-pool"


#: pre-SweepConfig keyword spellings the deprecation shim still maps
_LEGACY_RUNNER_KWARGS = frozenset(
    {
        "jobs", "cache_dir", "use_cache", "timeout", "retries",
        "retry_backoff", "journal", "resume", "poison_threshold",
        "trace_dir",
    }
)


class SweepRunner:
    """Fan independent :class:`RunSpec` runs out across an execution backend.

    The runner owns *policy* — caching, journal/resume, retry with
    backoff, crash counting and quarantine, signal draining, metrics —
    and delegates *mechanism* (actually running specs) to an
    :class:`~repro.experiments.backends.ExecutionBackend` chosen by
    ``config.backend``: in-process serial (the determinism oracle), a
    local process pool, or a TCP-distributed worker fleet.  All three
    yield bit-identical records.

    Construct with a single :class:`SweepConfig`::

        runner = SweepRunner(SweepConfig(jobs=4, use_cache=False))

    ``progress`` (a callable receiving a dict per completed run) stays a
    direct keyword — it is not part of the sweep's declarative identity.
    The pre-``SweepConfig`` keyword pile (``jobs=``, ``use_cache=``,
    ``timeout=``, ...) still works for one release behind a
    ``DeprecationWarning``.

    While ``run()`` executes on the main thread, SIGINT/SIGTERM request a
    *drain*: no new work starts, in-flight runs finish and are journaled,
    then :class:`~repro.errors.SweepInterrupted` is raised carrying the
    completed records.  A second signal aborts immediately.
    """

    def __init__(
        self,
        config: Optional[SweepConfig] = None,
        *,
        progress: Optional[Callable[[Dict], None]] = None,
        **legacy,
    ) -> None:
        if config is not None and not isinstance(config, SweepConfig):
            # positional jobs from the pre-SweepConfig signature
            legacy.setdefault("jobs", config)
            config = None
        if legacy:
            unknown = set(legacy) - _LEGACY_RUNNER_KWARGS
            if unknown:
                raise TypeError(
                    f"SweepRunner got unexpected arguments {sorted(unknown)}; "
                    "pass a SweepConfig"
                )
            warnings.warn(
                "SweepRunner keyword arguments are deprecated; pass a "
                "SweepConfig: SweepRunner(SweepConfig("
                + ", ".join(f"{k}=..." for k in sorted(legacy))
                + "))",
                DeprecationWarning,
                stacklevel=2,
            )
            # normalize the historical permissive spellings before the
            # stricter SweepConfig validation sees them
            if legacy.get("jobs") is not None:
                legacy["jobs"] = max(1, int(legacy["jobs"]))
            if "retries" in legacy:
                legacy["retries"] = max(0, int(legacy["retries"]))
            if "retry_backoff" in legacy:
                legacy["retry_backoff"] = max(0.0, float(legacy["retry_backoff"]))
            if "poison_threshold" in legacy:
                legacy["poison_threshold"] = max(1, int(legacy["poison_threshold"]))
            config = replace(config or SweepConfig(), **legacy)
        self.config = config or SweepConfig()
        self.jobs = self.config.resolved_jobs()
        self.use_cache = self.config.use_cache
        self.cache = ResultCache(self.config.cache_dir) if self.use_cache else None
        self.timeout = self.config.timeout
        self.retries = int(self.config.retries)
        self.retry_backoff = float(self.config.retry_backoff)
        # Fixed-seed RNG: jitter only needs to decorrelate successive
        # retries, and an ambient random.uniform() would make the one
        # nondeterministic corner of the sweep engine (flagged by D101)
        self._backoff_rng = random.Random(0x0B5EED)
        journal = self.config.journal
        if journal is not None and not isinstance(journal, SweepJournal):
            journal = SweepJournal(journal)
        self.journal: Optional[SweepJournal] = journal
        self.resume = self.config.resume
        self.poison_threshold = int(self.config.poison_threshold)
        self.progress = progress
        self.trace_dir = self.config.trace_dir
        self.metrics = SweepMetrics(jobs=self.jobs)
        self._drain_requested = False
        self._journaled_keys: set = set()
        # wall-clock bookkeeping for per-spec timings (relative seconds)
        self._clock0 = time.perf_counter()

    def _make_backend(self):
        """Build (or adopt) the execution backend for one ``run()``."""
        from .backends import ExecutionBackend, create_backend

        resolved = self.config.resolved_backend()
        if isinstance(resolved, ExecutionBackend) or not isinstance(resolved, str):
            return resolved
        backend = create_backend(
            resolved,
            jobs=self.jobs,
            timeout=self.timeout,
            lanes=self.config.resolved_lanes(),
            batch_size=self.config.batch_size,
        )
        # align backend lifecycle timestamps with the sweep's span clock
        log = getattr(backend, "_log", None)
        if log is not None:
            log.clock0 = self._clock0
        return backend

    # ------------------------------------------------------------------
    def run(self, specs: Sequence[RunSpec]) -> List[RunRecord]:
        """Execute every spec; results come back in input order.

        Failures are *returned*, not raised — callers that need a complete
        matrix should check :attr:`RunRecord.ok` (or use
        :func:`require_ok`).
        """
        specs = list(specs)
        start = time.perf_counter()
        self.metrics.submitted += len(specs)
        records: List[Optional[RunRecord]] = [None] * len(specs)
        self._drain_requested = False

        journaled: Dict[str, RunRecord] = {}
        if self.journal is not None and self.resume:
            journaled = self.journal.load_ok()
            self._journaled_keys.update(journaled)

        pending: List[Tuple[int, RunSpec]] = []
        for i, spec in enumerate(specs):
            done = journaled.get(spec.cache_key())
            if done is not None:
                done = done.relabelled_for(spec)
                done.from_journal = True
                records[i] = done
                self.metrics.journal_skips += 1
                self._note_done(done)
                continue
            hit = self.cache.get(spec) if self.cache else None
            if hit is not None:
                records[i] = hit
                self.metrics.cache_hits += 1
                self._journal_append(hit)
                self._note_done(hit)
            else:
                if self.cache:
                    self.metrics.cache_misses += 1
                pending.append((i, spec))

        with self._signal_drain():
            if pending:
                self._execute(pending, records)

        self.metrics.wall_seconds += time.perf_counter() - start
        self._export_trace()
        done_records = [r for r in records if r is not None]
        if self._drain_requested:
            raise SweepInterrupted(
                f"sweep interrupted: {len(done_records)} of {len(specs)} runs "
                "completed and flushed"
                + (" to the journal" if self.journal is not None else ""),
                completed=done_records,
            )
        return done_records

    # ------------------------------------------------------------------
    # signal draining

    def _signal_drain(self):
        """Context manager installing drain-on-SIGINT/SIGTERM handlers.

        Only active on the main thread (signal handlers cannot be
        installed elsewhere); a no-op context otherwise.
        """
        runner = self

        class _Guard:
            def __enter__(self):
                self.previous = []
                if threading.current_thread() is not threading.main_thread():
                    return self
                for signum in (signal.SIGINT, signal.SIGTERM):
                    try:
                        self.previous.append(
                            (signum, signal.signal(signum, runner._on_signal))
                        )
                    except (ValueError, OSError):  # pragma: no cover
                        pass
                return self

            def __exit__(self, *exc):
                for signum, handler in self.previous:
                    signal.signal(signum, handler)
                return False

        return _Guard()

    def _on_signal(self, signum, frame) -> None:
        if self._drain_requested:
            # second signal: the user means it — abort without draining
            raise KeyboardInterrupt
        self._drain_requested = True

    # ------------------------------------------------------------------
    def _finish(self, index: int, record: RunRecord, attempts: int,
                records: List[Optional[RunRecord]],
                queue_seconds: float = 0.0) -> None:
        record.attempts = attempts
        records[index] = record
        if record.ok and self.cache:
            try:
                self.cache.put(record)
            except Exception:
                pass  # a read-only cache dir must not kill the sweep
        self._journal_append(record)
        self._note_done(record, queue_seconds=queue_seconds)

    def _journal_append(self, record: RunRecord) -> None:
        if self.journal is None:
            return
        key = record.spec.cache_key()
        if key in self._journaled_keys and record.ok:
            return  # already durably recorded; avoid bloating the journal
        try:
            self.journal.append(record)
            if record.ok:
                self._journaled_keys.add(key)
        except Exception:
            # a read-only journal dir degrades resume, not the sweep
            self.metrics.journal_errors += 1

    def _note_done(
        self, record: RunRecord, queue_seconds: float = 0.0
    ) -> None:
        m = self.metrics
        m.completed += 1
        if record.status == "failed":
            m.failed += 1
        elif record.status == "timeout":
            m.timeouts += 1
        elif record.status == "poisoned":
            m.poisoned += 1
        if not record.from_cache and not record.from_journal:
            m.busy_seconds += record.duration
            m.latencies.append(record.duration)
        end = time.perf_counter() - self._clock0
        # queue time = time between backend submission and execution that
        # was not spent running (zero for serial/cache/journal completions)
        queue = max(0.0, queue_seconds)
        m.spec_timings.append(
            {
                "profile": record.spec.profile,
                "label": record.spec.label or record.spec.controller.kind,
                "status": record.status,
                "attempts": record.attempts,
                "from_cache": record.from_cache,
                "from_journal": record.from_journal,
                "run_seconds": round(record.duration, 6),
                "queue_seconds": round(queue, 6),
                "end_seconds": round(end, 6),
            }
        )
        if self.progress:
            self.progress(
                {
                    "profile": record.spec.profile,
                    "label": record.spec.label,
                    "status": record.status,
                    "from_cache": record.from_cache,
                    "duration": record.duration,
                    "completed": m.completed,
                    "total": m.submitted,
                }
            )

    def _export_trace(self) -> None:
        """Write ``sweep_metrics.json`` + ``sweep_trace.json`` to trace_dir.

        The trace holds one Chrome-trace span per *executed* run (cache and
        journal hits took no worker time), lane-packed by wall-clock overlap
        so Perfetto shows worker-pool utilization directly.
        """
        if self.trace_dir is None:
            return
        import json

        from ..observability.exporters import spans_chrome_trace

        directory = pathlib.Path(self.trace_dir)
        directory.mkdir(parents=True, exist_ok=True)
        with open(directory / "sweep_metrics.json", "w", encoding="utf-8") as fh:
            json.dump(self.metrics.snapshot(), fh, indent=2)
        spans = [
            {
                "name": f"{timing['profile']}/{timing['label']}",
                "start": max(0.0, timing["end_seconds"] - timing["run_seconds"]),
                "end": timing["end_seconds"],
                "args": {
                    "status": timing["status"],
                    "attempts": timing["attempts"],
                    "queue_seconds": timing["queue_seconds"],
                },
            }
            for timing in self.metrics.spec_timings
            if not timing["from_cache"] and not timing["from_journal"]
        ]
        trace = spans_chrome_trace(spans)
        # backend lifecycle (worker spawn/connect/death, lane assignments)
        # as Perfetto instant events on a dedicated pseudo-thread
        for event in self.metrics.backend.get("events", ()):
            details = {k: v for k, v in event.items() if k not in ("event", "t")}
            trace["traceEvents"].append(
                {
                    "name": str(event.get("event", "backend")),
                    "ph": "i",
                    "ts": int(float(event.get("t", 0.0)) * 1e6),
                    "pid": 0,
                    "tid": 999,
                    "s": "p",
                    "args": details,
                }
            )
        with open(directory / "sweep_trace.json", "w", encoding="utf-8") as fh:
            json.dump(trace, fh)

    def _backoff(self, attempt: int) -> None:
        """Exponential backoff with full jitter before retry ``attempt+1``."""
        if self.retry_backoff <= 0:
            return
        ceiling = min(
            self.retry_backoff * (2 ** max(0, attempt - 1)), MAX_RETRY_BACKOFF
        )
        time.sleep(self._backoff_rng.uniform(0, ceiling))

    def _execute(self, pending, records) -> None:
        """Run ``pending`` specs through the execution backend.

        The backend supplies mechanism (and ``crashed=True`` attribution:
        a crashed completion means the spec provably killed its worker);
        this loop supplies policy — retry with backoff, crash counting
        and quarantine at ``poison_threshold``, and drain-on-signal
        (queued work is cancelled, in-flight work completes and is
        journaled).
        """
        backend = self._make_backend()
        attempts: Dict[int, int] = {}
        crashes: Dict[int, int] = {}
        outstanding = 0
        cancelled = False
        try:
            backend.start()
            for index, spec in pending:
                backend.submit(index, spec)
                outstanding += 1
            while outstanding:
                if self._drain_requested and not cancelled:
                    outstanding -= len(backend.cancel())
                    cancelled = True
                    continue
                completions = backend.drain()
                if not completions:
                    if outstanding:  # pragma: no cover - defensive
                        raise BackendError(
                            f"backend {backend.kind!r} lost track of "
                            f"{outstanding} outstanding spec(s)"
                        )
                    break
                for done in completions:
                    outstanding -= 1
                    index, spec = done.index, done.spec
                    if done.dropped:
                        continue  # discarded during a drain; slot stays empty
                    if done.crashed:
                        crashes[index] = crashes.get(index, 0) + 1
                        if self._drain_requested:
                            continue  # draining: crashers are not re-probed
                        if crashes[index] >= self.poison_threshold:
                            self._finish(
                                index,
                                RunRecord(
                                    spec=spec,
                                    status="poisoned",
                                    error=(
                                        "crashed the worker process "
                                        f"{crashes[index]} times; quarantined"
                                    ),
                                ),
                                attempts.get(index, 0) + crashes[index],
                                records,
                            )
                            continue
                        backend.submit(index, spec, solo=True)
                        outstanding += 1
                        continue
                    record = done.record
                    attempts[index] = attempts.get(index, 0) + 1
                    if (
                        not record.ok
                        and attempts[index] <= self.retries
                        and not self._drain_requested
                    ):
                        self.metrics.retries += 1
                        self._backoff(attempts[index])
                        backend.submit(index, spec)
                        outstanding += 1
                        continue
                    self._finish(
                        index, record, attempts[index], records,
                        queue_seconds=done.queue_seconds,
                    )
        finally:
            info = {}
            try:
                info = backend.stats()
            except Exception:  # pragma: no cover - telemetry must not kill
                pass
            backend.close()
            self.metrics.pool_respawns += int(info.get("respawns", 0) or 0)
            workers = info.get("workers")
            if workers:  # utilization denominator: real worker slots
                self.metrics.jobs = max(self.metrics.jobs, int(workers))
            self.metrics.backend = info


def require_ok(records: Sequence[RunRecord]) -> List[RunRecord]:
    """Raise :class:`~repro.errors.SweepError` (listing every structured
    failure, with all records attached) if any record is not ok."""
    bad = [r for r in records if not r.ok]
    if bad:
        lines = [
            f"  {r.spec.profile}/{r.spec.label or r.spec.controller.kind}: "
            f"{r.status} after {r.attempts} attempt(s) — {r.error}"
            for r in bad
        ]
        raise SweepError(
            f"{len(bad)} of {len(records)} sweep runs failed:\n" + "\n".join(lines),
            records=records,
        )
    return list(records)
