"""Parallel sweep engine with content-hashed result caching.

Every paper exhibit is a matrix of *independent* single-configuration
simulations, which makes the whole reproduction embarrassingly parallel.
This module supplies the machinery the exhibits (and the benchmark
harness) fan out on:

* :class:`RunSpec` / :class:`ControllerSpec` — fully declarative, picklable
  descriptions of one run.  Workers rebuild the trace and the controller
  from the spec, so nothing stateful ever crosses a process boundary and a
  parallel sweep is bit-identical to the serial loop it replaced.
* :class:`ResultCache` — a content-addressed on-disk cache keyed by a
  stable hash of the trace-generation parameters, the
  :class:`~repro.config.ProcessorConfig`, the controller spec, and a digest
  of the simulator's own source tree (so editing the code invalidates
  everything automatically).
* :class:`SweepRunner` — fans specs out across a ``ProcessPoolExecutor``
  with per-run timeout and retry, records structured failures instead of
  crashing the sweep, and exposes progress/latency/utilization metrics.

Determinism is the design constraint: ``SweepRunner(jobs=4)`` must produce
the same :class:`~repro.stats.SimStats` as ``jobs=1`` and as the plain
``run_trace`` loop, for the same seeds.
"""

from __future__ import annotations

import hashlib
import os
import pathlib
import pickle
import signal
import tempfile
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..config import ProcessorConfig
from ..core import (
    DistantILPController,
    ExploreConfig,
    FineGrainConfig,
    FineGrainController,
    IntervalExploreController,
    NoExploreConfig,
    StaticController,
    SubroutineController,
)
from ..stats import IntervalRecord
from ..workloads.generator import generate_trace
from ..workloads.profiles import get_profile
from .runner import DEFAULT_WARMUP, RunResult, run_trace
from .timeline import Reconfiguration, TimelineRecorder

#: environment knob: cache directory (default ``~/.cache/repro``)
CACHE_DIR_ENV = "REPRO_CACHE_DIR"
#: environment knob: default worker count for CLI/benchmark sweeps
JOBS_ENV = "REPRO_JOBS"

#: bump when the cached payload layout changes
CACHE_SCHEMA_VERSION = 1


# ----------------------------------------------------------------------
# declarative run descriptions


@dataclass(frozen=True)
class ControllerSpec:
    """A picklable recipe for a reconfiguration controller.

    Controllers are stateful objects, so the sweep ships this declarative
    description instead and every worker builds a fresh instance — the same
    reason :mod:`repro.experiments.figures` used factory callables before.

    ``kind`` is one of ``none``, ``static``, ``explore``, ``no-explore``,
    ``finegrain``, ``subroutine``; ``algo`` carries the (frozen, hashable)
    algorithm-constant dataclass where one applies.
    """

    kind: str = "none"
    clusters: Optional[int] = None
    algo: Optional[object] = None

    def __post_init__(self) -> None:
        if self.kind not in _CONTROLLER_BUILDERS:
            raise ValueError(
                f"unknown controller kind {self.kind!r}; "
                f"choose from {sorted(_CONTROLLER_BUILDERS)}"
            )
        if self.kind == "static" and not self.clusters:
            raise ValueError("static controller spec needs a cluster count")

    # -- convenience constructors ---------------------------------------
    @classmethod
    def none(cls) -> "ControllerSpec":
        return cls("none")

    @classmethod
    def static(cls, clusters: int) -> "ControllerSpec":
        return cls("static", clusters=clusters)

    @classmethod
    def explore(cls, algo: Optional[ExploreConfig] = None) -> "ControllerSpec":
        return cls("explore", algo=algo or ExploreConfig.scaled())

    @classmethod
    def no_explore(cls, algo: Optional[NoExploreConfig] = None) -> "ControllerSpec":
        return cls("no-explore", algo=algo or NoExploreConfig.scaled())

    @classmethod
    def finegrain(cls, algo: Optional[FineGrainConfig] = None) -> "ControllerSpec":
        return cls("finegrain", algo=algo or FineGrainConfig())

    @classmethod
    def subroutine(cls, algo: Optional[FineGrainConfig] = None) -> "ControllerSpec":
        return cls("subroutine", algo=algo)

    def build(self):
        """A fresh controller instance (or ``None`` for ``kind='none'``)."""
        return _CONTROLLER_BUILDERS[self.kind](self)


_CONTROLLER_BUILDERS: Dict[str, Callable[[ControllerSpec], object]] = {
    "none": lambda spec: None,
    "static": lambda spec: StaticController(spec.clusters),
    "explore": lambda spec: IntervalExploreController(spec.algo),
    "no-explore": lambda spec: DistantILPController(spec.algo),
    "finegrain": lambda spec: FineGrainController(spec.algo),
    "subroutine": lambda spec: SubroutineController(spec.algo),
}


def _build_steering(spec: Tuple) -> Callable:
    """Steering-override factory from a declarative ``("mod-n", 3)`` /
    ``("first-fit",)`` tuple (see the steering ablation benchmark)."""
    from ..clusters.steering import FirstFitSteering, ModNSteering

    kind = spec[0]
    if kind == "mod-n":
        n = spec[1] if len(spec) > 1 else 3
        return lambda clusters: ModNSteering(clusters, n=n)
    if kind == "first-fit":
        return lambda clusters: FirstFitSteering(clusters)
    raise ValueError(f"unknown steering spec {spec!r}")


@dataclass(frozen=True)
class RunSpec:
    """Everything needed to reproduce one simulation run, by value.

    The trace is *not* shipped to workers — they regenerate it from
    ``(profile, trace_length, seed)``, which is deterministic, so a spec
    is a few hundred bytes regardless of trace length.

    ``label`` names the scheme for reporting and is deliberately excluded
    from the cache key: two exhibits that run the same configuration under
    different labels share one cache entry.
    """

    profile: str
    trace_length: int
    seed: int = 7
    config: ProcessorConfig = field(default_factory=ProcessorConfig)
    controller: ControllerSpec = field(default_factory=ControllerSpec)
    warmup: int = DEFAULT_WARMUP
    label: str = ""
    #: optional steering override, e.g. ``("mod-n", 3)`` or ``("first-fit",)``
    steering: Optional[Tuple] = None
    #: when set, run :func:`repro.core.instability.record_intervals` at this
    #: granularity instead of a measured run (the Table 4 recording mode)
    record_granularity: Optional[int] = None

    def cache_key(self) -> str:
        """Stable content hash of the run's inputs plus the code version."""
        import repro  # deferred: the package root imports this module

        payload = "|".join(
            (
                f"schema={CACHE_SCHEMA_VERSION}",
                f"version={repro.__version__}",
                f"code={_code_digest()}",
                f"profile={self.profile}",
                f"length={self.trace_length}",
                f"seed={self.seed}",
                f"warmup={self.warmup}",
                f"config={self.config!r}",
                f"controller={self.controller!r}",
                f"steering={self.steering!r}",
                f"record={self.record_granularity!r}",
            )
        )
        return hashlib.sha256(payload.encode()).hexdigest()


_CODE_DIGEST: Optional[str] = None


def _code_digest() -> str:
    """Digest of the ``repro`` package's source files.

    Any edit to the simulator invalidates every cache entry — the paper
    numbers must always come from the code in the tree, never from a stale
    cache.  Computed once per process (~1 MB of source).
    """
    global _CODE_DIGEST
    if _CODE_DIGEST is None:
        package_root = pathlib.Path(__file__).resolve().parent.parent
        digest = hashlib.sha256()
        for path in sorted(package_root.rglob("*.py")):
            digest.update(str(path.relative_to(package_root)).encode())
            digest.update(path.read_bytes())
        _CODE_DIGEST = digest.hexdigest()[:16]
    return _CODE_DIGEST


@dataclass
class RunRecord:
    """Outcome of one sweep entry — success or structured failure."""

    spec: RunSpec
    status: str  # "ok" | "failed" | "timeout"
    result: Optional[RunResult] = None
    #: interval recording (``record_granularity`` mode) instead of a result
    records: Optional[List[IntervalRecord]] = None
    #: every active-cluster change, in commit order (determinism evidence)
    events: Tuple[Reconfiguration, ...] = ()
    error: str = ""
    attempts: int = 1
    duration: float = 0.0
    from_cache: bool = False

    @property
    def ok(self) -> bool:
        return self.status == "ok"


# ----------------------------------------------------------------------
# worker side


#: per-worker-process trace memo; traces are large, so keep only a few
_TRACE_MEMO: Dict[Tuple[str, int, int], object] = {}
_TRACE_MEMO_LIMIT = 8


def _trace_for(profile: str, length: int, seed: int):
    key = (profile, length, seed)
    trace = _TRACE_MEMO.get(key)
    if trace is None:
        trace = generate_trace(get_profile(profile), length, seed)
        if len(_TRACE_MEMO) >= _TRACE_MEMO_LIMIT:
            _TRACE_MEMO.pop(next(iter(_TRACE_MEMO)))
        _TRACE_MEMO[key] = trace
    return trace


class _RunTimeout(Exception):
    pass


def _alarm_handler(signum, frame):  # pragma: no cover - fires asynchronously
    raise _RunTimeout()


def _run_spec(spec: RunSpec) -> RunRecord:
    """Execute one spec (no error handling — see :func:`execute_spec`)."""
    start = time.perf_counter()
    trace = _trace_for(spec.profile, spec.trace_length, spec.seed)

    if spec.record_granularity is not None:
        from ..core.instability import record_intervals

        records = record_intervals(trace, spec.config, spec.record_granularity)
        return RunRecord(
            spec=spec,
            status="ok",
            records=records,
            duration=time.perf_counter() - start,
        )

    controller = spec.controller.build()
    recorder = TimelineRecorder(controller) if controller is not None else None
    steering = _build_steering(spec.steering) if spec.steering else None
    result = run_trace(
        trace,
        spec.config,
        recorder if recorder is not None else None,
        warmup=spec.warmup,
        label=spec.label,
        steering=steering,
    )
    return RunRecord(
        spec=spec,
        status="ok",
        result=result,
        events=tuple(recorder.events) if recorder else (),
        duration=time.perf_counter() - start,
    )


def execute_spec(spec: RunSpec, timeout: Optional[float] = None) -> RunRecord:
    """Run one spec, converting any failure into a structured record.

    The per-run timeout is enforced with ``SIGALRM`` inside the worker (so
    a runaway simulation is actually interrupted, not merely abandoned);
    when the signal is unavailable — non-main thread, non-Unix — the run
    proceeds unbounded rather than crashing.
    """
    start = time.perf_counter()
    use_alarm = (
        timeout is not None
        and hasattr(signal, "setitimer")
        and threading.current_thread() is threading.main_thread()
    )
    previous = None
    if use_alarm:
        previous = signal.signal(signal.SIGALRM, _alarm_handler)
        signal.setitimer(signal.ITIMER_REAL, timeout)
    try:
        return _run_spec(spec)
    except _RunTimeout:
        return RunRecord(
            spec=spec,
            status="timeout",
            error=f"run exceeded {timeout:g}s timeout",
            duration=time.perf_counter() - start,
        )
    except Exception as exc:
        return RunRecord(
            spec=spec,
            status="failed",
            error=f"{type(exc).__name__}: {exc}",
            duration=time.perf_counter() - start,
        )
    finally:
        if use_alarm:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous)


# ----------------------------------------------------------------------
# on-disk result cache


class ResultCache:
    """Content-addressed pickle-per-entry cache under one directory.

    Entries are written atomically (temp file + rename) so concurrent
    sweeps sharing a cache directory cannot observe torn writes; a corrupt
    or mismatched entry is evicted and recomputed, never fatal.
    """

    def __init__(self, directory: Optional[os.PathLike] = None) -> None:
        self.directory = pathlib.Path(directory or default_cache_dir())

    def _path(self, key: str) -> pathlib.Path:
        return self.directory / f"{key}.pkl"

    def get(self, spec: RunSpec) -> Optional[RunRecord]:
        key = spec.cache_key()
        path = self._path(key)
        try:
            with open(path, "rb") as fh:
                payload = pickle.load(fh)
            if payload["schema"] != CACHE_SCHEMA_VERSION or payload["key"] != key:
                raise ValueError("cache entry does not match its key")
            record: RunRecord = payload["record"]
            if not isinstance(record, RunRecord) or not record.ok:
                raise ValueError("cache entry is not a successful RunRecord")
        except FileNotFoundError:
            return None
        except Exception:
            self.evict(key)
            return None
        # the stored spec may carry another exhibit's label; report ours
        record.spec = spec
        record.from_cache = True
        if record.result is not None:
            record.result.label = spec.label
        return record

    def put(self, record: RunRecord) -> None:
        if not record.ok:
            return
        key = record.spec.cache_key()
        self.directory.mkdir(parents=True, exist_ok=True)
        payload = {"schema": CACHE_SCHEMA_VERSION, "key": key, "record": record}
        fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(payload, fh)
            os.replace(tmp, self._path(key))
        except Exception:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def evict(self, key: str) -> None:
        try:
            os.unlink(self._path(key))
        except OSError:
            pass


def default_cache_dir() -> pathlib.Path:
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return pathlib.Path(env)
    return pathlib.Path.home() / ".cache" / "repro"


# ----------------------------------------------------------------------
# metrics


@dataclass
class SweepMetrics:
    """Progress and performance counters for one :class:`SweepRunner`."""

    jobs: int = 1
    submitted: int = 0
    completed: int = 0
    failed: int = 0
    timeouts: int = 0
    retries: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    wall_seconds: float = 0.0
    busy_seconds: float = 0.0
    latencies: List[float] = field(default_factory=list)

    def latency_percentile(self, pct: float) -> float:
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        idx = min(len(ordered) - 1, int(round((pct / 100.0) * (len(ordered) - 1))))
        return ordered[idx]

    @property
    def p50_seconds(self) -> float:
        return self.latency_percentile(50)

    @property
    def p95_seconds(self) -> float:
        return self.latency_percentile(95)

    @property
    def worker_utilization(self) -> float:
        """Fraction of worker-seconds spent simulating (1.0 = saturated)."""
        if self.wall_seconds <= 0 or self.jobs <= 0:
            return 0.0
        return min(1.0, self.busy_seconds / (self.wall_seconds * self.jobs))

    @property
    def hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def snapshot(self) -> Dict[str, float]:
        """JSON-serializable summary (CI uploads this as an artifact)."""
        return {
            "jobs": self.jobs,
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "timeouts": self.timeouts,
            "retries": self.retries,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": round(self.hit_rate, 4),
            "wall_seconds": round(self.wall_seconds, 4),
            "busy_seconds": round(self.busy_seconds, 4),
            "worker_utilization": round(self.worker_utilization, 4),
            "p50_run_seconds": round(self.p50_seconds, 4),
            "p95_run_seconds": round(self.p95_seconds, 4),
        }


# ----------------------------------------------------------------------
# the runner


def default_jobs() -> int:
    """``REPRO_JOBS`` if set, else ``cpu_count - 1`` (min 1)."""
    env = os.environ.get(JOBS_ENV)
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return max(1, (os.cpu_count() or 2) - 1)


class SweepRunner:
    """Fan independent :class:`RunSpec` runs out across worker processes.

    ``jobs=1`` (or 0) runs everything in-process — no pool, no pickling —
    which is also the reference path for the determinism guarantee.

    Parameters
    ----------
    jobs:
        Worker processes; default :func:`default_jobs`.
    cache_dir / use_cache:
        Result cache location (``REPRO_CACHE_DIR`` or ``~/.cache/repro``)
        and whether to consult it at all.
    timeout:
        Per-run wall-clock limit in seconds (``None`` = unbounded).
    retries:
        Extra attempts per failed/timed-out run before recording the
        structured failure.
    progress:
        Optional callable invoked after every completed run with a dict
        (``profile``, ``label``, ``status``, ``from_cache``, ``duration``,
        ``completed``, ``total``).
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        cache_dir: Optional[os.PathLike] = None,
        use_cache: bool = True,
        timeout: Optional[float] = None,
        retries: int = 1,
        progress: Optional[Callable[[Dict], None]] = None,
    ) -> None:
        self.jobs = default_jobs() if jobs is None else max(1, int(jobs))
        self.use_cache = use_cache
        self.cache = ResultCache(cache_dir) if use_cache else None
        self.timeout = timeout
        self.retries = max(0, int(retries))
        self.progress = progress
        self.metrics = SweepMetrics(jobs=self.jobs)

    # ------------------------------------------------------------------
    def run(self, specs: Sequence[RunSpec]) -> List[RunRecord]:
        """Execute every spec; results come back in input order.

        Failures are *returned*, not raised — callers that need a complete
        matrix should check :attr:`RunRecord.ok` (or use
        :func:`require_ok`).
        """
        specs = list(specs)
        start = time.perf_counter()
        self.metrics.submitted += len(specs)
        records: List[Optional[RunRecord]] = [None] * len(specs)

        pending: List[Tuple[int, RunSpec]] = []
        for i, spec in enumerate(specs):
            hit = self.cache.get(spec) if self.cache else None
            if hit is not None:
                records[i] = hit
                self.metrics.cache_hits += 1
                self._note_done(hit)
            else:
                if self.cache:
                    self.metrics.cache_misses += 1
                pending.append((i, spec))

        if pending:
            if self.jobs <= 1:
                self._run_serial(pending, records)
            else:
                self._run_parallel(pending, records)

        self.metrics.wall_seconds += time.perf_counter() - start
        return [r for r in records if r is not None]

    # ------------------------------------------------------------------
    def _finish(self, index: int, record: RunRecord, attempts: int,
                records: List[Optional[RunRecord]]) -> None:
        record.attempts = attempts
        records[index] = record
        if record.ok and self.cache:
            try:
                self.cache.put(record)
            except Exception:
                pass  # a read-only cache dir must not kill the sweep
        self._note_done(record)

    def _note_done(self, record: RunRecord) -> None:
        m = self.metrics
        m.completed += 1
        if record.status == "failed":
            m.failed += 1
        elif record.status == "timeout":
            m.timeouts += 1
        if not record.from_cache:
            m.busy_seconds += record.duration
            m.latencies.append(record.duration)
        if self.progress:
            self.progress(
                {
                    "profile": record.spec.profile,
                    "label": record.spec.label,
                    "status": record.status,
                    "from_cache": record.from_cache,
                    "duration": record.duration,
                    "completed": m.completed,
                    "total": m.submitted,
                }
            )

    def _run_serial(self, pending, records) -> None:
        for index, spec in pending:
            attempts = 0
            while True:
                attempts += 1
                record = execute_spec(spec, self.timeout)
                if record.ok or attempts > self.retries:
                    break
                self.metrics.retries += 1
            self._finish(index, record, attempts, records)

    def _run_parallel(self, pending, records) -> None:
        attempts: Dict[int, int] = {}
        with ProcessPoolExecutor(max_workers=self.jobs) as pool:
            futures = {
                pool.submit(execute_spec, spec, self.timeout): (index, spec)
                for index, spec in pending
            }
            while futures:
                done, _ = wait(futures, return_when=FIRST_COMPLETED)
                for future in done:
                    index, spec = futures.pop(future)
                    attempts[index] = attempts.get(index, 0) + 1
                    try:
                        record = future.result()
                    except Exception as exc:  # pool-level failure
                        record = RunRecord(
                            spec=spec,
                            status="failed",
                            error=f"{type(exc).__name__}: {exc}",
                        )
                    if not record.ok and attempts[index] <= self.retries:
                        self.metrics.retries += 1
                        futures[pool.submit(execute_spec, spec, self.timeout)] = (
                            index,
                            spec,
                        )
                        continue
                    self._finish(index, record, attempts[index], records)


def require_ok(records: Sequence[RunRecord]) -> List[RunRecord]:
    """Raise with every structured failure if any record is not ok."""
    bad = [r for r in records if not r.ok]
    if bad:
        lines = [
            f"  {r.spec.profile}/{r.spec.label or r.spec.controller.kind}: "
            f"{r.status} after {r.attempts} attempt(s) — {r.error}"
            for r in bad
        ]
        raise RuntimeError(
            f"{len(bad)} of {len(records)} sweep runs failed:\n" + "\n".join(lines)
        )
    return list(records)
