"""Crash-safe checkpoint journal for sweeps.

A :class:`SweepJournal` is an append-only JSONL file recording every
*final* :class:`~repro.experiments.sweep.RunRecord` of a sweep — successes
and structured failures alike.  Each line is::

    {"schema": 1, "key": <spec cache key>, "status": "ok",
     "sha256": <hex digest of payload>, "payload": <base64 pickle>}

Appends are atomic at the line level (one ``write`` call) and fsync'd, so
a sweep killed at any instant — including mid-append — leaves at worst one
truncated final line, which :meth:`load` skips.  The journal key is the
spec's content hash, which covers the simulator source digest: resuming
after a code edit re-runs everything instead of resurrecting stale
results.

Resume semantics: :meth:`load_ok` returns only successful records.
Failed/timed-out/poisoned lines are kept for the post-mortem but are *not*
skipped on resume — a resumed sweep re-attempts them (a crash or timeout
is often environmental, and re-running is exactly what resume is for).
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import pathlib
import pickle
from typing import Dict, Optional

#: bump when the line layout changes
JOURNAL_SCHEMA_VERSION = 1


class SweepJournal:
    """Append-only JSONL journal of completed sweep runs."""

    def __init__(self, path: os.PathLike) -> None:
        self.path = pathlib.Path(path)
        #: lines that failed to parse/verify during the last :meth:`load`
        self.corrupt_lines = 0

    # ------------------------------------------------------------------
    def append(self, record) -> None:
        """Durably append one final record (atomic line write + fsync)."""
        payload = pickle.dumps(record)
        line = (
            json.dumps(
                {
                    "schema": JOURNAL_SCHEMA_VERSION,
                    "key": record.spec.cache_key(),
                    "status": record.status,
                    "sha256": hashlib.sha256(payload).hexdigest(),
                    "payload": base64.b64encode(payload).decode("ascii"),
                }
            )
            + "\n"
        )
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="ascii") as fh:
            fh.write(line)
            fh.flush()
            os.fsync(fh.fileno())

    # ------------------------------------------------------------------
    def load(self) -> Dict[str, object]:
        """Every verifiable journaled record, keyed by spec cache key.

        Corrupt, truncated, or checksum-mismatched lines are counted in
        :attr:`corrupt_lines` and skipped — never fatal.  Later lines win
        when a key repeats (e.g. a failure later re-run to success).
        """
        self.corrupt_lines = 0
        records: Dict[str, object] = {}
        try:
            with open(self.path, "r", encoding="ascii") as fh:
                lines = fh.readlines()
        except OSError:
            return records
        for line in lines:
            record = self._parse_line(line)
            if record is None:
                if line.strip():
                    self.corrupt_lines += 1
                continue
            key, rec = record
            records[key] = rec
        return records

    def load_ok(self) -> Dict[str, object]:
        """Only the successful records — what a resumed sweep skips."""
        return {k: r for k, r in self.load().items() if getattr(r, "ok", False)}

    def _parse_line(self, line: str) -> Optional[tuple]:
        from .sweep import RunRecord  # deferred: sweep imports this module

        try:
            entry = json.loads(line)
            if entry["schema"] != JOURNAL_SCHEMA_VERSION:
                return None
            payload = base64.b64decode(entry["payload"], validate=True)
            if hashlib.sha256(payload).hexdigest() != entry["sha256"]:
                return None
            record = pickle.loads(payload)
            if not isinstance(record, RunRecord):
                return None
            if record.spec.cache_key() != entry["key"]:
                return None
            return entry["key"], record
        except Exception:
            return None
