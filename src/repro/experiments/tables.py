"""Table 3 (benchmark characterization) and Table 4 (instability) exhibits."""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence

from ..config import default_config, monolithic_config
from ..core.instability import InstabilityProfile, instability_profile
from ..core.phase import PhaseDetectConfig
from ..workloads.profiles import BENCHMARK_NAMES, PAPER_TABLE3, PAPER_TABLE4
from .reporting import format_table
from .runner import RunResult, scaled_length
from .sweep import ControllerSpec, RunSpec, SweepConfig, SweepRunner, require_ok


def table3(
    benchmarks: Sequence[str] = BENCHMARK_NAMES,
    trace_length: Optional[int] = None,
    runner: Optional[SweepRunner] = None,
) -> Dict[str, RunResult]:
    """Monolithic-baseline IPC and mispredict interval per benchmark."""
    runner = runner or SweepRunner(SweepConfig(jobs=1, use_cache=False))
    length = trace_length if trace_length is not None else scaled_length()
    specs = [
        RunSpec(
            profile=bench,
            trace_length=length,
            config=monolithic_config(),
            controller=ControllerSpec.none(),
            label="mono",
        )
        for bench in benchmarks
    ]
    records = require_ok(runner.run(specs))
    return {record.spec.profile: record.result for record in records}


def print_table3(results: Mapping[str, RunResult]) -> str:
    rows = []
    for bench in sorted(results):
        r = results[bench]
        paper_ipc, paper_interval = PAPER_TABLE3[bench]
        rows.append(
            [bench, r.ipc, paper_ipc, r.mispredict_interval, paper_interval]
        )
    return format_table(
        ["benchmark", "base IPC", "paper IPC", "mispred interval", "paper interval"],
        rows,
        "Table 3: monolithic baseline characterization",
    )


def table4(
    benchmarks: Sequence[str] = BENCHMARK_NAMES,
    trace_length: Optional[int] = None,
    granularity: int = 500,
    factors: Sequence[int] = (1, 2, 4, 8, 16, 32),
    detect: Optional[PhaseDetectConfig] = None,
    runner: Optional[SweepRunner] = None,
) -> Dict[str, InstabilityProfile]:
    """Instability factor vs interval length per benchmark (Table 4).

    One fine-grained recording per benchmark is reanalysed offline at every
    interval length, exactly as the paper does.  The paper's interval
    lengths (10K-40M over billions of instructions) scale here to multiples
    of ``granularity`` over laptop traces; the IPC significance tolerance is
    widened to the scaled controllers' 20% because sub-1K-instruction
    windows measure IPC with far more sampling noise than the paper's.

    The per-benchmark recordings are independent simulations, so they fan
    out through the sweep runner too (``record_granularity`` mode); only
    the cheap offline reanalysis stays in-process.
    """
    detect = detect or PhaseDetectConfig(ipc_tolerance=0.20)
    runner = runner or SweepRunner(SweepConfig(jobs=1, use_cache=False))
    length = trace_length if trace_length is not None else scaled_length()
    specs = [
        RunSpec(
            profile=bench,
            trace_length=length,
            config=default_config(16),
            label="record",
            record_granularity=granularity,
        )
        for bench in benchmarks
    ]
    records = require_ok(runner.run(specs))
    return {
        record.spec.profile: instability_profile(
            record.records, granularity, factors, detect
        )
        for record in records
    }


def print_table4(profiles: Mapping[str, InstabilityProfile], threshold: float = 0.05) -> str:
    lengths = sorted({l for p in profiles.values() for l in p.factors})
    headers = ["benchmark"] + [str(l) for l in lengths] + ["min acceptable", "paper min"]
    rows = []
    for bench in sorted(profiles):
        profile = profiles[bench]
        min_ok = profile.minimum_acceptable_interval(threshold)
        paper_min, _ = PAPER_TABLE4[bench]
        row = [bench]
        for l in lengths:
            f = profile.factors.get(l)
            row.append("-" if f is None else f"{100 * f:.0f}%")
        row.append(str(min_ok) if min_ok else f">{lengths[-1]}")
        row.append(str(paper_min))
        rows.append(row)
    return format_table(
        headers, rows,
        "Table 4: instability factor by interval length (instructions)",
    )
