"""One entry point per paper exhibit (Figures 3, 5, 6, 7, 8 and the
Section 4/5/6 text numbers).

Each ``figure*`` function returns ``{benchmark: {scheme: RunResult}}`` and
has a matching ``print_*`` helper used by the benchmark harness.  Schemes
are declarative :class:`~repro.experiments.sweep.ControllerSpec` recipes so
every run gets a fresh controller — and so the whole matrix can fan out
across a :class:`~repro.experiments.sweep.SweepRunner` worker pool; pass
``runner=`` to parallelize or cache (the default is the serial, uncached
reference path, which is bit-identical by construction).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..config import (
    ClusterConfig,
    ProcessorConfig,
    decentralized_config,
    default_config,
    grid_config,
    ring_of_rings_config,
    torus_config,
)
from ..core import ExploreConfig, NoExploreConfig
from ..workloads.profiles import BENCHMARK_NAMES
from .reporting import geomean, ipc_table
from .runner import DEFAULT_SEED, RunResult, scaled_length
from .sweep import ControllerSpec, RunSpec, SweepConfig, SweepRunner, require_ok

#: the two base cases shown in every results figure of the paper
BASE_SCHEMES = ("static-4", "static-16")


def _serial_runner() -> SweepRunner:
    """The reference path: in-process, no cache, no pool."""
    return SweepRunner(SweepConfig(backend="serial", use_cache=False))


def _standard_schemes() -> Dict[str, ControllerSpec]:
    return {
        "static-4": ControllerSpec.static(4),
        "static-16": ControllerSpec.static(16),
    }


def run_matrix(
    schemes: Mapping[str, ControllerSpec],
    config_for,
    benchmarks: Sequence[str] = BENCHMARK_NAMES,
    trace_length: Optional[int] = None,
    seed: int = DEFAULT_SEED,
    runner: Optional[SweepRunner] = None,
) -> Dict[str, Dict[str, RunResult]]:
    """Run every benchmark under every scheme on a shared trace.

    ``config_for(scheme_name)`` supplies the processor configuration (most
    exhibits ignore the name; the idealization study does not).
    """
    runner = runner or _serial_runner()
    length = trace_length if trace_length is not None else scaled_length()
    specs = [
        RunSpec(
            profile=bench,
            trace_length=length,
            seed=seed,
            config=config_for(scheme),
            controller=spec,
            label=scheme,
        )
        for bench in benchmarks
        for scheme, spec in schemes.items()
    ]
    records = require_ok(runner.run(specs))
    results: Dict[str, Dict[str, RunResult]] = {b: {} for b in benchmarks}
    for record in records:
        results[record.spec.profile][record.spec.label] = record.result
    return results


def _ipc_view(results: Mapping[str, Mapping[str, RunResult]]) -> Dict[str, Dict[str, float]]:
    return {b: {s: r.ipc for s, r in by.items()} for b, by in results.items()}


# ----------------------------------------------------------------------
# Figure 3: static cluster counts, centralized cache, ring


def figure3(
    benchmarks: Sequence[str] = BENCHMARK_NAMES,
    trace_length: Optional[int] = None,
    runner: Optional[SweepRunner] = None,
) -> Dict[str, Dict[str, RunResult]]:
    """IPC of fixed 2/4/8/16-cluster organizations (Figure 3)."""
    schemes = {f"static-{n}": ControllerSpec.static(n) for n in (2, 4, 8, 16)}
    return run_matrix(
        schemes, lambda s: default_config(16), benchmarks, trace_length, runner=runner
    )


def print_figure3(results: Mapping[str, Mapping[str, RunResult]]) -> str:
    return ipc_table(
        _ipc_view(results),
        [f"static-{n}" for n in (2, 4, 8, 16)],
        "Figure 3: IPC for fixed cluster organizations (centralized cache, ring)",
    )


# ----------------------------------------------------------------------
# Figure 5: interval-based schemes, centralized cache


def figure5_schemes(
    explore: Optional[ExploreConfig] = None,
    noexplore_intervals: Sequence[int] = (500, 1_000, 2_000),
) -> Dict[str, ControllerSpec]:
    schemes = _standard_schemes()
    schemes["interval-explore"] = ControllerSpec.explore(explore)
    for length in noexplore_intervals:
        schemes[f"no-explore-{length}"] = ControllerSpec.no_explore(
            NoExploreConfig.scaled(interval_length=length)
        )
    return schemes


def figure5(
    benchmarks: Sequence[str] = BENCHMARK_NAMES,
    trace_length: Optional[int] = None,
    runner: Optional[SweepRunner] = None,
) -> Dict[str, Dict[str, RunResult]]:
    """Base cases + interval-based schemes (Figure 5).

    The paper's no-exploration interval lengths (1K/10K/100K over 100M+
    windows) scale here to 0.5K/1K/2K over laptop traces.
    """
    return run_matrix(
        figure5_schemes(), lambda s: default_config(16), benchmarks, trace_length,
        runner=runner,
    )


def print_figure5(results: Mapping[str, Mapping[str, RunResult]]) -> str:
    order = ["static-4", "static-16", "interval-explore", "no-explore-500",
             "no-explore-1000", "no-explore-2000"]
    text = ipc_table(
        _ipc_view(results), order,
        "Figure 5: interval-based schemes (centralized cache, ring)",
        baseline_schemes=BASE_SCHEMES,
    )
    disabled = geomean(
        16 - by["interval-explore"].avg_active_clusters
        for by in results.values()
        if "interval-explore" in by
    )
    return text + f"\navg clusters disabled by interval-explore (geomean): {disabled:.1f} / 16"


# ----------------------------------------------------------------------
# Figure 6: fine-grained reconfiguration


def figure6(
    benchmarks: Sequence[str] = BENCHMARK_NAMES,
    trace_length: Optional[int] = None,
    runner: Optional[SweepRunner] = None,
) -> Dict[str, Dict[str, RunResult]]:
    """Base cases, exploration, and the two fine-grained schemes (Figure 6)."""
    schemes = _standard_schemes()
    schemes["interval-explore"] = ControllerSpec.explore()
    schemes["finegrain-branch"] = ControllerSpec.finegrain()
    schemes["finegrain-subroutine"] = ControllerSpec.subroutine()
    return run_matrix(
        schemes, lambda s: default_config(16), benchmarks, trace_length, runner=runner
    )


def print_figure6(results: Mapping[str, Mapping[str, RunResult]]) -> str:
    order = ["static-4", "static-16", "interval-explore",
             "finegrain-branch", "finegrain-subroutine"]
    return ipc_table(
        _ipc_view(results), order,
        "Figure 6: fine-grained reconfiguration (centralized cache, ring)",
        baseline_schemes=BASE_SCHEMES,
    )


# ----------------------------------------------------------------------
# Figure 7: decentralized cache


def figure7(
    benchmarks: Sequence[str] = BENCHMARK_NAMES,
    trace_length: Optional[int] = None,
    runner: Optional[SweepRunner] = None,
) -> Dict[str, Dict[str, RunResult]]:
    """Interval-based schemes on the decentralized cache model (Figure 7).

    Fine-grained schemes do not apply: every reconfiguration flushes the L1
    (Section 5), which only the interval-based schemes amortize.
    """
    schemes = _standard_schemes()
    schemes["interval-explore"] = ControllerSpec.explore()
    # every reconfiguration flushes the L1 here, so short intervals only add
    # flush traffic — the paper likewise found no benefit from reconfiguring
    # the decentralized model at shorter intervals (Section 5)
    schemes["no-explore-1000"] = ControllerSpec.no_explore(
        NoExploreConfig.scaled(interval_length=1_000)
    )
    schemes["no-explore-2000"] = ControllerSpec.no_explore(
        NoExploreConfig.scaled(interval_length=2_000)
    )
    return run_matrix(
        schemes, lambda s: decentralized_config(16), benchmarks, trace_length,
        runner=runner,
    )


def print_figure7(results: Mapping[str, Mapping[str, RunResult]]) -> str:
    order = ["static-4", "static-16", "interval-explore",
             "no-explore-1000", "no-explore-2000"]
    text = ipc_table(
        _ipc_view(results), order,
        "Figure 7: decentralized cache model",
        baseline_schemes=BASE_SCHEMES,
    )
    flushes = {
        b: by["interval-explore"].stats.flush_writebacks
        for b, by in results.items() if "interval-explore" in by
    }
    worst = max(flushes, key=lambda b: flushes[b]) if flushes else "-"
    return text + (
        f"\nflush writebacks (interval-explore): total "
        f"{sum(flushes.values())}, worst {worst} ({flushes.get(worst, 0)})"
    )


# ----------------------------------------------------------------------
# Figure 8: grid interconnect


def figure8(
    benchmarks: Sequence[str] = BENCHMARK_NAMES,
    trace_length: Optional[int] = None,
    runner: Optional[SweepRunner] = None,
) -> Dict[str, Dict[str, RunResult]]:
    """Static bases + exploration on the grid interconnect (Figure 8)."""
    schemes = _standard_schemes()
    schemes["interval-explore"] = ControllerSpec.explore()
    return run_matrix(
        schemes, lambda s: grid_config(16), benchmarks, trace_length, runner=runner
    )


def print_figure8(results: Mapping[str, Mapping[str, RunResult]]) -> str:
    return ipc_table(
        _ipc_view(results),
        ["static-4", "static-16", "interval-explore"],
        "Figure 8: grid interconnect (centralized cache)",
        baseline_schemes=BASE_SCHEMES,
    )


# ----------------------------------------------------------------------
# Section 4/5 text: communication-cost idealizations


def idealized_communication(
    benchmarks: Sequence[str] = BENCHMARK_NAMES,
    trace_length: Optional[int] = None,
    organization: str = "centralized",
    runner: Optional[SweepRunner] = None,
) -> Dict[str, Dict[str, RunResult]]:
    """Zero-cost memory/register communication studies (Sections 4 and 5).

    The paper reports +31%/+11% (centralized, 16 clusters) and +29%/+27%
    (decentralized) for free load-store and free register communication.
    """
    base = default_config(16) if organization == "centralized" else decentralized_config(16)

    def config_for(scheme: str) -> ProcessorConfig:
        inter = base.interconnect
        if scheme == "free-memory":
            inter = replace(inter, free_memory_communication=True)
        elif scheme == "free-register":
            inter = replace(inter, free_register_communication=True)
        return base.with_interconnect(inter)

    schemes = {
        "baseline": ControllerSpec.none(),
        "free-memory": ControllerSpec.none(),
        "free-register": ControllerSpec.none(),
    }
    return run_matrix(schemes, config_for, benchmarks, trace_length, runner=runner)


def print_idealized(results: Mapping[str, Mapping[str, RunResult]], organization: str) -> str:
    view = _ipc_view(results)
    text = ipc_table(
        view, ["baseline", "free-memory", "free-register"],
        f"Communication idealizations ({organization}, 16 clusters)",
    )
    base_gm = geomean(v["baseline"] for v in view.values())
    mem_gm = geomean(v["free-memory"] for v in view.values())
    reg_gm = geomean(v["free-register"] for v in view.values())
    return text + (
        f"\nfree memory comm: {100 * (mem_gm / base_gm - 1):+.1f}%"
        f"   free register comm: {100 * (reg_gm / base_gm - 1):+.1f}%"
    )


# ----------------------------------------------------------------------
# Section 6: sensitivity analysis


def sensitivity_variants() -> Dict[str, ProcessorConfig]:
    """The Section 6 processor variants."""
    base = default_config(16)
    fewer = ClusterConfig(issue_queue_size=10, regfile_size=20)
    more = ClusterConfig(issue_queue_size=20, regfile_size=40)
    more_fus = ClusterConfig(
        issue_queue_size=15, regfile_size=30, int_alus=2, int_muls=1, fp_alus=2, fp_muls=1
    )
    double_hop = replace(base.interconnect, hop_latency=2)
    return {
        "base": base,
        "fewer-resources": base.with_cluster_resources(fewer),
        "more-resources": base.with_cluster_resources(more),
        "more-fus": base.with_cluster_resources(more_fus),
        "double-hop": base.with_interconnect(double_hop),
    }


def sensitivity(
    benchmarks: Sequence[str] = BENCHMARK_NAMES,
    trace_length: Optional[int] = None,
    runner: Optional[SweepRunner] = None,
) -> Dict[str, Dict[str, Dict[str, RunResult]]]:
    """For each Section 6 variant: static 4/16 + interval-explore.

    The whole (variant x benchmark x scheme) cube goes to the runner as one
    batch so a worker pool sees maximum parallelism.
    """
    runner = runner or _serial_runner()
    length = trace_length if trace_length is not None else scaled_length()
    schemes = _standard_schemes()
    schemes["interval-explore"] = ControllerSpec.explore()

    specs: List[RunSpec] = []
    keys: List[Tuple[str, str, str]] = []
    for variant, config in sensitivity_variants().items():
        for bench in benchmarks:
            for scheme, spec in schemes.items():
                specs.append(
                    RunSpec(
                        profile=bench,
                        trace_length=length,
                        config=config,
                        controller=spec,
                        label=scheme,
                    )
                )
                keys.append((variant, bench, scheme))

    records = require_ok(runner.run(specs))
    out: Dict[str, Dict[str, Dict[str, RunResult]]] = {}
    for (variant, bench, scheme), record in zip(keys, records):
        out.setdefault(variant, {}).setdefault(bench, {})[scheme] = record.result
    return out


def print_sensitivity(results: Mapping[str, Mapping[str, Mapping[str, RunResult]]]) -> str:
    rows = []
    for variant, matrix in results.items():
        view = _ipc_view(matrix)
        gm = {
            s: geomean(v[s] for v in view.values())
            for s in ("static-4", "static-16", "interval-explore")
        }
        best = max(gm["static-4"], gm["static-16"])
        rows.append(
            [variant, gm["static-4"], gm["static-16"], gm["interval-explore"],
             f"{100 * (gm['interval-explore'] / best - 1):+.1f}%"]
        )
    return format_table_local(
        ["variant", "static-4", "static-16", "interval-explore", "improvement"],
        rows,
        "Section 6 sensitivity (geomean IPC)",
    )


def format_table_local(headers, rows, title):
    from .reporting import format_table

    return format_table(headers, rows, title)


# ----------------------------------------------------------------------
# fig_multiprog: co-scheduled threads under competing arbiters


#: the fabrics the multiprog exhibit compares (placement matters on all
#: three; the flat ring is covered by the conformance suite instead)
MULTIPROG_FABRICS = ("grid", "torus", "ring-of-rings")

#: default 2-thread mix: one communication-heavy, one parallel profile
MULTIPROG_MIX = ("gzip", "swim")


def fig_multiprog(
    benchmarks: Sequence[str] = MULTIPROG_MIX,
    trace_length: Optional[int] = None,
    seed: int = DEFAULT_SEED,
    runner: Optional[SweepRunner] = None,
    fabrics: Sequence[str] = MULTIPROG_FABRICS,
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Fairness/throughput of every arbiter on every fabric.

    ``benchmarks`` is the co-scheduled thread mix (2-4 profile names).
    Returns ``{arbiter: {fabric: metrics}}`` where ``metrics`` holds
    ``weighted_speedup`` (vs. each thread running alone on the same
    fabric, measured in the same sweep batch), ``throughput_ipc``,
    ``harmonic_mean_ipc``, ``arb_grants``, and ``arb_reclaims``.
    """
    from ..multiprog import MultiProgSpec, arbiter_names, thread_seed
    from ..multiprog.spec import DEFAULT_TRACE_LENGTH
    from .sweep import multiprog_run_spec

    mix = tuple(benchmarks)
    fabrics = tuple(fabrics)
    arbiters = arbiter_names()
    runner = runner or _serial_runner()
    length = trace_length if trace_length is not None else DEFAULT_TRACE_LENGTH

    fabric_factories = {
        "ring": default_config,
        "grid": grid_config,
        "torus": torus_config,
        "ring-of-rings": ring_of_rings_config,
    }
    # one batch: the arbiter matrix plus the per-fabric solo baselines
    specs: List[RunSpec] = []
    for fabric in fabrics:
        for arbiter in arbiters:
            specs.append(
                multiprog_run_spec(
                    MultiProgSpec(
                        workloads=mix,
                        trace_length=length,
                        seed=seed,
                        topology=fabric,
                        arbiter=arbiter,
                        label=f"{arbiter}/{fabric}",
                    )
                )
            )
        for index, bench in enumerate(mix):
            specs.append(
                RunSpec(
                    profile=bench,
                    trace_length=length,
                    seed=thread_seed(seed, index),
                    config=fabric_factories[fabric](16),
                    warmup=0,
                    label=f"solo/{fabric}/{index}",
                )
            )
    records = require_ok(runner.run(specs))

    solo_ipcs: Dict[str, List[float]] = {f: [0.0] * len(mix) for f in fabrics}
    multiprog_results: Dict[Tuple[str, str], object] = {}
    for record in records:
        label = record.spec.label
        if record.spec.multiprog is not None:
            arbiter, fabric = label.split("/")
            multiprog_results[(arbiter, fabric)] = record.multiprog_result
        else:
            _, fabric, index = label.split("/")
            solo_ipcs[fabric][int(index)] = record.result.ipc

    table: Dict[str, Dict[str, Dict[str, float]]] = {}
    for arbiter in arbiters:
        table[arbiter] = {}
        for fabric in fabrics:
            mp = multiprog_results[(arbiter, fabric)]
            table[arbiter][fabric] = {
                "weighted_speedup": mp.weighted_speedup(solo_ipcs[fabric]),
                "throughput_ipc": mp.throughput_ipc,
                "harmonic_mean_ipc": mp.harmonic_mean_ipc,
                "arb_grants": float(mp.arb_grants),
                "arb_reclaims": float(mp.arb_reclaims),
            }
    return table


# ----------------------------------------------------------------------
# fig_resilience: graceful degradation under architectural faults


#: topologies the resilience exhibit degrades (all reroute around faults;
#: ring-of-rings is covered by the conformance suite instead)
RESILIENCE_TOPOLOGIES = ("ring", "grid", "torus", "decentralized")

#: controller families compared under fault injection
RESILIENCE_POLICIES = ("none", "explore")

#: injected-fault counts per run (the x axis)
RESILIENCE_RATES = (0, 1, 2, 4)

#: the benchmark carrying the exhibit (communication-sensitive, so link
#: faults are visible, with enough ILP that cluster kills cost IPC)
RESILIENCE_BENCH = "gzip"

_RESILIENCE_CONFIGS = {
    "ring": default_config,
    "grid": grid_config,
    "torus": torus_config,
    "ring-of-rings": ring_of_rings_config,
    "decentralized": decentralized_config,
}

_RESILIENCE_POLICY_SPECS = {
    "none": ControllerSpec.none,
    "static-4": lambda: ControllerSpec.static(4),
    "explore": ControllerSpec.explore,
    "no-explore": ControllerSpec.no_explore,
    "finegrain": ControllerSpec.finegrain,
}


def resilience_schedule(
    topology: str, rate: int, trace_length: int, seed: int
):
    """The seeded fault schedule of one exhibit cell (None at rate 0).

    Draws cluster kills, FU disables, and link degrades; link endpoints
    come from the topology's own link table, so every generated fault is
    valid on that fabric.  The window sits early in the run
    (``[length/32, length/8]`` cycles) so even high-IPC configurations
    spend most of the measured region degraded.
    """
    if rate == 0:
        return None
    from ..interconnect.network import build_topology
    from ..resilience import FaultSchedule

    config = _RESILIENCE_CONFIGS[topology](16)
    endpoints = build_topology(
        config.interconnect, config.num_clusters
    ).link_endpoints()
    links = sorted(set(endpoints.values()))[:8]
    return FaultSchedule.seeded(
        seed + rate,
        cycles=trace_length,
        num_clusters=config.num_clusters,
        faults=rate,
        kinds=("cluster", "fu", "link"),
        home_cluster=config.home_cluster,
        links=links,
        window=(max(1, trace_length // 32), max(2, trace_length // 8)),
    )


def fig_resilience(
    benchmark: str = RESILIENCE_BENCH,
    trace_length: Optional[int] = None,
    seed: int = DEFAULT_SEED,
    runner: Optional[SweepRunner] = None,
    topologies: Sequence[str] = RESILIENCE_TOPOLOGIES,
    policies: Sequence[str] = RESILIENCE_POLICIES,
    rates: Sequence[int] = RESILIENCE_RATES,
) -> Dict[str, Dict[str, Dict[str, Dict[str, float]]]]:
    """IPC vs. injected-fault rate across topologies x controllers.

    Every (topology, policy, rate) cell runs ``benchmark`` with a seeded
    :class:`~repro.resilience.FaultSchedule` of ``rate`` faults (rate 0
    is the healthy baseline).  Measurement starts at cycle 0 — the
    degraded region *is* the measurement, so there is no warmup to hide
    it in.  Returns ``{topology: {policy: {"faults=N": metrics}}}`` with
    ``ipc``, ``degraded_frac`` (fraction of cycles spent degraded),
    ``recovery_cycles`` (summed kill-to-remap latency), and
    ``faults_injected``.
    """
    runner = runner or _serial_runner()
    length = trace_length if trace_length is not None else scaled_length()
    topologies = tuple(topologies)
    policies = tuple(policies)
    rates = tuple(rates)

    specs: List[RunSpec] = []
    for topology in topologies:
        for policy in policies:
            for rate in rates:
                specs.append(
                    RunSpec(
                        profile=benchmark,
                        trace_length=length,
                        seed=seed,
                        config=_RESILIENCE_CONFIGS[topology](16),
                        controller=_RESILIENCE_POLICY_SPECS[policy](),
                        warmup=0,
                        label=f"{topology}/{policy}/{rate}",
                        faults=resilience_schedule(
                            topology, rate, length, seed
                        ),
                    )
                )
    records = require_ok(runner.run(specs))

    table: Dict[str, Dict[str, Dict[str, Dict[str, float]]]] = {}
    for record in records:
        topology, policy, rate = record.spec.label.split("/")
        stats = record.result.stats
        cycles = max(1, stats.cycles)
        table.setdefault(topology, {}).setdefault(policy, {})[
            f"faults={rate}"
        ] = {
            "ipc": record.result.ipc,
            "degraded_frac": stats.degraded_cycles / cycles,
            "recovery_cycles": float(stats.recovery_cycles),
            "faults_injected": float(stats.faults_injected),
        }
    return table


def print_fig_resilience(
    results: Mapping[str, Mapping[str, Mapping[str, Mapping[str, float]]]],
    benchmark: str = RESILIENCE_BENCH,
) -> str:
    from .reporting import format_table

    blocks = []
    degraded: Dict[str, Dict[str, float]] = {}
    for topology, by_policy in results.items():
        policies = list(by_policy)
        rate_labels: List[str] = []
        for policy in policies:
            for label in by_policy[policy]:
                if label not in rate_labels:
                    rate_labels.append(label)
        blocks.append(
            format_table(
                ["policy"] + rate_labels,
                [
                    [p] + [by_policy[p][r]["ipc"] for r in rate_labels]
                    for p in policies
                ],
                f"fig_resilience: {benchmark} IPC on {topology} vs injected "
                "faults",
            )
        )
        first = policies[0]
        degraded[topology] = {
            r: by_policy[first][r]["degraded_frac"] for r in rate_labels
        }
    rate_labels = list(next(iter(degraded.values())))
    blocks.append(
        format_table(
            ["topology"] + rate_labels,
            [
                [t] + [degraded[t][r] for r in rate_labels]
                for t in degraded
            ],
            "degraded-cycle fraction (policy: "
            f"{next(iter(next(iter(results.values()))))})",
        )
    )
    return "\n\n".join(blocks)


def print_fig_multiprog(
    results: Mapping[str, Mapping[str, Mapping[str, float]]],
    benchmarks: Sequence[str] = MULTIPROG_MIX,
) -> str:
    from ..multiprog import arbiter_names
    from .reporting import multiprog_table

    arbiters = [a for a in arbiter_names() if a in results]
    fabrics: List[str] = []
    for arbiter in arbiters:
        for fabric in results[arbiter]:
            if fabric not in fabrics:
                fabrics.append(fabric)
    mix = "+".join(benchmarks)
    blocks = [
        multiprog_table(
            {a: {f: results[a][f]["weighted_speedup"] for f in fabrics}
             for a in arbiters},
            fabrics,
            arbiters,
            f"fig_multiprog: weighted speedup of {mix} (vs solo on the "
            f"same fabric)",
        ),
        multiprog_table(
            {a: {f: results[a][f]["throughput_ipc"] for f in fabrics}
             for a in arbiters},
            fabrics,
            arbiters,
            "throughput (total IPC over global cycles)",
        ),
        multiprog_table(
            {a: {f: results[a][f]["arb_grants"]
                 + results[a][f]["arb_reclaims"] for f in fabrics}
             for a in arbiters},
            fabrics,
            arbiters,
            "allocation churn (grants + reclaims)",
        ),
    ]
    return "\n\n".join(blocks)
