"""ASCII reporting helpers for the benchmark harness."""

from __future__ import annotations

import math
from typing import Iterable, List, Mapping, Sequence


def geomean(values: Iterable[float]) -> float:
    """Geometric mean (the paper's aggregate for speedups)."""
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def harmonic_mean(values: Iterable[float]) -> float:
    """Harmonic mean (the fairness-leaning aggregate for multiprog IPC)."""
    values = list(values)
    if not values or any(v <= 0 for v in values):
        return 0.0
    return len(values) / sum(1.0 / v for v in values)


def multiprog_table(
    metrics: Mapping[str, Mapping[str, float]],
    fabric_order: Sequence[str],
    arbiter_order: Sequence[str],
    title: str,
) -> str:
    """Arbiters x fabrics matrix of one multiprog metric.

    ``metrics[arbiter][fabric]`` is the cell value (e.g. weighted
    speedup); rows follow ``arbiter_order``, columns ``fabric_order``.
    """
    headers = ["arbiter"] + list(fabric_order)
    rows = []
    for arbiter in arbiter_order:
        per_fabric = metrics.get(arbiter, {})
        rows.append(
            [arbiter]
            + [per_fabric.get(f, float("nan")) for f in fabric_order]
        )
    return format_table(headers, rows, title)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Fixed-width ASCII table."""
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value != value or value in (float("inf"), float("-inf")):
            return "inf" if value > 0 else str(value)
        if abs(value) >= 1000:
            return f"{value:.0f}"
        return f"{value:.3f}".rstrip("0").rstrip(".") if value % 1 else f"{value:.0f}"
    return str(value)


def format_sweep_metrics(metrics) -> str:
    """One-block ASCII summary of a :class:`~repro.experiments.sweep.SweepMetrics`.

    Shown by the CLI after ``--jobs`` sweeps and saved as JSON by CI; keep
    the field set in sync with ``SweepMetrics.snapshot``.
    """
    rows = [
        ["backend", metrics.backend.get("kind", "serial")
                    if metrics.backend else "serial"],
        ["workers", metrics.jobs],
        ["runs completed", metrics.completed],
        ["failed / timed out", f"{metrics.failed} / {metrics.timeouts}"],
        ["retries", metrics.retries],
        ["cache hits / misses",
         f"{metrics.cache_hits} / {metrics.cache_misses} "
         f"({100 * metrics.hit_rate:.0f}% hit rate)"],
        ["wall time", f"{metrics.wall_seconds:.2f}s"],
        ["worker utilization", f"{100 * metrics.worker_utilization:.0f}%"],
        ["run latency p50 / p95",
         f"{metrics.p50_seconds:.2f}s / {metrics.p95_seconds:.2f}s"],
    ]
    # fault-tolerance counters only earn a row when something happened
    if metrics.journal_skips:
        rows.append(["resumed from journal", metrics.journal_skips])
    if metrics.pool_respawns or metrics.poisoned:
        rows.append(["pool respawns / poisoned",
                     f"{metrics.pool_respawns} / {metrics.poisoned}"])
    if metrics.journal_errors:
        rows.append(["journal write errors", metrics.journal_errors])
    return format_table(["metric", "value"], rows, "Sweep metrics")


def format_failure_table(records) -> str:
    """ASCII table of every not-ok :class:`RunRecord` in ``records``.

    The CLI prints this (and exits nonzero) instead of presenting an
    exhibit with silent holes in its matrix.
    """
    rows = []
    for r in records:
        if r.ok:
            continue
        error = r.error if len(r.error) <= 72 else r.error[:69] + "..."
        rows.append(
            [r.spec.profile, r.spec.label or r.spec.controller.kind,
             r.status, r.attempts, error]
        )
    return format_table(
        ["benchmark", "scheme", "status", "attempts", "error"],
        rows,
        f"Sweep failures ({len(rows)} run(s))",
    )


def ipc_table(
    results: Mapping[str, Mapping[str, float]],
    scheme_order: Sequence[str],
    title: str,
    baseline_schemes: Sequence[str] = (),
) -> str:
    """Benchmarks x schemes IPC matrix plus geomean row and, when baseline
    schemes are named, the improvement of each scheme over the best
    baseline (the paper's headline metric)."""
    headers = ["benchmark"] + list(scheme_order)
    rows = []
    for bench in sorted(results):
        rows.append([bench] + [results[bench].get(s, float("nan")) for s in scheme_order])
    gm = {s: geomean(results[b].get(s, 0.0) for b in results) for s in scheme_order}
    rows.append(["geomean"] + [gm[s] for s in scheme_order])
    text = format_table(headers, rows, title)
    if baseline_schemes:
        best_base = max(baseline_schemes, key=lambda s: gm.get(s, 0.0))
        lines = [text, f"best static base case: {best_base} (geomean {gm[best_base]:.3f})"]
        for s in scheme_order:
            if s in baseline_schemes:
                continue
            if gm.get(best_base):
                imp = (gm[s] / gm[best_base] - 1.0) * 100.0
                lines.append(f"  {s}: {imp:+.1f}% vs best static")
        text = "\n".join(lines)
    return text
