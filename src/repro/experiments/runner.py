"""Single-run experiment executor.

All paper experiments measure steady-state behaviour, so the runner always
excludes a warmup prefix (cold caches and predictors would otherwise
dominate the short laptop-scale traces — the paper warmed its structures
over two billion fast-forwarded instructions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from ..config import ProcessorConfig, env_float
from ..pipeline.processor import ClusteredProcessor
from ..stats import SimStats
from ..workloads.generator import Profile, generate_trace
from ..workloads.instruction import Trace

#: environment knob: multiply all default trace lengths (>=1); lets a beefier
#: machine run closer to paper scale without editing benches
TRACE_SCALE_ENV = "REPRO_TRACE_SCALE"

DEFAULT_TRACE_LENGTH = 60_000
DEFAULT_WARMUP = 6_000
DEFAULT_SEED = 7


def trace_scale() -> float:
    scale = env_float(TRACE_SCALE_ENV)
    return 1.0 if scale is None else max(0.1, scale)


def scaled_length(base: int = DEFAULT_TRACE_LENGTH) -> int:
    return int(base * trace_scale())


@dataclass
class RunResult:
    """Steady-state metrics of one simulation run."""

    name: str
    label: str
    ipc: float
    committed: int
    cycles: int
    mispredict_interval: float
    avg_active_clusters: float
    reconfigurations: int
    stats: SimStats

    def speedup_over(self, other: "RunResult") -> float:
        if other.ipc == 0:
            return float("inf")
        return self.ipc / other.ipc


def run_trace(
    trace: Trace,
    config: ProcessorConfig,
    controller: Optional[object] = None,
    *,
    warmup: int = DEFAULT_WARMUP,
    label: str = "",
    steering: Optional[Callable[[object], object]] = None,
    max_instructions: Optional[int] = None,
    tracer: Optional[object] = None,
    fault_schedule: Optional[object] = None,
) -> RunResult:
    """Simulate a trace and report post-warmup steady-state metrics.

    The controller (if any) runs from cycle zero — warmup only affects
    *measurement*, exactly like the paper's fast-forward + warm simulation
    methodology.  ``steering``, when given, is called with the processor's
    cluster list and must return a steering heuristic that replaces the
    default producer-preference one (used by the steering ablation).
    ``max_instructions`` bounds the run in *committed* instructions
    (commit-bounded: see :meth:`ClusteredProcessor.run`), counted from the
    start of the trace, warmup included.  ``tracer`` (a
    :class:`repro.observability.Tracer`) observes the run passively; the
    statistics are bit-identical with or without one.  ``fault_schedule``
    (a :class:`repro.resilience.FaultSchedule`) injects cycle-scheduled
    architectural faults; unlike tracing it is *not* passive — it is part
    of the run's identity, exactly like the config.

    The pre-facade spelling ``run_trace(trace, config, controller, warmup,
    label)`` was removed after its deprecation cycle; everything past the
    controller is keyword-only (analysis rule L202 guards the signature).
    """
    processor = ClusteredProcessor(
        trace, config, controller, tracer=tracer, fault_schedule=fault_schedule
    )
    if steering is not None:
        processor.steering = steering(processor.clusters)
    warmup = min(warmup, max(0, len(trace) - 1000))
    if max_instructions is not None:
        warmup = min(warmup, max_instructions)
    while not processor.finished and processor.stats.committed < warmup:
        processor.step()
    cycles0 = processor.cycle
    committed0 = processor.stats.committed
    mispredicts0 = processor.stats.mispredicts
    cluster_cycles0 = processor.stats.cluster_cycle_product
    processor.run(max_instructions)
    stats = processor.stats

    cycles = max(1, stats.cycles - cycles0)
    committed = stats.committed - committed0
    mispredicts = stats.mispredicts - mispredicts0
    return RunResult(
        name=trace.name,
        label=label,
        ipc=committed / cycles,
        committed=committed,
        cycles=cycles,
        mispredict_interval=(committed / mispredicts) if mispredicts else float("inf"),
        avg_active_clusters=(stats.cluster_cycle_product - cluster_cycles0) / cycles,
        reconfigurations=stats.reconfigurations,
        stats=stats,
    )


class TraceCache:
    """Re-use generated traces across the configurations of one experiment
    (the comparison is only fair on identical dynamic instruction streams)."""

    def __init__(self, length: Optional[int] = None, seed: int = DEFAULT_SEED) -> None:
        self.length = length if length is not None else scaled_length()
        self.seed = seed
        self._traces: Dict[str, Trace] = {}

    def get(self, profile: Profile) -> Trace:
        key = profile.name
        if key not in self._traces:
            self._traces[key] = generate_trace(profile, self.length, self.seed)
        return self._traces[key]
