"""Length-prefixed pickle frames for the distributed sweep protocol.

One frame = 8-byte header (magic + payload length) + pickled payload.
The conversation is strictly request/response after the worker's opening
``hello``, so a half-closed or dropped connection is always detectable
as an EOF at a frame boundary — which is exactly how the coordinator
attributes worker deaths to the spec the worker was running.

Messages (plain dicts, ``"type"`` discriminated):

========== =========================================== ==================
type        fields                                      direction
========== =========================================== ==================
hello       lane, pid, host, version                    worker → coord
job         index, spec (RunSpec), timeout              coord  → worker
result      index, record (RunRecord)                   worker → coord
shutdown    —                                           coord  → worker
========== =========================================== ==================

Pickle is safe here for the same reason the process pool may use it:
both ends are the same code tree run by the same user; the coordinator
binds to loopback by default and remote lanes are explicit opt-in on
trusted hosts (see ``docs/SWEEPS.md``).
"""

from __future__ import annotations

import pickle
import struct
from typing import Dict, Optional, Tuple

#: the frame vocabulary, machine-readable: tag -> direction.  Analysis
#: rule P503 proves every tag here appears in both the coordinator
#: (``distributed.py``) and the worker (``worker.py``), so a new frame
#: type cannot ship with only one dispatch arm.
FRAME_TYPES: Dict[str, str] = {
    "hello": "worker->coordinator",
    "job": "coordinator->worker",
    "result": "worker->coordinator",
    "shutdown": "coordinator->worker",
}

#: the declarative payload types that cross this wire (and the
#: process-pool boundary).  Analysis rule P502 proves each is a frozen
#: dataclass whose fields are transitively picklable.  RunRecord (the
#: reply direction) is deliberately absent: it is a mutable progress
#: record, not a spec, and its pickling is exercised end-to-end by the
#: backend conformance suite instead.
WIRE_SPEC_TYPES: Tuple[str, ...] = ("repro.experiments.sweep.RunSpec",)

#: frame header: 4-byte magic + 4-byte big-endian payload length
MAGIC = b"RSWP"
_HEADER = struct.Struct("!4sI")
#: protocol version, carried in ``hello`` — mismatches are refused
PROTOCOL_VERSION = 1
#: sanity cap on one frame (a RunRecord with full interval records is
#: a few MB at most; anything bigger is a corrupted stream)
MAX_FRAME = 256 * 1024 * 1024


class WireError(Exception):
    """A malformed or oversized frame (protocol corruption)."""


def pack(message: object) -> bytes:
    payload = pickle.dumps(message)
    if len(payload) > MAX_FRAME:  # pragma: no cover - absurd payload
        raise WireError(f"frame of {len(payload)} bytes exceeds MAX_FRAME")
    return _HEADER.pack(MAGIC, len(payload)) + payload


def _parse_header(header: bytes) -> int:
    magic, length = _HEADER.unpack(header)
    if magic != MAGIC:
        raise WireError(f"bad frame magic {magic!r}")
    if length > MAX_FRAME:
        raise WireError(f"frame of {length} bytes exceeds MAX_FRAME")
    return length


# ----------------------------------------------------------------------
# blocking (worker) side


def send(sock, message: object) -> None:
    sock.sendall(pack(message))


def _recv_exact(sock, count: int) -> Optional[bytes]:
    chunks = []
    while count:
        chunk = sock.recv(count)
        if not chunk:
            return None  # EOF
        chunks.append(chunk)
        count -= len(chunk)
    return b"".join(chunks)


def recv(sock) -> Optional[object]:
    """One message, or ``None`` on a clean EOF at a frame boundary."""
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    payload = _recv_exact(sock, _parse_header(header))
    if payload is None:
        raise WireError("connection died mid-frame")
    return pickle.loads(payload)


# ----------------------------------------------------------------------
# asyncio (coordinator) side


async def read_frame(reader) -> Optional[object]:
    """One message, or ``None`` when the peer is gone (EOF, reset)."""
    try:
        header = await reader.readexactly(_HEADER.size)
        payload = await reader.readexactly(_parse_header(header))
    except (EOFError, ConnectionError, OSError):
        # IncompleteReadError (mid-frame death) subclasses EOFError
        return None
    return pickle.loads(payload)


async def write_frame(writer, message: object) -> bool:
    """Send one message; ``False`` (never a raise) when the peer is gone."""
    try:
        writer.write(pack(message))
        await writer.drain()
        return True
    except (ConnectionError, OSError):
        return False
