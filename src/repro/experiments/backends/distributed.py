"""Asyncio coordinator serving sweep specs to TCP workers.

The :class:`DistributedBackend` runs an asyncio event loop on a daemon
thread.  The loop owns a TCP server (loopback by default), a shared
``asyncio.Queue`` of submitted specs, and one peer coroutine per worker
connection; the runner's thread talks to it only through two
thread-safe hand-off points (``call_soon_threadsafe`` into the job
queue, a ``queue.Queue`` of :class:`~.base.Completion` objects out).

Workers come from *lanes* (see :func:`parse_lanes`):

* ``local`` lanes — the coordinator spawns
  ``python -m repro.experiments.backends.worker --connect`` subprocesses
  on this machine, one per slot, and respawns them (budgeted) if they
  die;
* ``host:port`` lanes — the coordinator dials out to a standing worker
  agent (``--serve`` mode) on another machine, opening one connection
  per slot.

Exactly one spec is in flight per connection, so crash attribution is
structural: a connection that dies mid-job blames precisely the spec it
was running (``crashed=True``), and the runner's quarantine logic needs
no probing phase.  A worker that dies *between* jobs blames nobody.

Ordering note: completions arrive in wall-clock order, but the runner
slots them back by index, so results — and therefore every exhibit —
are bit-identical to :class:`~.serial.SerialBackend` (the conformance
suite proves it).
"""

from __future__ import annotations

import asyncio
import pathlib
import queue as thread_queue
import subprocess
import sys
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ...config import spawn_env
from ...errors import BackendError
from .base import BackendEventLog, Completion, ExecutionBackend
from . import wire

#: default seconds to wait for the first worker hello before giving up
STARTUP_TIMEOUT = 30.0
#: extra seconds past the per-spec timeout before a silent worker is
#: declared dead (the in-worker alarm should have answered long before)
TIMEOUT_GRACE = 30.0
#: local-lane respawn budget multiplier (per slot)
RESPAWNS_PER_SLOT = 8

_SHUTDOWN = object()  # job-queue sentinel: tells a peer to release its worker


@dataclass(frozen=True)
class WorkerLane:
    """One source of worker connections.

    ``host="local"`` means subprocesses spawned by the coordinator;
    anything else is the address of a standing ``--serve`` worker agent.
    """

    host: str = "local"
    port: int = 0
    slots: int = 1
    name: str = "local"

    @property
    def is_local(self) -> bool:
        return self.host == "local"


def parse_lanes(spec: Union[str, int, Sequence[WorkerLane], None],
                default_slots: int = 1) -> Tuple[WorkerLane, ...]:
    """Lane list from the CLI/env syntax.

    ``"4"`` or ``4`` — four local worker slots.  ``"local,4"`` — the
    same, spelled out.  ``"10.0.0.2:9123,8"`` — eight connections to a
    worker agent on another host.  Semicolons separate lanes:
    ``"local,2;bigbox:9123,16"``.  ``None``/``""`` — one local lane
    with ``default_slots`` slots.
    """
    if spec is None or spec == "":
        return (WorkerLane(slots=max(1, default_slots)),)
    if isinstance(spec, int):
        return (WorkerLane(slots=max(1, spec)),)
    if not isinstance(spec, str):
        lanes = tuple(spec)
        if not lanes or not all(isinstance(lane, WorkerLane) for lane in lanes):
            raise BackendError(f"invalid lane list {spec!r}")
        return lanes
    lanes = []
    for chunk in spec.split(";"):
        chunk = chunk.strip()
        if not chunk:
            continue
        address, _, slots_text = chunk.partition(",")
        address = address.strip()
        slots_text = slots_text.strip()
        try:
            slots = int(slots_text) if slots_text else default_slots
        except ValueError:
            raise BackendError(
                f"bad slot count {slots_text!r} in lane {chunk!r}"
            ) from None
        if slots < 1:
            raise BackendError(f"lane {chunk!r} needs at least one slot")
        if address in ("", "local") or address.isdigit():
            # "4" is shorthand for "local,4"
            if address.isdigit():
                slots = int(address)
            lanes.append(WorkerLane(slots=slots, name=f"local{len(lanes)}"))
            continue
        host, _, port_text = address.rpartition(":")
        if not host or not port_text.isdigit():
            raise BackendError(
                f"lane {chunk!r} must be 'local,N', 'N', or 'HOST:PORT,N'"
            )
        lanes.append(
            WorkerLane(host=host, port=int(port_text), slots=slots,
                       name=f"{host}:{port_text}")
        )
    if not lanes:
        raise BackendError(f"no lanes in {spec!r}")
    return tuple(lanes)


class DistributedBackend(ExecutionBackend):
    kind = "distributed"

    def __init__(
        self,
        lanes: Union[str, int, Sequence[WorkerLane], None] = None,
        jobs: Optional[int] = None,
        timeout: Optional[float] = None,
        bind: str = "127.0.0.1",
        startup_timeout: float = STARTUP_TIMEOUT,
    ) -> None:
        self.lanes = parse_lanes(lanes, default_slots=max(1, jobs or 1))
        self.timeout = timeout
        self.bind = bind
        self.startup_timeout = startup_timeout
        self.address: Optional[Tuple[str, int]] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._jobs_q: Optional[asyncio.Queue] = None
        self._completions: thread_queue.Queue = thread_queue.Queue()
        self._procs: List[subprocess.Popen] = []
        self._peers = 0  # live peer coroutines (loop thread only)
        self._connected_total = 0
        self._respawns = 0
        self._respawn_budget = RESPAWNS_PER_SLOT * sum(
            lane.slots for lane in self.lanes if lane.is_local
        )
        self._outstanding = 0  # submissions not yet completed (main thread)
        self._closing = False
        self._cancelled = False
        self._first_hello = threading.Event()
        self._log = BackendEventLog(clock0=time.perf_counter())

    # ------------------------------------------------------------------
    # runner-facing API (main thread)

    def start(self) -> None:
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="sweep-coordinator", daemon=True
        )
        self._thread.start()
        try:
            self._call(self._startup(), timeout=self.startup_timeout)
        except Exception as exc:
            self.close()
            raise BackendError(f"distributed backend failed to start: {exc}")
        if not self._first_hello.wait(self.startup_timeout):
            self.close()
            raise BackendError(
                f"no worker connected within {self.startup_timeout:g}s "
                f"(lanes: {[lane.name for lane in self.lanes]})"
            )

    def submit(self, index: int, spec: object, solo: bool = False) -> None:
        # solo is moot: every worker runs exactly one spec at a time, so
        # crash attribution is already per-spec
        self._outstanding += 1
        item = (index, spec, time.perf_counter())
        self._loop.call_soon_threadsafe(self._jobs_q.put_nowait, item)

    def drain(self) -> List[Completion]:
        completions: List[Completion] = []
        if not self._outstanding:
            return completions
        while not completions:
            try:
                completions.append(self._completions.get(timeout=0.5))
            except thread_queue.Empty:
                if not self._alive():
                    raise BackendError(
                        "every worker is gone and the respawn budget is "
                        f"exhausted ({self._respawns} respawns); "
                        f"{self._outstanding} spec(s) unfinished"
                    )
        while True:
            try:
                completions.append(self._completions.get_nowait())
            except thread_queue.Empty:
                break
        self._outstanding -= len(completions)
        return completions

    def cancel(self) -> List[Tuple[int, object]]:
        self._cancelled = True
        dropped = self._call(self._purge_queue(), timeout=10.0)
        self._outstanding -= len(dropped)
        return [(index, spec) for index, spec, _ in dropped]

    def close(self) -> None:
        if self._loop is None:
            return
        self._closing = True
        try:
            self._call(self._shutdown(), timeout=15.0)
        except Exception:
            pass
        self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=10.0)
        if not self._loop.is_running():
            self._loop.close()
        self._loop = None
        for proc in self._procs:
            if proc.poll() is None:
                proc.terminate()
        deadline = time.perf_counter() + 5.0
        for proc in self._procs:
            while proc.poll() is None and time.perf_counter() < deadline:
                time.sleep(0.05)
            if proc.poll() is None:  # pragma: no cover - stubborn worker
                proc.kill()
        self._log.emit("backend_close", time.perf_counter())

    def stats(self):
        return {
            "kind": self.kind,
            "lanes": [
                {"name": lane.name, "host": lane.host, "slots": lane.slots}
                for lane in self.lanes
            ],
            "workers": sum(lane.slots for lane in self.lanes),
            "workers_connected_total": self._connected_total,
            "respawns": self._respawns,
            "events": list(self._log.events),
        }

    # ------------------------------------------------------------------
    # loop-side machinery

    def _call(self, coro, timeout: float):
        """Run a coroutine on the loop thread and wait for its result."""
        future = asyncio.run_coroutine_threadsafe(coro, self._loop)
        return future.result(timeout=timeout)

    def _alive(self) -> bool:
        if self._thread is None or not self._thread.is_alive():
            return False
        if self._peers > 0 or self._first_hello.is_set() is False:
            return True
        # no peer is connected; progress is still possible while local
        # respawns remain in the budget or a spawned worker is booting
        if any(proc.poll() is None for proc in self._procs):
            return True
        return self._respawns < self._respawn_budget and any(
            lane.is_local for lane in self.lanes
        )

    async def _startup(self) -> None:
        self._jobs_q = asyncio.Queue()
        self._server = await asyncio.start_server(
            self._on_connection, host=self.bind, port=0
        )
        self.address = self._server.sockets[0].getsockname()[:2]
        self._log.emit(
            "coordinator_listen", time.perf_counter(),
            address=f"{self.address[0]}:{self.address[1]}",
        )
        for lane in self.lanes:
            if lane.is_local:
                for _ in range(lane.slots):
                    await self._spawn_local(lane)
            else:
                for slot in range(lane.slots):
                    asyncio.ensure_future(self._dial(lane, slot))

    def _popen_local(self, lane: WorkerLane) -> subprocess.Popen:
        """Fork+exec one worker process (runs on an executor thread)."""
        host, port = self.address
        # workers import this very package; make sure the source tree the
        # coordinator runs from wins over any installed copy
        src_root = str(pathlib.Path(__file__).resolve().parents[3])
        env = spawn_env()
        env["PYTHONPATH"] = src_root + (
            ":" + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        return subprocess.Popen(
            [
                sys.executable, "-m", "repro.experiments.backends.worker",
                "--connect", f"{host}:{port}", "--lane", lane.name,
            ],
            env=env,
            stdout=subprocess.DEVNULL,
        )

    async def _spawn_local(self, lane: WorkerLane) -> None:
        # fork+exec blocks for milliseconds-to-worse under memory
        # pressure; on the loop thread that would stall every worker
        # connection at once (a respawn happens exactly when the loop is
        # busiest), so the Popen runs on the default executor
        loop = asyncio.get_running_loop()
        proc = await loop.run_in_executor(None, self._popen_local, lane)
        self._procs.append(proc)
        self._log.emit("worker_spawn", time.perf_counter(),
                       lane=lane.name, pid=proc.pid)

    async def _dial(self, lane: WorkerLane, slot: int) -> None:
        try:
            reader, writer = await asyncio.open_connection(lane.host, lane.port)
        except OSError as exc:
            self._log.emit("lane_unreachable", time.perf_counter(),
                           lane=lane.name, slot=slot, error=str(exc))
            return
        await self._serve_peer(reader, writer)

    async def _on_connection(self, reader, writer) -> None:
        await self._serve_peer(reader, writer)

    async def _serve_peer(self, reader, writer) -> None:
        """Feed one worker connection jobs until shutdown or death."""
        hello = await wire.read_frame(reader)
        if (
            not isinstance(hello, dict)
            or hello.get("type") != "hello"
            or hello.get("version") != wire.PROTOCOL_VERSION
        ):
            writer.close()
            return
        worker = f"{hello.get('lane', '?')}/{hello.get('host', '?')}:{hello.get('pid', 0)}"
        self._peers += 1
        self._connected_total += 1
        self._first_hello.set()
        self._log.emit("worker_connect", time.perf_counter(), worker=worker)
        try:
            while not self._closing:
                item = await self._next_job(reader, worker)
                if item is _SHUTDOWN or item is None:
                    if item is _SHUTDOWN:
                        await wire.write_frame(writer, {"type": "shutdown"})
                    return
                index, spec, submitted_at = item
                self._log.emit("lane_assign", time.perf_counter(),
                               worker=worker, index=index,
                               profile=getattr(spec, "profile", "?"))
                sent = await wire.write_frame(
                    writer,
                    {"type": "job", "index": index, "spec": spec,
                     "timeout": self.timeout},
                )
                reply = None
                if sent:
                    reply = await self._await_result(reader, worker)
                if not isinstance(reply, dict) or reply.get("type") != "result":
                    # the worker died (or wedged past grace) holding
                    # exactly this spec: provably the culprit
                    self._completions.put(
                        Completion(index, spec, crashed=True, worker=worker)
                    )
                    self._log.emit("worker_died", time.perf_counter(),
                                   worker=worker, blamed_index=index)
                    return
                record = reply["record"]
                queue_seconds = max(
                    0.0,
                    time.perf_counter() - submitted_at
                    - getattr(record, "duration", 0.0),
                )
                self._completions.put(
                    Completion(index, spec, record,
                               queue_seconds=queue_seconds, worker=worker)
                )
        finally:
            self._peers -= 1
            writer.close()
            self._log.emit("worker_disconnect", time.perf_counter(),
                           worker=worker)
            if not self._closing:
                await self._maybe_respawn(worker)

    async def _next_job(self, reader, worker):
        """Wait for a job while also watching the idle connection for EOF.

        The protocol is strictly request/response, so a byte (or EOF)
        arriving while no job is in flight can only mean the worker died
        idle — in which case nobody is blamed and the slot respawns.  The
        watcher is retracted (cancelled and awaited) before any job is
        sent, so it can never eat a result frame.
        """
        get_job = asyncio.ensure_future(self._jobs_q.get())
        eof_watch = asyncio.ensure_future(reader.read(1))
        done, _pending = await asyncio.wait(
            {get_job, eof_watch}, return_when=asyncio.FIRST_COMPLETED
        )
        died = False
        if eof_watch in done:
            eof_watch.exception()  # retrieve; a reset counts as a death too
            died = True
        else:
            eof_watch.cancel()
            try:
                await eof_watch
            except asyncio.CancelledError:
                pass  # the normal retraction: no byte was consumed
            except Exception:
                died = True  # connection reset in the race window
            else:
                died = True  # EOF (or a protocol-violating byte) raced us
        if died:
            if get_job in done:
                item = get_job.result()
                if item is not _SHUTDOWN:
                    # claimed in the same instant the worker died: the job
                    # was never sent, so it goes straight back to the queue
                    self._jobs_q.put_nowait(item)
            else:
                get_job.cancel()
                try:
                    await get_job
                except asyncio.CancelledError:
                    pass
            self._log.emit("worker_idle_exit", time.perf_counter(),
                           worker=worker)
            return None
        return get_job.result()

    async def _await_result(self, reader, worker):
        """The worker's result frame, bounded by timeout + grace."""
        if self.timeout is None:
            return await wire.read_frame(reader)
        try:
            return await asyncio.wait_for(
                wire.read_frame(reader), self.timeout + TIMEOUT_GRACE
            )
        except asyncio.TimeoutError:
            # in-worker alarm failed (wedged in a syscall?); give up on it
            self._log.emit("worker_wedged", time.perf_counter(), worker=worker)
            return None

    async def _maybe_respawn(self, worker: str) -> None:
        """Replace a dead locally-spawned worker, within budget."""
        lane_name = worker.split("/", 1)[0]
        lane = next(
            (ln for ln in self.lanes if ln.is_local and ln.name == lane_name),
            None,
        )
        if lane is None:
            return  # remote lanes are the remote agent's job to refill
        if self._respawns >= self._respawn_budget:
            self._log.emit("respawn_budget_exhausted", time.perf_counter(),
                           lane=lane_name)
            return
        self._respawns += 1
        await self._spawn_local(lane)

    async def _purge_queue(self) -> List[Tuple[int, object, float]]:
        dropped = []
        while True:
            try:
                item = self._jobs_q.get_nowait()
            except asyncio.QueueEmpty:
                return dropped
            if item is not _SHUTDOWN:
                dropped.append(item)

    async def _shutdown(self) -> None:
        if self._server is not None:
            self._server.close()
        # one sentinel per live peer releases every idle worker; peers
        # mid-job finish first (their completion is already queued by the
        # time the runner calls close)
        for _ in range(max(self._peers, 1)):
            self._jobs_q.put_nowait(_SHUTDOWN)
        for _ in range(100):  # up to ~5s for peers to say goodbye
            if self._peers <= 0:
                break
            await asyncio.sleep(0.05)
