"""In-process serial backend — the determinism oracle.

Runs one spec per :meth:`drain` call, inline, on the calling thread: no
pool, no pickling, real ``SIGALRM`` timeouts.  Every other backend must
be bit-identical to this one (the conformance suite enforces it).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Tuple

from ..sweep import execute_spec
from .base import Completion, ExecutionBackend


class SerialBackend(ExecutionBackend):
    kind = "serial"

    def __init__(self, timeout: Optional[float] = None) -> None:
        self.timeout = timeout
        self._queue: Deque[Tuple[int, object]] = deque()
        self._executed = 0

    def submit(self, index: int, spec: object, solo: bool = False) -> None:
        self._queue.append((index, spec))

    def drain(self) -> List[Completion]:
        if not self._queue:
            return []
        index, spec = self._queue.popleft()
        record = execute_spec(spec, self.timeout)
        self._executed += 1
        return [Completion(index, spec, record, worker="serial/0")]

    def cancel(self) -> List[Tuple[int, object]]:
        dropped = list(self._queue)
        self._queue.clear()
        return dropped

    def stats(self):
        return {"kind": self.kind, "workers": 1, "executed": self._executed}
