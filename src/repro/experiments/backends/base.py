"""The execution-backend protocol behind :class:`~repro.experiments.sweep.SweepRunner`.

The sweep engine separates *policy* from *mechanism*:

* The runner owns policy — caching, journaling/resume, retry/backoff,
  crash counting and quarantine, SIGINT/SIGTERM draining, metrics.
* An :class:`ExecutionBackend` owns mechanism — it takes ``(index, spec)``
  submissions and hands back :class:`Completion` objects, however it
  likes: inline (:class:`~.serial.SerialBackend`), across a process pool
  (:class:`~.pool.ProcessPoolBackend`), or over TCP to worker processes
  on other hosts (:class:`~.distributed.DistributedBackend`).

The contract that keeps all three bit-identical to the serial oracle:

* every submitted spec eventually yields exactly one :class:`Completion`
  (or is returned from :meth:`ExecutionBackend.cancel`);
* a completion carries either a structured
  :class:`~repro.experiments.sweep.RunRecord` (``ok``/``failed``/
  ``timeout`` — workers never raise) or ``crashed=True`` meaning the
  executing worker *died* and this spec is provably the culprit (it was
  running alone on that worker);
* backends never retry, never poison, never touch the cache or journal —
  a resubmitted spec is a fresh submission.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass
class Completion:
    """One finished (or dead) submission flowing back to the runner.

    ``crashed=True`` means the worker executing this spec hard-died
    (segfault, ``os._exit``, SIGKILL, dropped connection) with the spec
    provably at fault — the runner counts it toward quarantine.
    ``dropped=True`` means the backend discarded the spec without running
    it (only after :meth:`ExecutionBackend.cancel`, during a drain); the
    runner leaves its slot unfilled, exactly like a never-started spec.
    """

    index: int
    spec: object
    record: Optional[object] = None  # RunRecord unless crashed/dropped
    crashed: bool = False
    dropped: bool = False
    #: seconds between submission and execution start (0 for serial)
    queue_seconds: float = 0.0
    #: identity of the executing worker/lane, for trace events
    worker: str = ""


class ExecutionBackend(abc.ABC):
    """Pluggable spec-execution mechanism for :class:`SweepRunner`.

    Lifecycle: ``start()`` → any number of ``submit()``/``drain()``
    rounds (``cancel()`` at most once, during a drain) → ``close()``.
    Backends are single-use; the runner builds a fresh one per
    ``run()``.  Also usable as a context manager.
    """

    #: human-readable backend name, reported in metrics/trace events
    kind: str = "backend"

    def start(self) -> None:
        """Acquire workers.  Raises ``BackendError`` if none can be had."""

    @abc.abstractmethod
    def submit(self, index: int, spec: object, solo: bool = False) -> None:
        """Enqueue one spec.  ``solo=True`` asks for isolated execution
        (the runner resubmits crash suspects this way so a second crash
        stays provably attributable); backends with natural one-spec-
        per-worker isolation may ignore it."""

    @abc.abstractmethod
    def drain(self) -> List[Completion]:
        """Block until at least one submission finishes; return all that
        have.  Returns ``[]`` only when nothing is outstanding.  Raises
        ``BackendError`` when every worker is gone and no progress is
        possible."""

    def cancel(self) -> List[Tuple[int, object]]:
        """Discard work not yet started; return the ``(index, spec)``
        pairs discarded.  In-flight work keeps running to completion —
        this is a drain, not an abort."""
        return []

    def stats(self) -> Dict[str, object]:
        """JSON-serializable backend telemetry, merged into the sweep
        metrics snapshot (``kind``, worker counts, ``respawns``, and a
        wall-clock ``events`` list for the Perfetto export)."""
        return {"kind": self.kind}

    def close(self) -> None:
        """Release workers.  Idempotent; never raises."""

    # -- context manager ------------------------------------------------
    def __enter__(self) -> "ExecutionBackend":
        self.start()
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False


@dataclass
class BackendEventLog:
    """Wall-clock backend lifecycle events (relative seconds).

    These are *harness* telemetry, deliberately separate from the
    cycle-keyed simulator event schema in ``repro.observability.events``
    (which is diff-stable and carries no wall clock): they land in the
    ``backend`` section of ``sweep_metrics.json`` and as Perfetto instant
    events in ``sweep_trace.json``.
    """

    clock0: float = 0.0
    events: List[Dict[str, object]] = field(default_factory=list)
    limit: int = 10_000

    def emit(self, event: str, t: float, **details: object) -> None:
        if len(self.events) >= self.limit:  # pragma: no cover - runaway guard
            return
        entry: Dict[str, object] = {"event": event, "t": round(t - self.clock0, 6)}
        entry.update(details)
        self.events.append(entry)
