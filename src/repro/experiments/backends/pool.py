"""``ProcessPoolExecutor`` backend with crash isolation.

This is the pre-backend ``SweepRunner._run_parallel`` fan-out ported onto
the :class:`~.base.ExecutionBackend` protocol.  The crash-attribution
invariant survives the port unchanged:

* at most ``jobs`` futures are ever in flight, so when the pool breaks
  the in-flight set is exactly the set of suspects;
* suspects are re-run *one at a time* (the internal probe queue, plus
  ``submit(..., solo=True)`` resubmissions from the runner) — a spec that
  breaks the pool while flying solo is provably the culprit, and only
  then does the backend emit ``crashed=True``;
* an innocent spec that merely shared the pool with a crasher is never
  blamed: it silently joins the probe queue and re-runs.
"""

from __future__ import annotations

import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Deque, Dict, List, Optional, Tuple

from ..sweep import RunRecord, execute_spec
from .base import BackendEventLog, Completion, ExecutionBackend

#: (index, spec, enqueued-at) triples flowing through the internal queues
_Item = Tuple[int, object, float]


class ProcessPoolBackend(ExecutionBackend):
    kind = "process-pool"

    def __init__(self, jobs: int, timeout: Optional[float] = None) -> None:
        self.jobs = max(1, int(jobs))
        self.timeout = timeout
        self._queue: Deque[_Item] = deque()
        self._probe: Deque[_Item] = deque()  # crash suspects, flown solo
        self._futures: Dict[object, _Item] = {}
        self._pool: Optional[ProcessPoolExecutor] = None
        self._broken = False
        self._cancelled = False
        self._respawns = 0
        self._log = BackendEventLog(clock0=time.perf_counter())

    # ------------------------------------------------------------------
    def start(self) -> None:
        self._log.emit("backend_start", time.perf_counter(), jobs=self.jobs)

    def submit(self, index: int, spec: object, solo: bool = False) -> None:
        item = (index, spec, time.perf_counter())
        (self._probe if solo else self._queue).append(item)

    def cancel(self) -> List[Tuple[int, object]]:
        self._cancelled = True
        dropped = [(i, s) for i, s, _ in self._queue]
        dropped += [(i, s) for i, s, _ in self._probe]
        self._queue.clear()
        self._probe.clear()
        return dropped

    # ------------------------------------------------------------------
    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.jobs)
        return self._pool

    def _respawn(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
        self._broken = False
        self._respawns += 1
        self._log.emit("pool_respawn", time.perf_counter(), respawns=self._respawns)

    def _top_up(self) -> None:
        """Keep the pool saturated; probes fly alone."""
        while not self._broken and not self._cancelled:
            if self._probe:
                if self._futures:
                    return  # wait for the sky to clear before a solo probe
                item = self._probe.popleft()
            elif self._queue and len(self._futures) < self.jobs:
                item = self._queue.popleft()
            else:
                return
            index, spec, _ = item
            try:
                future = self._ensure_pool().submit(execute_spec, spec, self.timeout)
            except BrokenProcessPool:
                # pool died before this spec even ran: not a suspect
                self._broken = True
                self._queue.appendleft(item)
                return
            # queue time starts over at (re)submission, like the old runner
            self._futures[future] = (index, spec, time.perf_counter())

    def drain(self) -> List[Completion]:
        completions: List[Completion] = []
        while not completions:
            if not (self._queue or self._probe or self._futures):
                return completions
            self._top_up()
            if not self._futures:
                if self._broken:
                    self._respawn()
                    continue
                if self._cancelled:
                    return completions
                continue  # pragma: no cover - defensive; top_up always feeds
            done, _ = wait(self._futures, return_when=FIRST_COMPLETED)
            for future in done:
                index, spec, t0 = self._futures.pop(future)
                try:
                    record = future.result()
                except BrokenProcessPool:
                    self._broken = True
                    if not self._futures:  # crashed flying solo: guilty
                        completions.append(
                            Completion(index, spec, crashed=True, worker=self.kind)
                        )
                        continue
                    self._probe.append((index, spec, t0))
                    continue
                except Exception as exc:  # pool-level failure
                    record = RunRecord(
                        spec=spec,
                        status="failed",
                        error=f"{type(exc).__name__}: {exc}",
                    )
                queue_seconds = max(
                    0.0, time.perf_counter() - t0 - record.duration
                )
                completions.append(
                    Completion(
                        index, spec, record,
                        queue_seconds=queue_seconds, worker=self.kind,
                    )
                )
            if self._broken:
                # the pool is dead; every other in-flight spec is a
                # suspect — requeue for solo probing, then respawn
                if self._cancelled:
                    # draining: suspects are dropped, like queued work
                    completions.extend(
                        Completion(i, s, dropped=True)
                        for i, s, _ in self._futures.values()
                    )
                else:
                    self._probe.extend(self._futures.values())
                self._futures.clear()
                self._respawn()
        return completions

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=not self._broken, cancel_futures=True)
            self._pool = None
        self._log.emit("backend_close", time.perf_counter())

    def stats(self):
        return {
            "kind": self.kind,
            "workers": self.jobs,
            "respawns": self._respawns,
            "events": list(self._log.events),
        }
