"""Sweep worker process: ``python -m repro.experiments.backends.worker``.

Two modes:

* ``--connect HOST:PORT`` — dial the coordinator once, serve jobs over
  that single connection until it says ``shutdown`` (or disappears),
  then exit.  This is how :class:`~.distributed.DistributedBackend`
  spawns localhost lanes.
* ``--serve HOST:PORT [--slots N]`` — a standing worker *agent* for a
  remote host: listen, fork one child per inbound coordinator
  connection (at most ``N`` concurrently), serve, reap.  Start one of
  these per remote machine, then point a lane at it
  (``repro.sweep(..., backend="distributed", lanes="host:port,N")``).

Jobs run on the process's main thread so the per-spec ``SIGALRM``
timeout inside :func:`repro.experiments.sweep.execute_spec` is real.
Each job yields exactly one ``result`` frame; the worker never raises
into the socket — failures come back as structured ``RunRecord``s, and
a hard death (crash fault, SIGKILL, OOM) is visible to the coordinator
as EOF on this connection, attributable to exactly the spec it was
running (one spec in flight per connection, always).
"""

from __future__ import annotations

import argparse
import os
import signal
import socket
import sys
from typing import Optional, Tuple

from ..sweep import execute_spec
from . import wire


def parse_address(text: str) -> Tuple[str, int]:
    host, _, port = text.rpartition(":")
    if not host or not port.isdigit():
        raise ValueError(f"address must be HOST:PORT, got {text!r}")
    return host, int(port)


def serve_connection(sock: socket.socket, lane: str) -> None:
    """Serve one coordinator connection until shutdown/EOF."""
    wire.send(
        sock,
        {
            "type": "hello",
            "lane": lane,
            "pid": os.getpid(),
            "host": socket.gethostname(),
            "version": wire.PROTOCOL_VERSION,
        },
    )
    while True:
        message = wire.recv(sock)
        if message is None or message.get("type") == "shutdown":
            return
        if message.get("type") != "job":  # pragma: no cover - bad peer
            raise wire.WireError(f"unexpected message {message.get('type')!r}")
        record = execute_spec(message["spec"], message.get("timeout"))
        wire.send(sock, {"type": "result", "index": message["index"], "record": record})


def run_connect(address: str, lane: str) -> int:
    host, port = parse_address(address)
    with socket.create_connection((host, port)) as sock:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        try:
            serve_connection(sock, lane)
        except (ConnectionError, BrokenPipeError, wire.WireError):
            return 1  # coordinator went away mid-conversation
    return 0


def run_serve(address: str, slots: int, lane: str) -> int:  # pragma: no cover
    """Prefork agent mode for remote hosts (exercised manually/CI only)."""
    host, port = parse_address(address)
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    listener.bind((host, port))
    listener.listen(slots)
    print(f"repro worker agent: {slots} slot(s) on {host}:{port}", flush=True)
    children: set = set()

    def reap() -> None:
        while children:
            try:
                pid, _ = os.waitpid(-1, os.WNOHANG)
            except ChildProcessError:
                children.clear()
                return
            if pid == 0:
                return
            children.discard(pid)

    while True:
        reap()
        conn, _peer = listener.accept()
        while len(children) >= slots:  # back-pressure: finish a child first
            os.waitpid(-1, 0)
            reap()
        pid = os.fork()
        if pid == 0:
            listener.close()
            signal.signal(signal.SIGTERM, signal.SIG_DFL)
            with conn:
                try:
                    serve_connection(conn, lane)
                except (ConnectionError, BrokenPipeError, wire.WireError):
                    os._exit(1)
            os._exit(0)
        children.add(pid)
        conn.close()


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.backends.worker",
        description="sweep worker process for the distributed backend",
    )
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--connect", metavar="HOST:PORT",
                      help="dial a coordinator and serve one connection")
    mode.add_argument("--serve", metavar="HOST:PORT",
                      help="standing agent: accept coordinator connections")
    parser.add_argument("--slots", type=int, default=1,
                        help="concurrent connections in --serve mode")
    parser.add_argument("--lane", default="local",
                        help="lane name reported in the hello handshake")
    args = parser.parse_args(argv)
    if args.connect:
        return run_connect(args.connect, args.lane)
    return run_serve(args.serve, max(1, args.slots), args.lane)


if __name__ == "__main__":  # pragma: no cover - subprocess entry point
    sys.exit(main())
