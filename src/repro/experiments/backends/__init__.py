"""Pluggable execution backends for :class:`~repro.experiments.sweep.SweepRunner`.

Four implementations of one protocol (:class:`~.base.ExecutionBackend`):

* :class:`~.serial.SerialBackend` — in-process, the determinism oracle;
* :class:`~.pool.ProcessPoolBackend` — ``ProcessPoolExecutor`` fan-out
  with solo-probe crash attribution;
* :class:`~.distributed.DistributedBackend` — asyncio coordinator
  feeding TCP worker processes on this or other hosts;
* :class:`~.batch.BatchBackend` — lockstep batches of simulations per
  process through the fused cycle loop of :mod:`repro.batch`.

All four produce bit-identical results for the same specs; the
conformance suite (``tests/experiments/test_backends.py``) proves it.
See ``docs/SWEEPS.md`` for the user-facing story.
"""

from __future__ import annotations

from typing import Optional

from ...errors import BackendError
from .base import BackendEventLog, Completion, ExecutionBackend
from .batch import DEFAULT_BATCH_SIZE, BatchBackend
from .distributed import DistributedBackend, WorkerLane, parse_lanes
from .pool import ProcessPoolBackend
from .serial import SerialBackend

#: the spellings ``SweepConfig.backend`` accepts (besides ``"auto"``)
BACKEND_KINDS = ("serial", "process-pool", "distributed", "batch")


def create_backend(
    kind: str,
    *,
    jobs: int = 1,
    timeout: Optional[float] = None,
    lanes=None,
    batch_size: Optional[int] = None,
) -> ExecutionBackend:
    """Build a backend by name (the ``SweepConfig.backend`` vocabulary)."""
    if kind == "serial":
        return SerialBackend(timeout=timeout)
    if kind == "process-pool":
        return ProcessPoolBackend(jobs, timeout=timeout)
    if kind == "distributed":
        return DistributedBackend(lanes=lanes, jobs=jobs, timeout=timeout)
    if kind == "batch":
        return BatchBackend(
            batch_size=batch_size if batch_size is not None else DEFAULT_BATCH_SIZE,
            jobs=jobs,
            timeout=timeout,
        )
    raise BackendError(
        f"unknown execution backend {kind!r}; choose from "
        f"{('auto',) + BACKEND_KINDS}"
    )


__all__ = [
    "BACKEND_KINDS",
    "BackendError",
    "BackendEventLog",
    "BatchBackend",
    "Completion",
    "DistributedBackend",
    "ExecutionBackend",
    "ProcessPoolBackend",
    "SerialBackend",
    "WorkerLane",
    "create_backend",
    "parse_lanes",
]
