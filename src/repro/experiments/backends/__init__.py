"""Pluggable execution backends for :class:`~repro.experiments.sweep.SweepRunner`.

Three implementations of one protocol (:class:`~.base.ExecutionBackend`):

* :class:`~.serial.SerialBackend` — in-process, the determinism oracle;
* :class:`~.pool.ProcessPoolBackend` — ``ProcessPoolExecutor`` fan-out
  with solo-probe crash attribution;
* :class:`~.distributed.DistributedBackend` — asyncio coordinator
  feeding TCP worker processes on this or other hosts.

All three produce bit-identical results for the same specs; the
conformance suite (``tests/experiments/test_backends.py``) proves it.
See ``docs/SWEEPS.md`` for the user-facing story.
"""

from __future__ import annotations

from typing import Optional

from ...errors import BackendError
from .base import BackendEventLog, Completion, ExecutionBackend
from .distributed import DistributedBackend, WorkerLane, parse_lanes
from .pool import ProcessPoolBackend
from .serial import SerialBackend

#: the spellings ``SweepConfig.backend`` accepts (besides ``"auto"``)
BACKEND_KINDS = ("serial", "process-pool", "distributed")


def create_backend(
    kind: str,
    *,
    jobs: int = 1,
    timeout: Optional[float] = None,
    lanes=None,
) -> ExecutionBackend:
    """Build a backend by name (the ``SweepConfig.backend`` vocabulary)."""
    if kind == "serial":
        return SerialBackend(timeout=timeout)
    if kind == "process-pool":
        return ProcessPoolBackend(jobs, timeout=timeout)
    if kind == "distributed":
        return DistributedBackend(lanes=lanes, jobs=jobs, timeout=timeout)
    raise BackendError(
        f"unknown execution backend {kind!r}; choose from "
        f"{('auto',) + BACKEND_KINDS}"
    )


__all__ = [
    "BACKEND_KINDS",
    "BackendError",
    "BackendEventLog",
    "Completion",
    "DistributedBackend",
    "ExecutionBackend",
    "ProcessPoolBackend",
    "SerialBackend",
    "WorkerLane",
    "create_backend",
    "parse_lanes",
]
