"""Lockstep batch backend — many simulations per process.

:class:`BatchBackend` wraps :class:`repro.batch.BatchEngine`: instead of
one simulation per worker invocation, each process advances up to
``batch_size`` independent specs through the fused cycle loop together,
retiring finished members and back-filling from the queue.  Per-step
interpreter overhead is amortized across the batch, which is where the
speedup over :class:`~.serial.SerialBackend` comes from (the simulated
numbers are bit-identical — the conformance suite proves it).

Two composition modes:

* ``jobs <= 1`` — one in-process engine, the batch analogue of
  :class:`~.serial.SerialBackend` (and like it, a hard worker crash is a
  sweep crash);
* ``jobs > 1`` — a ``ProcessPoolExecutor`` whose tasks each run a *full
  batch* through the in-process path, with :class:`~.pool.ProcessPoolBackend`'s
  crash-attribution story lifted to chunk granularity: when the pool
  breaks, every spec of every in-flight chunk becomes a suspect and
  re-flies in a single-spec chunk; only a spec that breaks the pool
  flying alone is reported ``crashed=True``.

Specs the fused core cannot represent (multiprogrammed runs,
``record_granularity`` interval recording) silently fall back to
:func:`~repro.experiments.sweep.execute_spec`, so any spec mix is
accepted.
"""

from __future__ import annotations

import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Deque, Dict, List, Optional, Tuple

from ... import faults
from ...batch import BatchEngine, BatchJob, BatchOutcome
from ..runner import RunResult
from ..sweep import (
    RunRecord,
    RunSpec,
    _build_steering,
    _trace_for,
    _validate_record,
    execute_spec,
)
from ..timeline import TimelineRecorder
from .base import BackendEventLog, Completion, ExecutionBackend

#: (index, spec, enqueued-at) triples, as in the other backends
_Item = Tuple[int, object, float]

DEFAULT_BATCH_SIZE = 8


def _batchable(spec: object) -> bool:
    """Whether the fused core can run this spec (see module docstring)."""
    return (
        isinstance(spec, RunSpec)
        and spec.multiprog is None
        and spec.record_granularity is None
    )


def _failed_record(spec: object, exc: BaseException, duration: float) -> RunRecord:
    return RunRecord(
        spec=spec,
        status="failed",
        error=f"{type(exc).__name__}: {exc}",
        duration=duration,
    )


class BatchBackend(ExecutionBackend):
    kind = "batch"

    def __init__(
        self,
        batch_size: int = DEFAULT_BATCH_SIZE,
        jobs: int = 1,
        timeout: Optional[float] = None,
        quantum: int = 2048,
    ) -> None:
        self.batch_size = max(1, int(batch_size))
        self.jobs = max(1, int(jobs))
        self.timeout = timeout
        self.quantum = quantum
        self._executed = 0
        self._log = BackendEventLog(clock0=time.perf_counter())
        # in-process mode
        self._engine = BatchEngine(
            self.batch_size, quantum=quantum, timeout=timeout
        )
        self._inline: Deque[_Item] = deque()  # batchable, not yet materialized
        self._fallback: Deque[_Item] = deque()  # execute_spec specs
        self._meta: Dict[int, Tuple[int, object, Optional[TimelineRecorder], float]] = {}
        self._next_key = 0
        # pool-of-batches mode
        self._queue: Deque[_Item] = deque()
        self._probe: Deque[_Item] = deque()
        self._futures: Dict[object, List[_Item]] = {}
        self._pool: Optional[ProcessPoolExecutor] = None
        self._broken = False
        self._cancelled = False
        self._respawns = 0

    # ------------------------------------------------------------------
    def start(self) -> None:
        self._log.emit(
            "backend_start",
            time.perf_counter(),
            jobs=self.jobs,
            batch_size=self.batch_size,
        )

    def submit(self, index: int, spec: object, solo: bool = False) -> None:
        item = (index, spec, time.perf_counter())
        if self.jobs > 1:
            (self._probe if solo else self._queue).append(item)
        elif _batchable(spec):
            self._inline.append(item)  # solo is meaningless in-process
        else:
            self._fallback.append(item)

    def cancel(self) -> List[Tuple[int, object]]:
        self._cancelled = True
        dropped = [(i, s) for i, s, _ in self._inline]
        dropped += [(i, s) for i, s, _ in self._fallback]
        dropped += [(i, s) for i, s, _ in self._queue]
        dropped += [(i, s) for i, s, _ in self._probe]
        self._inline.clear()
        self._fallback.clear()
        self._queue.clear()
        self._probe.clear()
        # materialized-but-not-started engine jobs are dropped too; live
        # members keep running to retirement, like in-flight pool work
        for key, _job in self._engine.cancel_pending():
            index, spec, _recorder, _t0 = self._meta.pop(key)
            dropped.append((index, spec))
        return dropped

    def drain(self) -> List[Completion]:
        if self.jobs > 1:
            return self._drain_pool()
        return self._drain_inline()

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=not self._broken, cancel_futures=True)
            self._pool = None
        self._log.emit("backend_close", time.perf_counter())

    def stats(self):
        return {
            "kind": self.kind,
            "workers": self.jobs,
            "batch_size": self.batch_size,
            "executed": self._executed,
            "respawns": self._respawns,
            "events": list(self._log.events),
        }

    # ------------------------------------------------------------------
    # in-process engine mode

    def _materialize(self, item: _Item, completions: List[Completion]) -> None:
        """Build one spec's :class:`BatchJob` and feed it to the engine.

        Mirrors the front half of ``execute_spec``/``_run_spec``: chaos
        injection first, then trace/controller/steering assembly; any
        failure becomes a structured ``failed`` record immediately.
        """
        index, spec, t0 = item
        start = time.perf_counter()
        try:
            faults.on_execute(spec)
            trace = _trace_for(spec.profile, spec.trace_length, spec.seed)
            controller = spec.controller.build()
            recorder = (
                TimelineRecorder(controller) if controller is not None else None
            )
            steering = _build_steering(spec.steering) if spec.steering else None
            job = BatchJob(
                trace=trace,
                config=spec.config,
                controller=recorder,
                steering=steering,
                warmup=spec.warmup,
                label=spec.label,
                max_instructions=spec.max_instructions,
                fault_schedule=spec.faults,
            )
        except Exception as exc:
            record = _failed_record(spec, exc, time.perf_counter() - start)
            completions.append(
                Completion(index, spec, record, worker="batch/0")
            )
            return
        key = self._next_key
        self._next_key += 1
        self._meta[key] = (index, spec, recorder, t0)
        self._engine.submit(key, job)

    def _record(self, outcome: BatchOutcome, spec: object, recorder) -> RunRecord:
        """The back half of ``execute_spec``: outcome → structured record."""
        if outcome.timed_out:
            return RunRecord(
                spec=spec,
                status="timeout",
                error=f"run exceeded {self.timeout:g}s timeout",
                duration=outcome.elapsed,
            )
        if outcome.error is not None:
            return _failed_record(spec, outcome.error, outcome.elapsed)
        b = outcome.result
        record = RunRecord(
            spec=spec,
            status="ok",
            result=RunResult(
                name=b.name,
                label=b.label,
                ipc=b.ipc,
                committed=b.committed,
                cycles=b.cycles,
                mispredict_interval=b.mispredict_interval,
                avg_active_clusters=b.avg_active_clusters,
                reconfigurations=b.reconfigurations,
                stats=b.stats,
            ),
            events=tuple(recorder.events) if recorder is not None else (),
            duration=outcome.elapsed,
        )
        try:
            faults.poison_record(record)
            _validate_record(record)
        except Exception as exc:
            return _failed_record(spec, exc, outcome.elapsed)
        return record

    def _drain_inline(self) -> List[Completion]:
        completions: List[Completion] = []
        while not completions:
            # keep the engine fed; materialization stays lazy so a long
            # queue does not pin every trace in memory at once
            while self._inline and self._engine.outstanding < self.batch_size:
                self._materialize(self._inline.popleft(), completions)
            if self._engine.outstanding:
                for outcome in self._engine.step_round():
                    index, spec, recorder, t0 = self._meta.pop(outcome.key)
                    record = self._record(outcome, spec, recorder)
                    self._executed += 1
                    completions.append(
                        Completion(
                            index,
                            spec,
                            record,
                            queue_seconds=max(
                                0.0,
                                time.perf_counter() - t0 - record.duration,
                            ),
                            worker="batch/0",
                        )
                    )
                continue
            if completions:
                break
            if self._fallback:
                index, spec, t0 = self._fallback.popleft()
                record = execute_spec(spec, self.timeout)
                self._executed += 1
                completions.append(
                    Completion(
                        index,
                        spec,
                        record,
                        queue_seconds=max(
                            0.0, time.perf_counter() - t0 - record.duration
                        ),
                        worker="batch/0",
                    )
                )
                continue
            if not self._inline:
                break  # nothing outstanding anywhere
        return completions

    # ------------------------------------------------------------------
    # pool-of-batches mode (jobs > 1)

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.jobs)
        return self._pool

    def _respawn(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
        self._broken = False
        self._respawns += 1
        self._log.emit("pool_respawn", time.perf_counter(), respawns=self._respawns)

    def _top_up_pool(self) -> None:
        """Keep ``jobs`` chunks in flight; probes fly alone and solo."""
        while not self._broken and not self._cancelled:
            if self._probe:
                if self._futures:
                    return  # wait for the sky to clear, like pool.py
                chunk = [self._probe.popleft()]
            elif self._queue and len(self._futures) < self.jobs:
                chunk = [
                    self._queue.popleft()
                    for _ in range(min(self.batch_size, len(self._queue)))
                ]
            else:
                return
            specs = [spec for _, spec, _ in chunk]
            try:
                future = self._ensure_pool().submit(
                    _execute_batch,
                    specs,
                    self.batch_size,
                    self.timeout,
                    self.quantum,
                )
            except BrokenProcessPool:
                self._broken = True
                for item in reversed(chunk):
                    self._queue.appendleft(item)
                return
            now = time.perf_counter()
            self._futures[future] = [(i, s, now) for i, s, _ in chunk]

    def _drain_pool(self) -> List[Completion]:
        completions: List[Completion] = []
        while not completions:
            if not (self._queue or self._probe or self._futures):
                return completions
            self._top_up_pool()
            if not self._futures:
                if self._broken:
                    self._respawn()
                    continue
                if self._cancelled:
                    return completions
                continue  # pragma: no cover - defensive; top-up always feeds
            done, _ = wait(self._futures, return_when=FIRST_COMPLETED)
            for future in done:
                chunk = self._futures.pop(future)
                try:
                    records = future.result()
                except BrokenProcessPool:
                    self._broken = True
                    if not self._futures and len(chunk) == 1:
                        # a single-spec chunk crashed flying solo: guilty
                        index, spec, _ = chunk[0]
                        completions.append(
                            Completion(index, spec, crashed=True, worker=self.kind)
                        )
                        continue
                    self._probe.extend(chunk)
                    continue
                except Exception as exc:  # pool-level failure
                    records = [
                        _failed_record(spec, exc, 0.0) for _, spec, _ in chunk
                    ]
                now = time.perf_counter()
                for (index, spec, t0), record in zip(chunk, records):
                    self._executed += 1
                    completions.append(
                        Completion(
                            index,
                            spec,
                            record,
                            queue_seconds=max(0.0, now - t0 - record.duration),
                            worker=self.kind,
                        )
                    )
            if self._broken:
                if self._cancelled:
                    completions.extend(
                        Completion(i, s, dropped=True)
                        for chunk in self._futures.values()
                        for i, s, _ in chunk
                    )
                else:
                    for chunk in self._futures.values():
                        self._probe.extend(chunk)
                self._futures.clear()
                self._respawn()
        return completions


def _execute_batch(
    specs: List[object],
    batch_size: int,
    timeout: Optional[float],
    quantum: int,
) -> List[RunRecord]:
    """Pool-worker task: run one chunk through the in-process path.

    Reusing :class:`BatchBackend` in its ``jobs=1`` mode keeps the two
    composition modes bit-identical by construction.
    """
    backend = BatchBackend(
        batch_size=batch_size, jobs=1, timeout=timeout, quantum=quantum
    )
    backend.start()
    for i, spec in enumerate(specs):
        backend.submit(i, spec)
    records: List[Optional[RunRecord]] = [None] * len(specs)
    while True:
        batch = backend.drain()
        if not batch:
            break
        for completion in batch:
            records[completion.index] = completion.record
    backend.close()
    return records  # type: ignore[return-value]
