#!/usr/bin/env python3
"""Partitioning a 16-cluster machine between two threads (Sections 1, 8).

The paper's closing argument: after the dynamic scheme discovers that a
thread only needs a few clusters, the freed clusters can host another
thread — "simultaneously achieving the goals of optimal single and
multi-threaded throughput".  This example measures two programs' scaling
curves, computes the throughput-optimal static partition, and contrasts it
with naive even sharing.

Run:  python examples/multithreaded_partition.py
"""

from repro import (
    best_partition,
    generate_trace,
    get_profile,
    measure_scaling,
    partition_report,
)

TRACE_LENGTH = 20_000


def main() -> None:
    # vpr saturates early (communication-averse); swim scales to 16
    curves = []
    for bench in ("vpr", "swim"):
        trace = generate_trace(get_profile(bench), TRACE_LENGTH, seed=11)
        curve = measure_scaling(trace, allocations=(2, 4, 8, 12, 16), warmup=3_000)
        curves.append(curve)
        pretty = "  ".join(f"{n}:{ipc:.2f}" for n, ipc in sorted(curve.ipc.items()))
        print(f"{bench:6s} scaling: {pretty}")

    print()
    print(partition_report(curves, total_clusters=16))

    print("\nfairness objective (maximize the slowest thread):")
    split, value = best_partition(curves, 16, objective=min)
    for curve, share in zip(curves, split):
        print(f"  {curve.name:6s} gets {share:2d} clusters (IPC {curve.at(share):.2f})")


if __name__ == "__main__":
    main()
