#!/usr/bin/env python3
"""Trace the interval-based exploration algorithm making its decisions.

Runs the Figure 4 controller (interval boundaries, exploration of all
cluster counts, instability-driven interval growth) on the phased ``art``
workload with a :class:`repro.observability.TraceSession` attached, then:

* prints the controller's decision log (explorations, chosen configs,
  phase changes) straight from the captured events, and
* exports ``events.jsonl``, ``timeline.csv``, and ``trace.json`` — load
  the last one in Perfetto (https://ui.perfetto.dev) or chrome://tracing
  to see IPC and active-cluster counters next to the decision instants.

Tracing is passive: the statistics below are bit-identical to an
untraced run.

Run:  python examples/trace_exploration.py
"""

import pathlib

from repro import generate_trace, get_profile, simulate
from repro.observability import MemoryTracer, write_chrome_trace

TRACE_LENGTH = 30_000
OUT = pathlib.Path("trace_exploration_out")


def main() -> None:
    profile = get_profile("gzip")
    trace = generate_trace(profile, TRACE_LENGTH, seed=11)
    print(f"benchmark: {profile.name} — {profile.description}\n")

    tracer = MemoryTracer(sample_period=500)
    result = simulate(trace, reconfig_policy="explore", trace=tracer)
    print(f"IPC {result.ipc:.3f}, {result.reconfigurations} reconfigurations, "
          f"{result.avg_active_clusters:.1f} clusters active on average\n")

    print("decision log:")
    for event in tracer.events:
        kind = event["kind"]
        cycle = event["cycle"]
        if kind == "explore_start":
            print(f"  cycle {cycle:6d}  explore {event['candidates']}")
        elif kind == "explore_sample":
            print(f"  cycle {cycle:6d}    measured {event['clusters']:2d} "
                  f"clusters -> IPC {event['ipc']:.3f}")
        elif kind == "explore_decision":
            print(f"  cycle {cycle:6d}  chose {event['chosen']} clusters")
        elif kind == "phase_change":
            print(f"  cycle {cycle:6d}  phase change "
                  f"(instability {event['instability']:.2f}, "
                  f"interval {event['interval_length']})")
        elif kind == "interval_grow":
            print(f"  cycle {cycle:6d}  interval grown to "
                  f"{event['interval_length']}")
        elif kind == "discontinue":
            print(f"  cycle {cycle:6d}  exploration discontinued, "
                  f"locked at {event['locked']} clusters")

    OUT.mkdir(parents=True, exist_ok=True)
    write_chrome_trace(tracer.events, OUT / "trace.json")
    print(f"\nChrome trace written to {OUT / 'trace.json'} — open it in "
          f"Perfetto (https://ui.perfetto.dev) or chrome://tracing")


if __name__ == "__main__":
    main()
