#!/usr/bin/env python3
"""Ablation: stall-on-mispredict vs wrong-path fetch modeling.

By default this simulator stalls fetch at a mispredicted branch (the
trace-driven convention).  `FrontEndConfig.model_wrong_path` instead
fabricates wrong-path instructions that occupy fetch/dispatch bandwidth,
issue-queue slots, and registers until the branch resolves and squashes
them — the behaviour of an execution-driven machine like the paper's
SimpleScalar setup.

This ablation quantifies the difference on a branchy and a predictable
benchmark: how much wrong-path work gets fetched and squashed, and what it
costs.

Run:  python examples/wrong_path_ablation.py
"""

import dataclasses

from repro import default_config, generate_trace, get_profile, simulate

TRACE_LENGTH = 20_000


def _with_wrong_path(config):
    fe = dataclasses.replace(config.front_end, model_wrong_path=True)
    return dataclasses.replace(config, front_end=fe)


def main() -> None:
    base = default_config(16)
    wrong = _with_wrong_path(base)
    print(f"{'bench':8s} {'mode':12s} {'IPC':>6s} {'mispredicts':>11s} "
          f"{'squashed':>9s} {'squash/real':>11s}")
    for bench in ("vpr", "crafty", "swim"):
        trace = generate_trace(get_profile(bench), TRACE_LENGTH, seed=7)
        for label, config in (("stall", base), ("wrong-path", wrong)):
            stats = simulate(
                trace, processor=config, reconfig_policy="static-16"
            ).stats
            ratio = stats.squashed / max(1, stats.committed)
            print(f"{bench:8s} {label:12s} {stats.ipc:6.3f} "
                  f"{stats.mispredicts:11d} {stats.squashed:9d} {ratio:11.2f}")
    print("\nAt these parameters the squashed work rides in otherwise-idle "
          "slots,\nso IPC barely moves — which is why the stall model is the "
          "default\n(see DESIGN.md deviation 3).")


if __name__ == "__main__":
    main()
