#!/usr/bin/env python3
"""Quickstart: simulate a benchmark on static and dynamic cluster configs.

Builds the paper's base 16-cluster processor (ring interconnect,
centralized cache), runs the synthetic `gzip` benchmark on a few static
cluster counts, then lets the Figure 4 interval-based algorithm choose the
cluster count dynamically.

Run:  python examples/quickstart.py
"""

from repro import (
    ExploreConfig,
    IntervalExploreController,
    StaticController,
    default_config,
    generate_trace,
    get_profile,
    simulate,
)

TRACE_LENGTH = 30_000


def main() -> None:
    profile = get_profile("gzip")
    print(f"benchmark: {profile.name} — {profile.description}")
    trace = generate_trace(profile, TRACE_LENGTH, seed=42)
    print(f"trace: {len(trace)} instructions, "
          f"{trace.branch_count} branches, {trace.memref_count} memory refs\n")

    config = default_config(num_clusters=16)

    print("static configurations:")
    for n in (2, 4, 8, 16):
        stats = simulate(trace, config, StaticController(n))
        print(f"  {n:2d} clusters: IPC {stats.ipc:.3f} "
              f"(branch accuracy {stats.branch_accuracy:.1%}, "
              f"L1 hit rate {stats.l1_hit_rate:.1%})")

    controller = IntervalExploreController(ExploreConfig.scaled())
    stats = simulate(trace, config, controller)
    print(f"\ndynamic (interval-based with exploration):")
    print(f"  IPC {stats.ipc:.3f}, {stats.reconfigurations} reconfigurations, "
          f"{stats.avg_active_clusters:.1f} clusters active on average")
    print(f"  configurations chosen: {controller.choice_counts}")


if __name__ == "__main__":
    main()
