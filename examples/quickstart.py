#!/usr/bin/env python3
"""Quickstart: simulate a benchmark on static and dynamic cluster configs.

Builds the paper's base 16-cluster processor (ring interconnect,
centralized cache), runs the synthetic `gzip` benchmark on a few static
cluster counts, then lets the Figure 4 interval-based algorithm choose the
cluster count dynamically.

Everything goes through the stable facade (``repro.api``): one ``simulate``
call per run, keyword vocabulary, a ``SimResult`` back.

Run:  python examples/quickstart.py
"""

from repro import generate_trace, get_profile, simulate

TRACE_LENGTH = 30_000


def main() -> None:
    profile = get_profile("gzip")
    print(f"benchmark: {profile.name} — {profile.description}")
    trace = generate_trace(profile, TRACE_LENGTH, seed=42)
    print(f"trace: {len(trace)} instructions, "
          f"{trace.branch_count} branches, {trace.memref_count} memory refs\n")

    print("static configurations:")
    for n in (2, 4, 8, 16):
        result = simulate(trace, reconfig_policy=f"static-{n}")
        print(f"  {n:2d} clusters: IPC {result.ipc:.3f} "
              f"(branch accuracy {result.stats.branch_accuracy:.1%}, "
              f"L1 hit rate {result.stats.l1_hit_rate:.1%})")

    result = simulate(trace, reconfig_policy="explore")
    print(f"\ndynamic (interval-based with exploration):")
    print(f"  IPC {result.ipc:.3f}, {result.reconfigurations} reconfigurations, "
          f"{result.avg_active_clusters:.1f} clusters active on average")


if __name__ == "__main__":
    main()
