#!/usr/bin/env python3
"""Interconnect and cache-organization study (Sections 2.3, 5, 6).

Compares, for one distant-ILP and one communication-averse benchmark:

* ring vs grid interconnect at 16 clusters,
* 1-cycle vs 2-cycle hop latency,
* centralized vs decentralized L1 cache,
* the cost of communication via the zero-cost idealizations.

Run:  python examples/interconnect_study.py
"""

import dataclasses

from repro import (
    decentralized_config,
    default_config,
    generate_trace,
    get_profile,
    grid_config,
    simulate,
)

TRACE_LENGTH = 30_000
WARMUP = 4_000


def variants():
    ring = default_config(16)
    yield "ring, centralized", ring
    yield "grid, centralized", grid_config(16)
    yield "ring, 2-cycle hops", ring.with_interconnect(
        dataclasses.replace(ring.interconnect, hop_latency=2)
    )
    yield "ring, decentralized", decentralized_config(16)
    yield "ring, free mem comm", ring.with_interconnect(
        dataclasses.replace(ring.interconnect, free_memory_communication=True)
    )
    yield "ring, free reg comm", ring.with_interconnect(
        dataclasses.replace(ring.interconnect, free_register_communication=True)
    )


def main() -> None:
    for bench in ("swim", "vpr"):
        trace = generate_trace(get_profile(bench), TRACE_LENGTH, seed=3)
        print(f"\n=== {bench} (16 clusters) ===")
        baseline = None
        for label, config in variants():
            result = simulate(trace, processor=config, warmup=WARMUP, label=label)
            if baseline is None:
                baseline = result.ipc
            rel = 100 * (result.ipc / baseline - 1)
            print(f"  {label:22s} IPC {result.ipc:.3f}  ({rel:+5.1f}% vs ring)  "
                  f"avg reg-transfer latency "
                  f"{result.stats.avg_register_transfer_latency:.1f} cycles")


if __name__ == "__main__":
    main()
