#!/usr/bin/env python3
"""Define a custom synthetic workload and find its best cluster count.

Shows the workload-authoring API: phases are parameterized by dependence
structure (``cross_iter_dep`` serializes iterations; ``chain_prob`` deepens
expression trees), branch behaviour, and memory patterns.  The example
builds a two-phase "image filter + histogram" program, sweeps static
cluster counts per phase, and then checks that the dynamic controller finds
the same answer without being told.

Run:  python examples/custom_workload.py
"""

from repro import NoExploreConfig, generate_trace, simulate
from repro.experiments.sweep import ControllerSpec
from repro.workloads.blocks import PhaseParams
from repro.workloads.generator import Profile

filter_phase = PhaseParams(
    name="filter",  # independent pixels: abundant distant ILP
    body_size=40,
    frac_fp=0.3,
    frac_load=0.22,
    frac_store=0.12,
    cross_iter_dep=0.0,
    chain_prob=0.25,
    inner_branches=1,
    random_branch_frac=0.01,
    biased_taken_prob=0.99,
    mem_pattern="strided",
    working_set=64 * 1024,
    stride=8,
)

histogram_phase = PhaseParams(
    name="histogram",  # serial accumulator chains over a hash-like table
    body_size=12,
    frac_load=0.3,
    frac_store=0.15,
    cross_iter_dep=0.6,
    chain_prob=0.7,
    inner_branches=2,
    random_branch_frac=0.06,
    biased_taken_prob=0.96,
    mem_pattern="random",
    working_set=48 * 1024,
)

program = Profile(
    name="image-pipeline",
    phases=(filter_phase, histogram_phase),
    schedule="alternate",
    segment_length=6_000,
    description="convolution filter alternating with histogram updates",
)


def main() -> None:
    print("per-phase static sweep:")
    for phase in program.phases:
        steady = Profile(name=phase.name, phases=(phase,), schedule="steady")
        trace = generate_trace(steady, 15_000, seed=1)
        ipcs = {
            n: simulate(trace, reconfig_policy=f"static-{n}", warmup=3_000).ipc
            for n in (2, 4, 8, 16)
        }
        best = max(ipcs, key=ipcs.get)
        pretty = "  ".join(f"{n}:{ipc:.2f}" for n, ipc in ipcs.items())
        print(f"  {phase.name:10s} {pretty}   -> best: {best} clusters")

    trace = generate_trace(program, 36_000, seed=1)
    policy = ControllerSpec.no_explore(NoExploreConfig.scaled(interval_length=500))
    result = simulate(trace, reconfig_policy=policy, warmup=3_000)
    print(f"\ndynamic run on the alternating program:")
    print(f"  IPC {result.ipc:.3f}, {result.avg_active_clusters:.1f} clusters "
          f"active on average, {result.reconfigurations} reconfigurations")
    for n in (4, 16):
        static = simulate(trace, reconfig_policy=f"static-{n}", warmup=3_000)
        print(f"  static {n:2d}: IPC {static.ipc:.3f}")


if __name__ == "__main__":
    main()
