#!/usr/bin/env python3
"""Phase-adaptive execution of a media workload (the paper's djpeg story).

JPEG decoding alternates between highly parallel IDCT blocks (which want
all 16 clusters) and serial upsampling (which wants 4).  This example
contrasts:

* the two static base cases,
* the interval-based scheme with exploration — which misses the short
  phases (Section 4.2's djpeg finding),
* the no-exploration distant-ILP scheme at a short interval,
* the fine-grained branch-boundary scheme — which reacts fastest
  (Section 4.4).

Run:  python examples/phase_adaptive_media.py
"""

from repro import NoExploreConfig, generate_trace, get_profile, simulate
from repro.experiments.sweep import ControllerSpec

TRACE_LENGTH = 40_000
WARMUP = 4_000


def main() -> None:
    profile = get_profile("djpeg")
    trace = generate_trace(profile, TRACE_LENGTH, seed=9)
    print(f"{profile.name}: {profile.description}")
    print(f"phases alternate every ~{profile.segment_length} instructions\n")

    schemes = [
        ("static 4 clusters", "static-4"),
        ("static 16 clusters", "static-16"),
        ("interval + exploration", "explore"),
        ("no-exploration @500",
         ControllerSpec.no_explore(NoExploreConfig.scaled(500))),
        ("fine-grained (branch table)", "finegrain"),
    ]
    rows = []
    for label, policy in schemes:
        result = simulate(trace, reconfig_policy=policy, warmup=WARMUP, label=label)
        rows.append((label, result))
        print(f"{label:30s} IPC {result.ipc:.3f}   "
              f"avg clusters {result.avg_active_clusters:5.1f}   "
              f"reconfigs {result.reconfigurations}")

    best_static = max(rows[0][1].ipc, rows[1][1].ipc)
    print("\nspeedup over the best static base case:")
    for label, result in rows[2:]:
        print(f"  {label:30s} {100 * (result.ipc / best_static - 1):+.1f}%")


if __name__ == "__main__":
    main()
