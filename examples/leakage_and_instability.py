#!/usr/bin/env python3
"""Leakage savings and phase-instability analysis (Sections 4.1 and 8).

Part 1 — leakage: the paper reports that the interval-based scheme disables
8.3 of 16 clusters on average, which saves their leakage power outright
(the supply can be gated).  We run the dynamic scheme on a serial and a
parallel benchmark and report cluster leakage saved and energy per
instruction against an always-16-clusters machine.

Part 2 — instability: the Table 4 methodology.  Record fine-grained
interval statistics for a benchmark once, then re-analyse the recording at
several interval lengths and report the instability factor of each — the
knob the variable-interval mechanism of Figure 4 turns.

Run:  python examples/leakage_and_instability.py
"""

from repro import (
    compare_energy,
    default_config,
    generate_trace,
    get_profile,
    instability_profile,
    record_intervals,
    simulate,
)

TRACE_LENGTH = 25_000


def leakage_study() -> None:
    print("=== leakage savings from dynamic cluster disabling ===")
    for bench in ("vpr", "swim"):
        trace = generate_trace(get_profile(bench), TRACE_LENGTH, seed=5)
        always_on = simulate(trace, reconfig_policy="static-16").stats
        tuned = simulate(trace, reconfig_policy="explore").stats
        report = compare_energy(always_on, tuned, total_clusters=16)
        print(f"  {bench:6s} avg active clusters {tuned.avg_active_clusters:5.1f}  "
              f"cluster leakage saved {report['leakage_savings']:6.1%}  "
              f"energy/instr vs static-16 {report['epi_ratio']:.2f}x  "
              f"IPC {tuned.ipc:.2f} (static-16 {always_on.ipc:.2f})")


def instability_study() -> None:
    print("\n=== instability factor vs interval length (Table 4 method) ===")
    for bench in ("swim", "crafty"):
        trace = generate_trace(get_profile(bench), TRACE_LENGTH, seed=5)
        records = record_intervals(trace, default_config(16), granularity=250)
        profile = instability_profile(records, granularity=250,
                                      factors_of=(1, 2, 4, 8, 16))
        row = "  ".join(
            f"{length}:{100 * f:.0f}%" for length, f in sorted(profile.factors.items())
        )
        minimum = profile.minimum_acceptable_interval(0.05)
        print(f"  {bench:7s} {row}   min acceptable: {minimum or '>4000'}")


if __name__ == "__main__":
    leakage_study()
    instability_study()
