"""Phase-change detection."""

from repro.core.phase import (
    PhaseDetectConfig,
    PhaseReference,
    compare_to_reference,
)
from repro.stats import IntervalWindow


def _window(committed=1000, cycles=500, branches=100, memrefs=250):
    return IntervalWindow(committed=committed, cycles=cycles,
                          branches=branches, memrefs=memrefs)


class TestCountSignals:
    def test_identical_interval_is_stable(self):
        ref = PhaseReference(branches=100, memrefs=250, ipc=2.0)
        s = compare_to_reference(_window(), ref, 1000)
        assert not s.memrefs and not s.branches and not s.ipc
        assert not s.counts_changed

    def test_branch_shift_detected(self):
        ref = PhaseReference(branches=100, memrefs=250)
        s = compare_to_reference(_window(branches=130), ref, 1000)
        assert s.branches and s.counts_changed

    def test_memref_shift_detected(self):
        ref = PhaseReference(branches=100, memrefs=250)
        s = compare_to_reference(_window(memrefs=200), ref, 1000)
        assert s.memrefs

    def test_threshold_scales_with_interval(self):
        """The paper's rule: significant = more than interval/100."""
        ref = PhaseReference(branches=100, memrefs=250)
        s_small = compare_to_reference(_window(branches=108), ref, 1000)
        s_large = compare_to_reference(_window(branches=108), ref, 10_000)
        assert not s_small.branches  # 8 <= 10
        # for a 10K interval the threshold is 100, so still stable
        assert not s_large.branches

    def test_count_divisor_config(self):
        ref = PhaseReference(branches=100, memrefs=250)
        strict = PhaseDetectConfig(count_divisor=1000)
        s = compare_to_reference(_window(branches=103), ref, 1000, strict)
        assert s.branches  # threshold is 1 now


class TestIpcSignal:
    def test_ipc_ignored_without_reference(self):
        ref = PhaseReference(branches=100, memrefs=250, ipc=None)
        s = compare_to_reference(_window(cycles=100), ref, 1000)
        assert not s.ipc

    def test_ipc_change_detected(self):
        ref = PhaseReference(branches=100, memrefs=250, ipc=2.0)
        s = compare_to_reference(_window(cycles=1000), ref, 1000)  # ipc 1.0
        assert s.ipc

    def test_ipc_within_tolerance(self):
        ref = PhaseReference(branches=100, memrefs=250, ipc=2.0)
        s = compare_to_reference(_window(cycles=521), ref, 1000)  # ipc 1.92
        assert not s.ipc

    def test_custom_tolerance(self):
        ref = PhaseReference(branches=100, memrefs=250, ipc=2.0)
        loose = PhaseDetectConfig(ipc_tolerance=0.5)
        s = compare_to_reference(_window(cycles=800), ref, 1000, loose)  # 1.25
        assert not s.ipc
