"""Figure 4 algorithm: exploration, phase detection, interval doubling."""

from repro.core.interval_explore import ExploreConfig, IntervalExploreController

from .fakes import FakeProcessor, feed_interval


def _controller(**kw):
    defaults = dict(initial_interval=100, max_interval=800)
    defaults.update(kw)
    proc = FakeProcessor(16)
    ctrl = IntervalExploreController(ExploreConfig(**defaults))
    ctrl.attach(proc)
    return ctrl, proc


def _feed(ctrl, proc, ipc, n=1, **kw):
    for _ in range(n):
        feed_interval(ctrl, proc, ctrl.interval_length, ipc, **kw)


class TestExploration:
    def test_explores_all_candidates_in_order(self):
        ctrl, proc = _controller()
        _feed(ctrl, proc, ipc=1.0, n=1)  # unstable -> begins exploration at 2
        assert proc.active_clusters == 2
        _feed(ctrl, proc, ipc=1.0)
        assert proc.active_clusters == 4
        _feed(ctrl, proc, ipc=1.2)
        assert proc.active_clusters == 8
        _feed(ctrl, proc, ipc=1.4)
        assert proc.active_clusters == 16

    def test_picks_best_measured_config(self):
        ctrl, proc = _controller()
        _feed(ctrl, proc, ipc=1.0)          # start exploring (2)
        _feed(ctrl, proc, ipc=0.8)          # 2 clusters
        _feed(ctrl, proc, ipc=1.6)          # 4 clusters <- best
        _feed(ctrl, proc, ipc=1.2)          # 8 clusters
        _feed(ctrl, proc, ipc=1.1)          # 16 clusters
        assert proc.active_clusters == 4
        assert ctrl.choice_counts == {4: 1}

    def test_candidates_clamped_to_machine(self):
        proc = FakeProcessor(8)
        ctrl = IntervalExploreController(
            ExploreConfig(initial_interval=100, candidates=(2, 4, 8, 16))
        )
        ctrl.attach(proc)
        assert ctrl._candidates == (2, 4, 8)


class TestPhaseDetection:
    def _settle(self, ctrl, proc, ipc=1.0):
        _feed(ctrl, proc, ipc=ipc, n=5)  # unstable + 4 exploration intervals

    def test_stable_program_keeps_configuration(self):
        ctrl, proc = _controller()
        self._settle(ctrl, proc)
        chosen = proc.active_clusters
        _feed(ctrl, proc, ipc=1.0, n=20)
        assert proc.active_clusters == chosen
        assert ctrl.phase_changes == 0

    def test_branch_shift_triggers_reexploration(self):
        ctrl, proc = _controller()
        self._settle(ctrl, proc)
        _feed(ctrl, proc, ipc=1.0, branch_rate=0.25)  # big branch-count shift
        assert ctrl.phase_changes == 1
        _feed(ctrl, proc, ipc=1.0, branch_rate=0.25)
        assert proc.active_clusters == 2  # exploring again

    def test_single_ipc_blip_tolerated(self):
        """Figure 4's num_ipc_variations filter: isolated IPC noise must not
        trigger a phase change."""
        ctrl, proc = _controller()
        self._settle(ctrl, proc)
        _feed(ctrl, proc, ipc=2.5)  # one wild interval
        _feed(ctrl, proc, ipc=1.0, n=5)
        assert ctrl.phase_changes == 0

    def test_sustained_ipc_shift_triggers_phase_change(self):
        ctrl, proc = _controller(ipc_variation_threshold=3.0)
        self._settle(ctrl, proc)
        for _ in range(6):
            _feed(ctrl, proc, ipc=3.0)
        assert ctrl.phase_changes >= 1


class TestIntervalAdaptation:
    def test_instability_doubles_interval(self):
        ctrl, proc = _controller(instability_threshold=2.0, instability_increment=1.0)
        start = ctrl.interval_length
        # alternate branch rates every interval -> constant phase changes
        rate = 0.1
        for _ in range(12):
            _feed(ctrl, proc, ipc=1.0, branch_rate=rate)
            rate = 0.35 - rate
        assert ctrl.interval_length > start

    def test_discontinue_locks_most_popular(self):
        ctrl, proc = _controller(
            initial_interval=100,
            max_interval=200,
            instability_threshold=1.0,
            instability_increment=2.0,
        )
        rate = 0.1
        for _ in range(40):
            _feed(ctrl, proc, ipc=1.0, branch_rate=rate)
            rate = 0.35 - rate
            if ctrl.discontinued:
                break
        assert ctrl.discontinued
        locked = proc.active_clusters
        _feed(ctrl, proc, ipc=1.0, branch_rate=0.5, n=3)
        assert proc.active_clusters == locked  # no further reconfiguration


class TestScaledConfig:
    def test_scaled_defaults(self):
        cfg = ExploreConfig.scaled()
        assert cfg.initial_interval < 10_000
        assert cfg.max_interval < 1_000_000_000
        assert cfg.detect.ipc_tolerance > 0.10

    def test_paper_defaults(self):
        cfg = ExploreConfig()
        assert cfg.initial_interval == 10_000
        assert cfg.max_interval == 1_000_000_000
        assert cfg.candidates == (2, 4, 8, 16)
        assert cfg.ipc_variation_threshold == 5.0  # THRESH1
        assert cfg.instability_threshold == 5.0  # THRESH2
