"""A minimal processor stand-in for controller unit tests.

Controllers touch: ``processor.stats``, ``processor.config.num_clusters``,
``processor.active_clusters``, and ``processor.set_active_clusters``.  The
fake lets tests feed synthetic interval statistics and observe the
controller's reconfiguration decisions without a full simulation.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.config import default_config
from repro.stats import SimStats
from repro.workloads.instruction import Instr, OpClass


class FakeProcessor:
    def __init__(self, num_clusters: int = 16) -> None:
        self.config = default_config(num_clusters)
        self.stats = SimStats()
        self.active_clusters = num_clusters
        self.history: List[Tuple[int, str]] = []

    def set_active_clusters(self, n: int, reason: str = "") -> None:
        n = max(1, min(n, self.config.num_clusters))
        if n != self.active_clusters:
            self.stats.reconfigurations += 1
        self.active_clusters = n
        self.history.append((n, reason))


def feed_interval(
    controller,
    processor: FakeProcessor,
    committed: int,
    ipc: float,
    branch_rate: float = 0.1,
    memref_rate: float = 0.3,
    distant_rate: float = 0.0,
) -> None:
    """Advance the fake machine by one interval's worth of commits.

    Statistics counters move as if ``committed`` instructions committed at
    the given IPC and event rates; the controller's ``on_commit`` hook is
    invoked per instruction (with non-branch/non-mem fillers), which is all
    the interval controllers observe.
    """
    stats = processor.stats
    stats.cycles += int(committed / max(ipc, 1e-9))
    branches = int(committed * branch_rate)
    memrefs = int(committed * memref_rate)
    distants = int(committed * distant_rate)
    stats.branches += branches
    stats.memrefs += memrefs
    stats.distant_commits += distants
    for i in range(committed):
        stats.committed += 1
        instr = Instr(0, 0x40, OpClass.INT_ALU)
        controller.on_commit(instr, stats.cycles, distant=i < distants)
