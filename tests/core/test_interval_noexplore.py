"""Section 4.3: no-exploration controller driven by the distant-ILP metric."""

import pytest

from repro.core.interval_noexplore import DistantILPController, NoExploreConfig

from .fakes import FakeProcessor, feed_interval


def _controller(**kw):
    defaults = dict(interval_length=1000)
    defaults.update(kw)
    proc = FakeProcessor(16)
    ctrl = DistantILPController(NoExploreConfig(**defaults))
    ctrl.attach(proc)
    return ctrl, proc


class TestDecision:
    def test_measures_at_full_width_first(self):
        ctrl, proc = _controller()
        assert proc.active_clusters == 16

    def test_distant_ilp_selects_large_config(self):
        ctrl, proc = _controller()
        feed_interval(ctrl, proc, 1000, ipc=1.5, distant_rate=0.3)  # 300 > 160
        assert proc.active_clusters == 16
        assert ctrl.choice_counts[16] == 1

    def test_no_distant_ilp_selects_small_config(self):
        ctrl, proc = _controller()
        feed_interval(ctrl, proc, 1000, ipc=1.5, distant_rate=0.05)  # 50 < 160
        assert proc.active_clusters == 4
        assert ctrl.choice_counts[4] == 1

    def test_paper_threshold(self):
        cfg = NoExploreConfig()
        assert cfg.interval_length == 1000
        assert cfg.distant_threshold == pytest.approx(160.0)

    def test_threshold_scales_with_interval(self):
        cfg = NoExploreConfig(interval_length=500)
        assert cfg.distant_threshold == pytest.approx(80.0)


class TestPhaseTracking:
    def test_stays_settled_on_stable_program(self):
        ctrl, proc = _controller()
        feed_interval(ctrl, proc, 1000, ipc=1.5, distant_rate=0.05)
        for _ in range(10):
            feed_interval(ctrl, proc, 1000, ipc=1.5, distant_rate=0.05)
        assert proc.active_clusters == 4
        assert ctrl.phase_changes == 0

    def test_branch_shift_triggers_remeasurement(self):
        ctrl, proc = _controller()
        feed_interval(ctrl, proc, 1000, ipc=1.5, distant_rate=0.05)
        feed_interval(ctrl, proc, 1000, ipc=1.5)  # establishes IPC reference
        feed_interval(ctrl, proc, 1000, ipc=1.5, branch_rate=0.3)
        assert ctrl.phase_changes == 1
        assert proc.active_clusters == 16  # measuring again

    def test_remeasurement_can_flip_decision(self):
        ctrl, proc = _controller()
        feed_interval(ctrl, proc, 1000, ipc=1.5, distant_rate=0.05)
        assert proc.active_clusters == 4
        feed_interval(ctrl, proc, 1000, ipc=1.5)
        feed_interval(ctrl, proc, 1000, ipc=1.5, branch_rate=0.3)  # phase change
        feed_interval(ctrl, proc, 1000, ipc=1.5, branch_rate=0.3, distant_rate=0.4)
        assert proc.active_clusters == 16

    def test_ipc_shift_triggers_remeasurement(self):
        ctrl, proc = _controller()
        feed_interval(ctrl, proc, 1000, ipc=1.5, distant_rate=0.05)
        feed_interval(ctrl, proc, 1000, ipc=1.5)
        feed_interval(ctrl, proc, 1000, ipc=0.6)
        assert ctrl.phase_changes == 1


class TestClamping:
    def test_small_machine(self):
        proc = FakeProcessor(8)
        ctrl = DistantILPController(NoExploreConfig(interval_length=500))
        ctrl.attach(proc)
        feed_interval(ctrl, proc, 500, ipc=1.0, distant_rate=0.5)
        assert proc.active_clusters == 8
