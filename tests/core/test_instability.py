"""Table 4 instability analysis."""

import pytest

from repro.core.instability import (
    InstabilityProfile,
    instability_factor,
    instability_profile,
    record_intervals,
)
from repro.config import default_config
from repro.stats import IntervalRecord, merge_records


def _steady(n=40, committed=1000, cycles=500, branches=100, memrefs=300):
    return [
        IntervalRecord(committed=committed, cycles=cycles,
                       branches=branches, memrefs=memrefs)
        for _ in range(n)
    ]


def _alternating(n=40):
    records = []
    for i in range(n):
        if (i // 4) % 2 == 0:
            records.append(IntervalRecord(1000, 500, 100, 300))
        else:
            records.append(IntervalRecord(1000, 900, 220, 150))
    return records


class TestInstabilityFactor:
    def test_steady_records_are_stable(self):
        assert instability_factor(_steady()) == 0.0

    def test_alternating_records_unstable(self):
        factor = instability_factor(_alternating())
        assert factor > 0.15

    def test_empty_records(self):
        assert instability_factor([]) == 0.0

    def test_single_change_counts_once(self):
        records = _steady(10) + [IntervalRecord(1000, 900, 250, 100)] + _steady(10)
        factor = instability_factor(records)
        # one change in, one change back out
        assert 0 < factor <= 2 / 21


class TestMergeAndProfile:
    def test_merge_records(self):
        merged = merge_records(_steady(8), 4)
        assert len(merged) == 2
        assert merged[0].committed == 4000
        assert merged[0].branches == 400

    def test_merge_validation(self):
        with pytest.raises(ValueError):
            merge_records(_steady(4), 0)

    def test_coarser_intervals_hide_fine_phases(self):
        """The core Table 4 effect: a program whose phases alternate every
        4 intervals looks unstable at fine grain and stable once the
        interval covers full phase pairs."""
        records = _alternating(64)
        profile = instability_profile(records, granularity=1000, factors_of=(1, 8))
        fine = profile.factors[1000]
        coarse = profile.factors[8000]
        assert coarse < fine

    def test_minimum_acceptable_interval(self):
        profile = InstabilityProfile(
            granularity=100,
            factors={100: 0.4, 200: 0.2, 400: 0.04, 800: 0.01},
        )
        assert profile.minimum_acceptable_interval(0.05) == 400

    def test_minimum_acceptable_none_when_all_unstable(self):
        profile = InstabilityProfile(granularity=100, factors={100: 0.5, 200: 0.3})
        assert profile.minimum_acceptable_interval(0.05) is None


class TestRecording:
    def test_record_intervals_from_simulation(self, parallel_trace):
        records = record_intervals(parallel_trace, default_config(8), granularity=500)
        assert len(records) >= len(parallel_trace) // 500 - 1
        assert all(r.committed == 500 for r in records)
        assert all(r.cycles > 0 for r in records)

    def test_recorded_metrics_plausible(self, parallel_trace):
        records = record_intervals(parallel_trace, default_config(8), granularity=500)
        total_branches = sum(r.branches for r in records)
        assert 0 < total_branches <= parallel_trace.branch_count
