"""Distant-ILP window (Section 4.4 measurement hardware)."""

import pytest

from repro.core.distant_ilp import DEFAULT_WINDOW, DistantWindow


class TestWindow:
    def test_default_window_is_360(self):
        assert DEFAULT_WINDOW == 360
        assert DistantWindow().window == 360

    def test_counter_tracks_distant_pushes(self):
        w = DistantWindow(window=10)
        for _ in range(4):
            w.push(-1, True)
        for _ in range(3):
            w.push(-1, False)
        assert w.distant_count == 4

    def test_counter_decrements_on_exit(self):
        w = DistantWindow(window=3)
        w.push(-1, True)
        for _ in range(3):
            w.push(-1, False)
        assert w.distant_count == 0

    def test_branch_sample_counts_following_window(self):
        """A branch's sample must equal the distant count among exactly the
        `window` instructions that committed after it."""
        w = DistantWindow(window=5)
        assert w.push(0x40, False) is None  # the branch enters
        for i in range(4):
            assert w.push(-1, True) is None
        sample = w.push(-1, True)  # branch now exits
        assert sample == (0x40, 5)

    def test_branch_own_distance_excluded(self):
        w = DistantWindow(window=2)
        w.push(0x40, True)  # a distant branch
        w.push(-1, False)
        sample = w.push(-1, False)
        assert sample == (0x40, 0)  # its own flag must not count

    def test_non_branch_exits_produce_no_samples(self):
        w = DistantWindow(window=2)
        for _ in range(10):
            assert w.push(-1, True) is None or False

    def test_consecutive_branches_each_sampled(self):
        w = DistantWindow(window=3)
        w.push(0x10, False)
        w.push(0x20, False)
        w.push(-1, True)
        s1 = w.push(-1, True)
        s2 = w.push(-1, False)
        assert s1 == (0x10, 2)
        assert s2 == (0x20, 2)

    def test_validation(self):
        with pytest.raises(ValueError):
            DistantWindow(0)
