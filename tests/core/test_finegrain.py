"""Fine-grained branch-boundary reconfiguration and the subroutine variant."""

import pytest

from repro.core.finegrain import FineGrainConfig, FineGrainController, ReconfigTable
from repro.core.subroutine import SubroutineController, subroutine_config
from repro.workloads.instruction import Instr, OpClass

from .fakes import FakeProcessor


def _branch(pc, **kw):
    return Instr(0, pc, OpClass.BRANCH, taken=True, target=pc + 8, **kw)


def _alu():
    return Instr(0, 0x10, OpClass.INT_ALU)


class TestReconfigTable:
    def _cfg(self, samples=3, threshold=10):
        return FineGrainConfig(samples_needed=samples, distant_threshold=threshold)

    def test_no_advice_until_m_samples(self):
        t = ReconfigTable(64)
        cfg = self._cfg(samples=3)
        t.add_sample(0x40, 50, cfg)
        t.add_sample(0x40, 50, cfg)
        assert t.lookup(0x40) is None
        t.add_sample(0x40, 50, cfg)
        assert t.lookup(0x40) == cfg.large_config

    def test_low_distant_advises_small(self):
        t = ReconfigTable(64)
        cfg = self._cfg(samples=2, threshold=10)
        t.add_sample(0x40, 1, cfg)
        t.add_sample(0x40, 2, cfg)
        assert t.lookup(0x40) == cfg.small_config

    def test_advice_is_mean_of_samples(self):
        t = ReconfigTable(64)
        cfg = self._cfg(samples=2, threshold=10)
        t.add_sample(0x40, 0, cfg)
        t.add_sample(0x40, 30, cfg)  # mean 15 >= 10
        assert t.lookup(0x40) == cfg.large_config

    def test_samples_stop_after_advice(self):
        """Section 4.4: after M samples the entry is not updated further."""
        t = ReconfigTable(64)
        cfg = self._cfg(samples=1, threshold=10)
        t.add_sample(0x40, 50, cfg)
        assert t.lookup(0x40) == cfg.large_config
        t.add_sample(0x40, 0, cfg)
        assert t.lookup(0x40) == cfg.large_config

    def test_flush_clears(self):
        t = ReconfigTable(64)
        cfg = self._cfg(samples=1)
        t.add_sample(0x40, 50, cfg)
        t.flush()
        assert t.lookup(0x40) is None
        assert len(t) == 0

    def test_capacity_bounded(self):
        t = ReconfigTable(2)
        cfg = self._cfg(samples=1)
        for pc in (0x10, 0x20, 0x30):
            t.add_sample(pc, 50, cfg)
        assert len(t) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            ReconfigTable(0)


class TestFineGrainController:
    def _controller(self, **kw):
        defaults = dict(branch_stride=2, samples_needed=2, window=4,
                        distant_threshold=2, flush_period=10_000)
        defaults.update(kw)
        proc = FakeProcessor(16)
        ctrl = FineGrainController(FineGrainConfig(**defaults))
        ctrl.attach(proc)
        return ctrl, proc

    def test_unknown_branch_uses_large_config(self):
        ctrl, proc = self._controller(branch_stride=1)
        proc.set_active_clusters(4)
        ctrl.on_dispatch(_branch(0x40), 10)
        assert proc.active_clusters == 16

    def test_stride_skips_branches(self):
        ctrl, proc = self._controller(branch_stride=3)
        proc.set_active_clusters(4)
        ctrl.on_dispatch(_branch(0x40), 10)
        ctrl.on_dispatch(_branch(0x44), 11)
        assert proc.active_clusters == 4  # only every 3rd branch acts
        ctrl.on_dispatch(_branch(0x48), 12)
        assert proc.active_clusters == 16

    def test_non_branches_ignored(self):
        ctrl, proc = self._controller(branch_stride=1)
        proc.set_active_clusters(4)
        ctrl.on_dispatch(_alu(), 10)
        assert proc.active_clusters == 4

    def test_learns_advice_from_commit_stream(self):
        ctrl, proc = self._controller(branch_stride=1, samples_needed=1,
                                      window=4, distant_threshold=3)
        # commit a branch followed by 4 distant instructions, twice
        for _ in range(2):
            ctrl.on_commit(_branch(0x80), 1, distant=False)
            for _ in range(4):
                ctrl.on_commit(_alu(), 1, distant=True)
        assert ctrl.table.lookup(0x80) == 16
        ctrl.on_dispatch(_branch(0x80), 5)
        assert proc.active_clusters == 16
        assert ctrl.table_hits == 1

    def test_low_ilp_branch_advises_small(self):
        ctrl, proc = self._controller(branch_stride=1, samples_needed=1,
                                      window=4, distant_threshold=3)
        ctrl.on_commit(_branch(0x80), 1, distant=False)
        for _ in range(5):
            ctrl.on_commit(_alu(), 1, distant=False)
        assert ctrl.table.lookup(0x80) == 4
        ctrl.on_dispatch(_branch(0x80), 5)
        assert proc.active_clusters == 4

    def test_periodic_flush(self):
        ctrl, proc = self._controller(branch_stride=1, samples_needed=1,
                                      window=2, distant_threshold=1,
                                      flush_period=10)
        ctrl.on_commit(_branch(0x80), 1, distant=False)
        for _ in range(3):
            ctrl.on_commit(_alu(), 1, distant=True)
        assert len(ctrl.table) == 1
        for _ in range(10):
            ctrl.on_commit(_alu(), 1, distant=False)
        assert len(ctrl.table) == 0

    def test_paper_defaults(self):
        cfg = FineGrainConfig()
        assert cfg.branch_stride == 5
        assert cfg.samples_needed == 10
        assert cfg.window == 360
        assert cfg.table_entries == 16 * 1024
        assert cfg.flush_period == 10_000_000


class TestSubroutineController:
    def test_config_overrides(self):
        cfg = subroutine_config()
        assert cfg.branch_stride == 1
        assert cfg.samples_needed == 3

    def test_only_calls_and_returns_act(self):
        proc = FakeProcessor(16)
        ctrl = SubroutineController()
        ctrl.attach(proc)
        proc.set_active_clusters(4)
        ctrl.on_dispatch(_branch(0x40), 1)  # plain branch: ignored
        assert proc.active_clusters == 4
        ctrl.on_dispatch(_branch(0x44, is_call=True), 2)
        assert proc.active_clusters == 16

    def test_only_call_return_pcs_sampled(self):
        proc = FakeProcessor(16)
        ctrl = SubroutineController()
        ctrl.attach(proc)
        ctrl.on_commit(_branch(0x40), 1, distant=False)  # plain branch
        ctrl.on_commit(_branch(0x44, is_return=True), 1, distant=False)
        for _ in range(400):
            ctrl.on_commit(_alu(), 1, distant=False)
        # the plain branch never entered the table
        assert ctrl.table.lookup(0x40) is None
