"""Macrophase hierarchy and software-invocation overhead (Section 4.2)."""

import pytest

from repro.core.interval_explore import ExploreConfig, IntervalExploreController

from .fakes import FakeProcessor, feed_interval


def _controller(**kw):
    defaults = dict(initial_interval=100, max_interval=400)
    defaults.update(kw)
    proc = FakeProcessor(16)
    ctrl = IntervalExploreController(ExploreConfig(**defaults))
    ctrl.attach(proc)
    return ctrl, proc


class TestMacrophase:
    def test_disabled_by_default_at_laptop_scale(self):
        cfg = ExploreConfig.scaled()
        # the paper value is far beyond any laptop trace, i.e. inert
        assert cfg.macro_interval >= 10 ** 9

    def test_stable_macro_windows_do_not_reset(self):
        ctrl, proc = _controller(macro_interval=500)
        for _ in range(20):
            feed_interval(ctrl, proc, 100, ipc=1.0)
        assert ctrl.macrophase_changes == 0

    def test_macro_shift_reinitializes(self):
        ctrl, proc = _controller(
            macro_interval=500, instability_threshold=1.0, instability_increment=2.0
        )
        # drive the interval length up via constant phase changes
        rate = 0.1
        for _ in range(10):
            feed_interval(ctrl, proc, ctrl.interval_length, 1.0, branch_rate=rate)
            rate = 0.35 - rate
        grown = ctrl.interval_length
        assert grown > 100
        before = ctrl.macrophase_changes
        # now shift the macro-level branch mix drastically
        for _ in range(10):
            feed_interval(ctrl, proc, 100, ipc=1.0, branch_rate=0.02)
        assert ctrl.macrophase_changes > before
        # the reinitialized interval may re-adapt, but never past where the
        # old macrophase had driven it plus one doubling
        assert ctrl.interval_length <= grown * 2

    def test_macro_reset_clears_discontinued(self):
        ctrl, proc = _controller(
            macro_interval=600,
            max_interval=150,
            instability_threshold=0.5,
            instability_increment=2.0,
        )
        rate = 0.1
        for _ in range(6):
            feed_interval(ctrl, proc, ctrl.interval_length, 1.0, branch_rate=rate)
            rate = 0.35 - rate
            if ctrl.discontinued:
                break
        assert ctrl.discontinued
        # a macro-scale regime change lifts the give-up flag again
        for _ in range(12):
            feed_interval(ctrl, proc, 100, ipc=1.0, branch_rate=0.02)
        assert ctrl.macrophase_changes >= 1
        assert not ctrl.discontinued


class TestInvocationOverhead:
    def test_overhead_stalls_dispatch(self, parallel_trace, config16):
        from repro.experiments.runner import run_trace

        free = IntervalExploreController(
            ExploreConfig.scaled(initial_interval=400)
        )
        costly_cfg = ExploreConfig.scaled(initial_interval=400)
        import dataclasses

        costly = IntervalExploreController(
            dataclasses.replace(costly_cfg, invocation_overhead=60)
        )
        fast = run_trace(parallel_trace, config16, free, warmup=0)
        slow = run_trace(parallel_trace, config16, costly, warmup=0)
        assert slow.cycles >= fast.cycles

    def test_negative_overhead_rejected(self):
        from repro.core.controller import IntervalController

        with pytest.raises(ValueError):
            IntervalController(100, invocation_overhead=-1)
