"""L-rules: the import-direction architecture and the legacy-spelling ban."""


class TestL201Layering:
    def test_upstack_import_flagged(self, findings_of):
        found = findings_of({
            "repro/clusters/steer2.py": """
                from ..experiments.runner import scaled_length
            """,
        }, select=["L201"])
        assert len(found) == 1
        f = found[0]
        assert f.rule == "L201"
        assert f.path == "repro/clusters/steer2.py"
        assert f.line == 2
        assert "repro.experiments" in f.message

    def test_absolute_spelling_flagged_too(self, findings_of):
        found = findings_of({
            "repro/memory/cache2.py": """
                from repro.pipeline.rob import ReorderBuffer
            """,
        }, select=["L201"])
        assert [f.rule for f in found] == ["L201"]

    def test_cross_sibling_import_flagged(self, findings_of):
        found = findings_of({
            "repro/frontend/fetch2.py": """
                from ..clusters.cluster import Cluster
            """,
        }, select=["L201"])
        assert len(found) == 1
        assert "cross-sibling" in found[0].message

    def test_lazy_function_local_import_still_counts(self, findings_of):
        found = findings_of({
            "repro/pipeline/lazy.py": """
                def build():
                    from ..experiments.sweep import SweepRunner
                    return SweepRunner
            """,
        }, select=["L201"])
        assert [f.rule for f in found] == ["L201"]

    def test_downstack_imports_ok(self, findings_of):
        found = findings_of({
            "repro/pipeline/proc2.py": """
                from ..clusters.cluster import Cluster
                from ..memory.lsq import CentralizedLSQ
                from ..config import ProcessorConfig
                from ..stats import SimStats
            """,
            "repro/experiments/run2.py": """
                from ..pipeline.processor import ClusteredProcessor
                from ..core.controller import IntervalController
                from .. import faults
            """,
        }, select=["L201"])
        assert found == []

    def test_package_root_is_exempt(self, findings_of):
        found = findings_of({
            "repro/__init__.py": """
                from .api import simulate
                from .experiments.sweep import SweepRunner
            """,
        }, select=["L201"])
        assert found == []

    def test_stdlib_and_third_party_ignored(self, findings_of):
        found = findings_of({
            "repro/clusters/misc.py": """
                import os
                import numpy
                from collections import deque
            """,
        }, select=["L201"])
        assert found == []

    def test_real_tree_is_clean(self):
        from repro.analysis import analyze_paths
        from .conftest import REPO_ROOT

        result = analyze_paths(
            [REPO_ROOT / "src"], root=REPO_ROOT, select=["L201"]
        )
        assert result.findings == []


class TestL202LegacySpellings:
    def test_engine_simulate_positional_controller_flagged(self, findings_of):
        found = findings_of({
            "repro/experiments/use.py": """
                from ..pipeline.processor import simulate

                def go(trace, config, controller):
                    return simulate(trace, config, controller)
            """,
        }, select=["L202"])
        assert [f.rule for f in found] == ["L202"]

    def test_run_trace_positional_warmup_flagged(self, findings_of):
        found = findings_of({
            "repro/cli.py": """
                from .experiments.runner import run_trace

                def go(trace, config):
                    return run_trace(trace, config, None, 1000)
            """,
        }, select=["L202"])
        assert [f.rule for f in found] == ["L202"]

    def test_facade_simulate_positional_config_flagged(self, findings_of):
        found = findings_of({
            "repro/cli.py": """
                from .api import simulate

                def go(trace, config):
                    return simulate(trace, config)
            """,
        }, select=["L202"])
        assert [f.rule for f in found] == ["L202"]

    def test_keyword_spellings_ok(self, findings_of):
        found = findings_of({
            "repro/cli.py": """
                from .api import simulate
                from .experiments.runner import run_trace
                from .pipeline.processor import simulate as engine_simulate

                def go(trace, config, controller):
                    simulate(trace, processor=config)
                    engine_simulate(trace, config, controller=controller)
                    run_trace(trace, config, controller, warmup=1000)
            """,
        }, select=["L202"])
        assert found == []

    def test_unrelated_simulate_names_ok(self, findings_of):
        # a locally defined simulate() is not the facade's
        found = findings_of({
            "repro/experiments/local.py": """
                def simulate(a, b, c, d):
                    return a

                simulate(1, 2, 3, 4)
            """,
        }, select=["L202"])
        assert found == []

    def test_reintroduced_vararg_shim_flagged(self, findings_of):
        # the entry-point definitions may not grow the *args remap back
        found = findings_of({
            "repro/pipeline/processor.py": """
                def simulate(trace, config, *args, controller=None):
                    return None
            """,
        }, select=["L202"])
        assert [f.rule for f in found] == ["L202"]
        assert "vararg" in found[0].message

    def test_keyword_only_entry_point_def_ok(self, findings_of):
        found = findings_of({
            "repro/pipeline/processor.py": """
                def simulate(trace, config, *, controller=None):
                    return None
            """,
            "repro/experiments/runner.py": """
                def run_trace(trace, config, controller=None, *, warmup=0):
                    return None
            """,
        }, select=["L202"])
        assert found == []

    def test_vararg_elsewhere_ok(self, findings_of):
        # *args on a non-entry-point def (or another module's simulate
        # lookalike) is none of L202's business
        found = findings_of({
            "repro/experiments/local.py": """
                def simulate(trace, *args):
                    return None

                def helper(*args, **kwargs):
                    return None
            """,
        }, select=["L202"])
        assert found == []
