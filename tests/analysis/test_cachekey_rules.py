"""K6xx: cache-key completeness and spec-flow proofs."""


def rules_of(findings, rule):
    return [f for f in findings if f.rule == rule]


SWEEP_TEMPLATE = """
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

CACHE_KEY_EXEMPT: Dict[str, Tuple[str, ...]] = {exempt}


@dataclass(frozen=True)
class RunSpec:
    benchmark: str
    seed: int = 7
    label: str = ""
{extra_fields}
    def cache_key(self) -> str:
        return "|".join([
            f"benchmark={{self.benchmark}}",
            f"seed={{self.seed}}",
{extra_key_lines}        ])
"""


def sweep_module(exempt='{"RunSpec": ("label",)}', extra_fields="",
                 extra_key_lines=""):
    return SWEEP_TEMPLATE.format(
        exempt=exempt,
        extra_fields=extra_fields,
        extra_key_lines=extra_key_lines,
    )


class TestK601Completeness:
    def test_covered_plus_exempt_passes(self, findings_of):
        findings = findings_of(
            {"repro/experiments/sweep.py": sweep_module()}, select=("K601",)
        )
        assert rules_of(findings, "K601") == []

    def test_uncovered_field_flagged(self, findings_of):
        findings = findings_of(
            {
                "repro/experiments/sweep.py": sweep_module(
                    extra_fields="    topology: str = \"ring\"\n"
                )
            },
            select=("K601",),
        )
        (finding,) = rules_of(findings, "K601")
        assert "topology" in finding.message

    def test_stale_exempt_entry_flagged(self, findings_of):
        findings = findings_of(
            {
                "repro/experiments/sweep.py": sweep_module(
                    exempt='{"RunSpec": ("label", "gone")}'
                )
            },
            select=("K601",),
        )
        (finding,) = rules_of(findings, "K601")
        assert "gone" in finding.message
        assert "stale" in finding.message

    def test_contradictory_exempt_entry_flagged(self, findings_of):
        findings = findings_of(
            {
                "repro/experiments/sweep.py": sweep_module(
                    exempt='{"RunSpec": ("label", "seed")}'
                )
            },
            select=("K601",),
        )
        (finding,) = rules_of(findings, "K601")
        assert "contradicts" in finding.message

    def test_key_reachable_non_dataclass_flagged(self, findings_of):
        tree = {
            "repro/experiments/sweep.py": sweep_module(
                extra_fields=(
                    "    faults: Optional[\"Schedule\"] = None\n"
                ),
                extra_key_lines=(
                    "            f\"faults={self.faults!r}\",\n"
                ),
            ).replace(
                "from typing import",
                "from ..resilience import Schedule\nfrom typing import",
            ),
            "repro/resilience/__init__.py": "from .sched import Schedule\n",
            "repro/resilience/sched.py": """
            class Schedule:
                def __init__(self, events):
                    self.events = events
            """,
        }
        findings = findings_of(tree, select=("K601",))
        (finding,) = rules_of(findings, "K601")
        assert "repr" in finding.message

    def test_repr_false_field_is_the_opt_out(self, findings_of):
        tree = {
            "repro/experiments/sweep.py": sweep_module(
                extra_fields="    sub: Optional[\"Sub\"] = None\n",
                extra_key_lines="            f\"sub={self.sub!r}\",\n",
            ).replace(
                "from typing import",
                "from .sub import Sub\nfrom typing import",
            ),
            "repro/experiments/sub.py": """
            from dataclasses import dataclass, field

            @dataclass(frozen=True)
            class Sub:
                kept: int = 0
                # opted out of the repr, so its type never reaches the key
                opaque: object = field(default=None, repr=False)
            """,
        }
        findings = findings_of(tree, select=("K601",))
        assert rules_of(findings, "K601") == []


API_TEMPLATE = """
from dataclasses import dataclass


@dataclass(frozen=True)
class SimSpec:
    workload: str
    seed: int = 7

    def _resolved_seed(self):
        return self.seed

    def to_run_spec(self):
        return {body}
"""


class TestK602SpecFlow:
    def test_direct_and_helper_flow_passes(self, findings_of):
        findings = findings_of(
            {
                "repro/experiments/sweep.py": sweep_module(),
                "repro/api.py": API_TEMPLATE.format(
                    body="(self.workload, self._resolved_seed())"
                ),
            },
            select=("K602",),
        )
        assert rules_of(findings, "K602") == []

    def test_dropped_field_flagged(self, findings_of):
        findings = findings_of(
            {
                "repro/experiments/sweep.py": sweep_module(),
                "repro/api.py": API_TEMPLATE.format(body="(self.workload,)"),
            },
            select=("K602",),
        )
        (finding,) = rules_of(findings, "K602")
        assert "SimSpec.seed" in finding.message

    def test_sweep_config_must_be_accounted_for(self, findings_of):
        source = sweep_module(
            exempt='{"RunSpec": ("label",), "SweepConfig": ("jobs",)}'
        ) + """

@dataclass(frozen=True)
class SweepConfig:
    jobs: int = 1
    seed: int = 7
    mystery: float = 0.5
"""
        findings = findings_of(
            {"repro/experiments/sweep.py": source}, select=("K602",)
        )
        # jobs is exempt, seed shadows a key-covered RunSpec field;
        # mystery is neither
        (finding,) = rules_of(findings, "K602")
        assert "mystery" in finding.message

    def test_stale_sweep_config_exemption_flagged(self, findings_of):
        source = sweep_module(
            exempt='{"RunSpec": ("label",), "SweepConfig": ("ghost",)}'
        ) + """

@dataclass(frozen=True)
class SweepConfig:
    seed: int = 7
"""
        findings = findings_of(
            {"repro/experiments/sweep.py": source}, select=("K602",)
        )
        (finding,) = rules_of(findings, "K602")
        assert "ghost" in finding.message
