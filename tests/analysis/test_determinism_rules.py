"""D-rules: positive and negative fixtures for every determinism rule."""


def rules_hit(findings):
    return sorted({f.rule for f in findings})


class TestD101UnseededRandom:
    def test_module_level_random_flagged(self, findings_of):
        found = findings_of({
            "repro/pipeline/processor.py": """
                import random

                def pick():
                    return random.random() + random.randint(0, 3)
            """,
        }, select=["D101"])
        assert len(found) == 2
        assert all(f.rule == "D101" for f in found)
        assert found[0].line == 5

    def test_from_import_spelling_flagged(self, findings_of):
        found = findings_of({
            "repro/workloads/generator.py": """
                from random import shuffle

                def mix(xs):
                    shuffle(xs)
            """,
        }, select=["D101"])
        assert rules_hit(found) == ["D101"]

    def test_flagged_outside_the_package_too(self, findings_of):
        found = findings_of({
            "examples_dir/demo.py": """
                import random
                print(random.choice([1, 2]))
            """,
        }, select=["D101"])
        assert rules_hit(found) == ["D101"]

    def test_seeded_instance_ok(self, findings_of):
        found = findings_of({
            "repro/workloads/generator.py": """
                import random

                def make(seed):
                    rng = random.Random(seed)
                    return rng.random() + rng.choice([1, 2])
            """,
        }, select=["D101"])
        assert found == []

    def test_numpy_global_flagged_default_rng_ok(self, findings_of):
        found = findings_of({
            "repro/core/phase.py": """
                import numpy

                def draw():
                    good = numpy.random.default_rng(7)
                    return numpy.random.rand() + good.random()
            """,
        }, select=["D101"])
        assert len(found) == 1
        assert "numpy.random.rand" in found[0].message


class TestD102WallClock:
    def test_perf_counter_in_pipeline_flagged(self, findings_of):
        found = findings_of({
            "repro/pipeline/ticker.py": """
                import time

                def stamp():
                    return time.perf_counter()
            """,
        }, select=["D102"])
        assert rules_hit(found) == ["D102"]

    def test_datetime_now_in_core_flagged(self, findings_of):
        found = findings_of({
            "repro/core/controller2.py": """
                from datetime import datetime

                def now():
                    return datetime.now()
            """,
        }, select=["D102"])
        assert rules_hit(found) == ["D102"]

    def test_harness_layers_may_time_themselves(self, findings_of):
        found = findings_of({
            "repro/experiments/sweep2.py": """
                import time

                def measure():
                    return time.perf_counter()
            """,
        }, select=["D102"])
        assert found == []

    def test_time_sleep_is_not_a_clock_read(self, findings_of):
        found = findings_of({
            "repro/pipeline/waiter.py": """
                import time

                def pause():
                    time.sleep(0.1)
            """,
        }, select=["D102"])
        assert found == []


class TestD103SetIteration:
    def test_for_over_set_attribute_flagged(self, findings_of):
        found = findings_of({
            "repro/memory/lsq2.py": """
                from typing import Set

                class LSQ:
                    def __init__(self):
                        self.pending: Set[int] = set()

                    def scan(self):
                        for i in self.pending:
                            print(i)
            """,
        }, select=["D103"])
        assert rules_hit(found) == ["D103"]

    def test_comprehension_over_set_local_flagged(self, findings_of):
        found = findings_of({
            "repro/clusters/pick.py": """
                def pick(xs):
                    seen = set(xs)
                    return [x for x in seen]
            """,
        }, select=["D103"])
        assert rules_hit(found) == ["D103"]

    def test_sorted_iteration_ok(self, findings_of):
        found = findings_of({
            "repro/memory/lsq3.py": """
                class LSQ:
                    def __init__(self):
                        self.pending = set()

                    def scan(self):
                        for i in sorted(self.pending):
                            print(i)
            """,
        }, select=["D103"])
        assert found == []

    def test_outside_simulator_packages_ok(self, findings_of):
        found = findings_of({
            "repro/experiments/agg.py": """
                def agg(xs):
                    for x in set(xs):
                        print(x)
            """,
        }, select=["D103"])
        assert found == []


class TestD104IdOrdering:
    def test_sort_key_id_flagged(self, findings_of):
        found = findings_of({
            "repro/pipeline/order.py": """
                def order(xs):
                    return sorted(xs, key=id)
            """,
        }, select=["D104"])
        assert rules_hit(found) == ["D104"]

    def test_id_comparison_flagged(self, findings_of):
        found = findings_of({
            "repro/clusters/cmp.py": """
                def earlier(a, b):
                    return id(a) < id(b)
            """,
        }, select=["D104"])
        assert rules_hit(found) == ["D104"]

    def test_id_equality_and_other_keys_ok(self, findings_of):
        found = findings_of({
            "repro/clusters/cmp2.py": """
                def same(a, b):
                    return id(a) == id(b)

                def order(xs):
                    return sorted(xs, key=len)
            """,
        }, select=["D104"])
        assert found == []


class TestD105EnvReads:
    def test_environ_get_flagged(self, findings_of):
        found = findings_of({
            "repro/experiments/knobs.py": """
                import os

                def knob():
                    return os.environ.get("REPRO_X", "")
            """,
        }, select=["D105"])
        assert rules_hit(found) == ["D105"]

    def test_getenv_and_subscript_flagged(self, findings_of):
        found = findings_of({
            "repro/pipeline/knobs.py": """
                import os

                def knobs():
                    return os.getenv("A"), os.environ["B"]
            """,
        }, select=["D105"])
        assert len(found) == 2

    def test_config_and_faults_are_sanctioned(self, findings_of):
        source = """
            import os

            def read():
                return os.environ.get("REPRO_X")
        """
        found = findings_of({
            "repro/config.py": source,
            "repro/faults.py": source,
        }, select=["D105"])
        assert found == []

    def test_loose_scripts_outside_package_ok(self, findings_of):
        # benchmarks/examples harness scripts may read their own knobs
        found = findings_of({
            "bench_dir/conftest.py": """
                import os
                SCALE = os.environ.get("REPRO_TRACE_SCALE", "1")
            """,
        }, select=["D105"])
        assert found == []

    def test_environ_write_is_not_a_read(self, findings_of):
        found = findings_of({
            "repro/experiments/setter.py": """
                import os

                def arm(value):
                    os.environ["REPRO_FAULT_PLAN"] = value
            """,
        }, select=["D105"])
        assert found == []
