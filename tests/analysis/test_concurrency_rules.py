"""C4xx: blocking calls, orphaned coroutines, thread affinity."""


def rules_of(findings, rule):
    return [f for f in findings if f.rule == rule]


class TestC401BlockingInAsync:
    def test_direct_sleep_in_async_def(self, findings_of):
        findings = findings_of(
            {
                "repro/pipeline/p.py": """
                import time

                async def serve():
                    time.sleep(1)
                """
            },
            select=("C401",),
        )
        (finding,) = rules_of(findings, "C401")
        assert "time.sleep" in finding.message
        assert "serve" in finding.message

    def test_blocking_call_via_sync_helper_reached_from_async(
        self, findings_of
    ):
        findings = findings_of(
            {
                "repro/pipeline/p.py": """
                import subprocess

                def spawn():
                    subprocess.Popen(["true"])

                async def serve():
                    spawn()
                """
            },
            select=("C401",),
        )
        (finding,) = rules_of(findings, "C401")
        assert "subprocess.Popen" in finding.message

    def test_run_in_executor_is_the_sanctioned_escape(self, findings_of):
        findings = findings_of(
            {
                "repro/pipeline/p.py": """
                import asyncio
                import subprocess

                def spawn():
                    return subprocess.Popen(["true"])

                async def serve():
                    loop = asyncio.get_running_loop()
                    return await loop.run_in_executor(None, spawn)
                """
            },
            select=("C401",),
        )
        # the callable is passed by reference, not called: no edge
        assert rules_of(findings, "C401") == []

    def test_sync_only_module_is_out_of_scope(self, findings_of):
        findings = findings_of(
            {
                "repro/pipeline/p.py": """
                import time

                def wait():
                    time.sleep(1)
                """
            },
            select=("C401",),
        )
        assert rules_of(findings, "C401") == []

    def test_queue_get_on_known_primitive_in_async(self, findings_of):
        findings = findings_of(
            {
                "repro/pipeline/p.py": """
                import queue

                class C:
                    def __init__(self):
                        self._q = queue.Queue()

                    async def serve(self):
                        return self._q.get()
                """
            },
            select=("C401",),
        )
        assert len(rules_of(findings, "C401")) == 1

    def test_dict_get_is_not_a_blocking_call(self, findings_of):
        findings = findings_of(
            {
                "repro/pipeline/p.py": """
                class C:
                    def __init__(self):
                        self._cache = {}

                    async def serve(self):
                        return self._cache.get("x")
                """
            },
            select=("C401",),
        )
        assert rules_of(findings, "C401") == []


class TestC402OrphanedCoroutine:
    def test_discarded_coroutine_call_flagged(self, findings_of):
        findings = findings_of(
            {
                "repro/pipeline/p.py": """
                class C:
                    async def _work(self):
                        pass

                    async def serve(self):
                        self._work()
                """
            },
            select=("C402",),
        )
        (finding,) = rules_of(findings, "C402")
        assert "_work" in finding.message

    def test_awaited_and_scheduled_calls_pass(self, findings_of):
        findings = findings_of(
            {
                "repro/pipeline/p.py": """
                import asyncio

                class C:
                    async def _work(self):
                        pass

                    async def serve(self):
                        await self._work()
                        task = asyncio.ensure_future(self._work())
                        return task
                """
            },
            select=("C402",),
        )
        assert rules_of(findings, "C402") == []

    def test_assigned_but_never_used_coroutine_flagged(self, findings_of):
        findings = findings_of(
            {
                "repro/pipeline/p.py": """
                class C:
                    async def _work(self):
                        pass

                    async def serve(self):
                        pending = self._work()
                """
            },
            select=("C402",),
        )
        assert len(rules_of(findings, "C402")) == 1


class TestC403CrossThreadMutation:
    HYBRID = """
    import asyncio
    import threading

    class Backend:
        def __init__(self):
            self.count = 0
            self._thread = threading.Thread(target=self._run, daemon=True)

        def _run(self):
            asyncio.run(self._serve())

        async def _serve(self):
            self.count += 1

        def close(self):
            {close_body}
    """

    def test_unguarded_write_on_both_sides_flagged(self, findings_of):
        findings = findings_of(
            {
                "repro/experiments/backends/b.py": self.HYBRID.format(
                    close_body="self.count = -1"
                )
            },
            select=("C403",),
        )
        (finding,) = rules_of(findings, "C403")
        assert "count" in finding.message

    def test_caller_side_read_only_passes(self, findings_of):
        findings = findings_of(
            {
                "repro/experiments/backends/b.py": self.HYBRID.format(
                    close_body="return self.count"
                )
            },
            select=("C403",),
        )
        assert rules_of(findings, "C403") == []

    def test_lock_guarded_write_passes(self, findings_of):
        source = """
        import asyncio
        import threading

        class Backend:
            def __init__(self):
                self.count = 0
                self._lock = threading.Lock()
                self._thread = threading.Thread(target=self._run)

            def _run(self):
                asyncio.run(self._serve())

            async def _serve(self):
                with self._lock:
                    self.count += 1

            def close(self):
                with self._lock:
                    self.count = -1
        """
        findings = findings_of(
            {"repro/experiments/backends/b.py": source}, select=("C403",)
        )
        assert rules_of(findings, "C403") == []


class TestC404ThreadCreation:
    def test_thread_outside_backends_flagged(self, findings_of):
        findings = findings_of(
            {
                "repro/pipeline/p.py": """
                import threading

                def go():
                    threading.Thread(target=print).start()
                """
            },
            select=("C404",),
        )
        assert len(rules_of(findings, "C404")) == 1

    def test_backends_package_is_allowlisted(self, findings_of):
        findings = findings_of(
            {
                "repro/experiments/backends/b.py": """
                import threading

                def go():
                    threading.Thread(target=print).start()
                """
            },
            select=("C404",),
        )
        assert rules_of(findings, "C404") == []


class TestC405UnboundedWait:
    def test_get_without_timeout_in_backends_flagged(self, findings_of):
        findings = findings_of(
            {
                "repro/experiments/backends/b.py": """
                import queue

                class Backend:
                    def __init__(self):
                        self._q = queue.Queue()

                    def drain(self):
                        return self._q.get()
                """
            },
            select=("C405",),
        )
        (finding,) = rules_of(findings, "C405")
        assert "timeout" in finding.message

    def test_get_with_timeout_passes(self, findings_of):
        findings = findings_of(
            {
                "repro/experiments/backends/b.py": """
                import queue

                class Backend:
                    def __init__(self):
                        self._q = queue.Queue()

                    def drain(self):
                        return self._q.get(timeout=0.5)
                """
            },
            select=("C405",),
        )
        assert rules_of(findings, "C405") == []

    def test_worker_module_is_sync_by_design(self, findings_of):
        findings = findings_of(
            {
                "repro/experiments/backends/worker.py": """
                import queue

                def drain(q):
                    jobs = queue.Queue()
                    return jobs.get()
                """
            },
            select=("C405",),
        )
        assert rules_of(findings, "C405") == []

    def test_unbounded_put_is_the_sanctioned_handoff(self, findings_of):
        findings = findings_of(
            {
                "repro/experiments/backends/b.py": """
                import queue

                class Backend:
                    def __init__(self):
                        self._q = queue.Queue()

                    def push(self, item):
                        self._q.put(item)
                """
            },
            select=("C405",),
        )
        assert rules_of(findings, "C405") == []
