"""P5xx: pickle-safety of payloads, wire types, and frame dispatch."""


def rules_of(findings, rule):
    return [f for f in findings if f.rule == rule]


class TestP501UnpicklablePayload:
    def test_lambda_in_pickle_dumps(self, findings_of):
        findings = findings_of(
            {
                "repro/pipeline/p.py": """
                import pickle

                def ship():
                    return pickle.dumps({"cb": lambda: 1})
                """
            },
            select=("P501",),
        )
        (finding,) = rules_of(findings, "P501")
        assert "lambda" in finding.message

    def test_nested_function_reference_flagged(self, findings_of):
        findings = findings_of(
            {
                "repro/pipeline/p.py": """
                import pickle

                def ship():
                    def helper():
                        return 1
                    return pickle.dumps(helper)
                """
            },
            select=("P501",),
        )
        (finding,) = rules_of(findings, "P501")
        assert "helper" in finding.message

    def test_module_level_function_pickles_by_reference(self, findings_of):
        findings = findings_of(
            {
                "repro/pipeline/p.py": """
                import pickle

                def helper():
                    return 1

                def ship():
                    return pickle.dumps(helper)
                """
            },
            select=("P501",),
        )
        assert rules_of(findings, "P501") == []

    def test_open_handle_bound_local_flagged(self, findings_of):
        findings = findings_of(
            {
                "repro/pipeline/p.py": """
                import pickle

                def ship(path):
                    fh = open(path)
                    return pickle.dumps(fh)
                """
            },
            select=("P501",),
        )
        (finding,) = rules_of(findings, "P501")
        assert "handle" in finding.message

    def test_submit_in_experiments_layer_is_a_boundary(self, findings_of):
        findings = findings_of(
            {
                "repro/experiments/pool.py": """
                def run(executor):
                    return executor.submit(lambda: 1)
                """
            },
            select=("P501",),
        )
        assert len(rules_of(findings, "P501")) == 1

    def test_submit_outside_experiments_is_not(self, findings_of):
        findings = findings_of(
            {
                "repro/pipeline/p.py": """
                def run(executor):
                    return executor.submit(lambda: 1)
                """
            },
            select=("P501",),
        )
        assert rules_of(findings, "P501") == []


WIRE = """
from typing import Dict, Tuple

FRAME_TYPES: Dict[str, str] = {
    "job": "coordinator->worker",
    "result": "worker->coordinator",
}

WIRE_SPEC_TYPES: Tuple[str, ...] = ("repro.pipeline.spec.Spec",)


def send(sock, frame):
    pass
"""

DISTRIBUTED_OK = """
def dispatch(reply):
    kind = reply.get("type")
    if kind == "result":
        return reply
    raise ValueError(kind)


def submit_job(wire, sock, spec):
    wire.send(sock, {"type": "job", "spec": spec})
"""

WORKER_OK = """
def serve(wire, sock, frame):
    if frame["type"] == "job":
        wire.send(sock, {"type": "result"})
"""


class TestP502WireTypes:
    def tree(self, spec_source):
        return {
            "repro/pipeline/wire.py": WIRE,
            "repro/pipeline/distributed.py": DISTRIBUTED_OK,
            "repro/pipeline/worker.py": WORKER_OK,
            "repro/pipeline/spec.py": spec_source,
        }

    def test_frozen_scalar_dataclass_passes(self, findings_of):
        findings = findings_of(
            self.tree(
                """
                from dataclasses import dataclass
                from typing import Optional, Tuple

                @dataclass(frozen=True)
                class Spec:
                    name: str
                    seeds: Tuple[int, ...]
                    note: Optional[str] = None
                """
            ),
            select=("P502",),
        )
        assert rules_of(findings, "P502") == []

    def test_unfrozen_wire_type_flagged(self, findings_of):
        findings = findings_of(
            self.tree(
                """
                from dataclasses import dataclass

                @dataclass
                class Spec:
                    name: str
                """
            ),
            select=("P502",),
        )
        (finding,) = rules_of(findings, "P502")
        assert "frozen" in finding.message

    def test_object_typed_field_flagged(self, findings_of):
        findings = findings_of(
            self.tree(
                """
                from dataclasses import dataclass
                from typing import Optional

                @dataclass(frozen=True)
                class Spec:
                    name: str
                    extra: Optional[object] = None
                """
            ),
            select=("P502",),
        )
        (finding,) = rules_of(findings, "P502")
        assert "extra" in finding.message

    def test_nested_spec_class_checked_transitively(self, findings_of):
        tree = self.tree(
            """
            from dataclasses import dataclass
            from typing import Optional

            from .inner import Inner

            @dataclass(frozen=True)
            class Spec:
                name: str
                inner: Optional[Inner] = None
            """
        )
        tree["repro/pipeline/inner.py"] = """
        class Inner:
            pass
        """
        findings = findings_of(tree, select=("P502",))
        (finding,) = rules_of(findings, "P502")
        assert "Inner" in finding.message


class TestP503FrameDispatch:
    def tree(self, wire=WIRE, distributed=DISTRIBUTED_OK, worker=WORKER_OK):
        return {
            "repro/pipeline/wire.py": wire,
            "repro/pipeline/distributed.py": distributed,
            "repro/pipeline/worker.py": worker,
            "repro/pipeline/spec.py": """
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class Spec:
                name: str
            """,
        }

    def test_complete_dispatch_passes(self, findings_of):
        findings = findings_of(self.tree(), select=("P503",))
        assert rules_of(findings, "P503") == []

    def test_declared_tag_missing_from_both_sides(self, findings_of):
        wire = WIRE.replace(
            '"job": "coordinator->worker",',
            '"job": "coordinator->worker",\n    "ping": "either",',
        )
        findings = findings_of(self.tree(wire=wire), select=("P503",))
        found = rules_of(findings, "P503")
        assert len(found) == 2  # absent from coordinator AND worker
        assert all("ping" in f.message for f in found)

    def test_undeclared_produced_tag_flagged(self, findings_of):
        worker = WORKER_OK.replace(
            '{"type": "result"}', '{"type": "surprise"}'
        )
        findings = findings_of(self.tree(worker=worker), select=("P503",))
        assert any(
            "surprise" in f.message for f in rules_of(findings, "P503")
        )

    def test_missing_worker_module_is_a_finding(self, findings_of):
        tree = self.tree()
        del tree["repro/pipeline/worker.py"]
        findings = findings_of(tree, select=("P503",))
        assert rules_of(findings, "P503")
