"""Per-line suppressions and the committed-baseline mechanism."""

import json

from repro.analysis.baseline import (
    load_baseline,
    split_by_baseline,
    stale_entries,
    write_baseline,
)
from repro.analysis.context import parse_suppressions
from repro.analysis.findings import Finding

VIOLATING = """
import random

def pick():
    return random.random(){comment}
"""


class TestSuppressionComments:
    def test_matching_rule_id_suppresses(self, run_analysis):
        result = run_analysis({
            "repro/pipeline/p.py": VIOLATING.format(
                comment="  # repro: allow[D101]"
            ),
        }, select=["D101"])
        assert result.findings == []
        assert [f.rule for f in result.suppressed] == ["D101"]

    def test_non_matching_rule_id_does_not_suppress(self, run_analysis):
        result = run_analysis({
            "repro/pipeline/p.py": VIOLATING.format(
                comment="  # repro: allow[D105]"
            ),
        }, select=["D101"])
        assert [f.rule for f in result.findings] == ["D101"]
        assert result.suppressed == []

    def test_bare_allow_suppresses_everything(self, run_analysis):
        result = run_analysis({
            "repro/pipeline/p.py": VIOLATING.format(comment="  # repro: allow"),
        }, select=["D101"])
        assert result.findings == []

    def test_comment_on_other_line_does_not_leak(self, run_analysis):
        result = run_analysis({
            "repro/pipeline/p.py": (
                "# repro: allow[D101]\n" + VIOLATING.format(comment="")
            ),
        }, select=["D101"])
        assert [f.rule for f in result.findings] == ["D101"]

    def test_multiple_ids_and_reason_trailer(self):
        table = parse_suppressions(
            "x = 1  # repro: allow[D101, S302] -- hot path, order-free\n"
            "y = 2  # repro: allow\n"
            "z = 3  # unrelated comment\n"
        )
        assert table == {1: {"D101", "S302"}, 2: {"*"}}


def _finding(rule="D101", path="repro/a.py", line=3, message="boom"):
    return Finding(path=path, line=line, col=0, rule=rule, message=message)


class TestBaseline:
    def test_round_trip(self, tmp_path):
        findings = [
            _finding(),
            _finding(rule="S301", path="repro/stats.py", message="dropped"),
            _finding(),  # duplicate key -> count 2
        ]
        path = tmp_path / "baseline.json"
        write_baseline(path, findings)
        loaded = load_baseline(path)
        new, old = split_by_baseline(findings, loaded)
        assert new == []
        assert len(old) == 3
        assert stale_entries(findings, loaded) == {}

    def test_line_shifts_do_not_resurface(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(path, [_finding(line=3)])
        new, old = split_by_baseline([_finding(line=30)], load_baseline(path))
        assert new == []
        assert len(old) == 1

    def test_new_findings_surface_beyond_baselined_count(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(path, [_finding()])
        new, old = split_by_baseline(
            [_finding(line=3), _finding(line=9)], load_baseline(path)
        )
        assert len(old) == 1
        assert len(new) == 1

    def test_stale_entries_reported_when_debt_paid(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(path, [_finding(), _finding(rule="D104")])
        stale = stale_entries([_finding()], load_baseline(path))
        assert list(stale) == [("D104", "repro/a.py", "boom")]

    def test_missing_file_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "nope.json") == {}

    def test_format_is_stable_json(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(path, [_finding()])
        payload = json.loads(path.read_text())
        assert payload["version"] == 1
        assert payload["entries"] == [
            {"rule": "D101", "path": "repro/a.py", "message": "boom",
             "count": 1}
        ]
