"""S-rules: merge conservation and facade-vocabulary validation."""

import dataclasses

from repro.stats import SimStats

from .conftest import REPO_ROOT

REAL_STATS = (REPO_ROOT / "src/repro/stats.py").read_text()


class TestS301MergeCoverage:
    def test_synthetic_missing_field_flagged(self, findings_of):
        found = findings_of({
            "repro/stats.py": """
                class SimStats:
                    cycles: int = 0
                    committed: int = 0
                    dropped: int = 0

                    def merge(self, other):
                        self.cycles += other.cycles
                        self.committed += other.committed
                        return self
            """,
        }, select=["S301"])
        assert len(found) == 1
        f = found[0]
        assert f.rule == "S301"
        assert "dropped" in f.message
        assert f.line == 5  # anchored at the field declaration

    def test_field_deleted_from_real_merge_is_caught(self, findings_of):
        """Deleting one `self.x += other.x` line from the real SimStats.merge
        must produce exactly one S301 finding naming that field."""
        broken = REAL_STATS.replace(
            "        self.distant_commits += other.distant_commits\n", ""
        )
        assert broken != REAL_STATS  # the merge line we remove must exist
        found = findings_of({"repro/stats.py": broken}, select=["S301"])
        assert [f.rule for f in found] == ["S301"]
        assert found[0].detail["field"] == "distant_commits"

    def test_new_field_unhandled_by_real_merge_is_caught(self, findings_of):
        grown = REAL_STATS.replace(
            "    distant_commits: int = 0",
            "    distant_commits: int = 0\n    brand_new_counter: int = 0",
            1,
        )
        assert grown != REAL_STATS
        found = findings_of({"repro/stats.py": grown}, select=["S301"])
        assert [f.detail["field"] for f in found] == ["brand_new_counter"]

    def test_real_stats_module_is_clean(self, findings_of):
        found = findings_of({"repro/stats.py": REAL_STATS}, select=["S301"])
        assert found == []

    def test_reflective_merge_is_exempt(self, findings_of):
        # a dataclasses.fields()+setattr merge handles every field by
        # construction, so the rule has nothing to prove
        found = findings_of({
            "repro/stats.py": """
                import dataclasses

                class SimStats:
                    cycles: int = 0
                    anything: int = 0

                    def merge(self, other):
                        for f in dataclasses.fields(self):
                            setattr(self, f.name,
                                    getattr(self, f.name) + getattr(other, f.name))
                        return self
            """,
        }, select=["S301"])
        assert found == []

    def test_missing_merge_method_flagged(self, findings_of):
        found = findings_of({
            "repro/stats.py": """
                class SimStats:
                    cycles: int = 0
            """,
        }, select=["S301"])
        assert len(found) == 1
        assert "no merge method" in found[0].message

    def test_runtime_merge_matches_field_enumeration(self):
        """The explicit merge really sums every dataclass field (the runtime
        cross-check promised in the merge docstring)."""
        a = SimStats()
        b = SimStats()
        for offset, f in enumerate(dataclasses.fields(SimStats)):
            setattr(a, f.name, 1000 + offset)
            setattr(b, f.name, 1 + offset)
        a.merge(b)
        for offset, f in enumerate(dataclasses.fields(SimStats)):
            assert getattr(a, f.name) == 1001 + 2 * offset, f.name


class TestS302UnknownKeywords:
    def test_typoed_simulate_keyword_flagged(self, findings_of):
        found = findings_of({
            "repro/experiments/exp.py": """
                from ..api import simulate

                simulate("gzip", trace_legnth=10_000)
            """,
        }, select=["S302"])
        assert len(found) == 1
        assert found[0].detail["keyword"] == "trace_legnth"

    def test_typoed_simspec_keyword_flagged(self, findings_of):
        found = findings_of({
            "bench_dir/bench.py": """
                from repro.api import SimSpec

                SPEC = SimSpec(workload="gzip", topolgy="grid")
            """,
        }, select=["S302"])
        assert [f.detail["keyword"] for f in found] == ["topolgy"]

    def test_typoed_sweep_keyword_flagged(self, findings_of):
        found = findings_of({
            "bench_dir/bench.py": """
                from repro import sweep

                sweep([], job=4)
            """,
        }, select=["S302"])
        assert [f.detail["keyword"] for f in found] == ["job"]

    def test_valid_vocabulary_ok(self, findings_of):
        found = findings_of({
            "bench_dir/bench.py": """
                from repro.api import SimSpec, simulate, sweep

                simulate("gzip", trace_length=10_000, reconfig_policy="explore",
                         topology="grid", warmup=100, label="x")
                sweep([SimSpec(workload="swim", seed=3)], jobs=2, cache=False,
                      retries=2, timeout=60.0)
            """,
        }, select=["S302"])
        assert found == []

    def test_double_star_kwargs_not_judged(self, findings_of):
        found = findings_of({
            "bench_dir/bench.py": """
                from repro.api import simulate

                def go(**kw):
                    simulate("gzip", **kw)
            """,
        }, select=["S302"])
        assert found == []


class TestS303VocabularyLiterals:
    def test_bad_topology_flagged(self, findings_of):
        found = findings_of({
            "examples_dir/demo.py": """
                from repro.api import simulate

                simulate("gzip", topology="hexgrid")
            """,
        }, select=["S303"])
        assert len(found) == 1
        assert "hexgrid" in found[0].message

    def test_bad_policy_flagged_static_n_ok(self, findings_of):
        found = findings_of({
            "examples_dir/demo.py": """
                from repro.api import SimSpec

                SimSpec(workload="gzip", reconfig_policy="static-4")
                SimSpec(workload="gzip", reconfig_policy="adaptive")
            """,
        }, select=["S303"])
        assert len(found) == 1
        assert "adaptive" in found[0].message

    def test_bad_workload_name_flagged(self, findings_of):
        found = findings_of({
            "examples_dir/demo.py": """
                from repro.api import simulate

                simulate("gzpi", trace_length=1000)
            """,
        }, select=["S303"])
        assert len(found) == 1
        assert "gzpi" in found[0].message

    def test_all_real_profile_names_ok(self, findings_of):
        from repro.workloads.profiles import BENCHMARK_NAMES

        calls = "\n".join(
            f'simulate("{name}", topology="ring", reconfig_policy="none")'
            for name in BENCHMARK_NAMES
        )
        found = findings_of({
            "examples_dir/demo.py": (
                "from repro.api import simulate\n" + calls
            ),
        }, select=["S303"])
        assert found == []

    def test_non_literal_values_not_judged(self, findings_of):
        found = findings_of({
            "examples_dir/demo.py": """
                from repro.api import simulate

                def go(top, name):
                    simulate(name, topology=top)
            """,
        }, select=["S303"])
        assert found == []

    def test_vocabulary_extracted_from_scanned_api(self, findings_of):
        """When the scanned tree carries its own repro/api.py, its (smaller)
        vocabulary wins over the installed one."""
        found = findings_of({
            "repro/api.py": """
                _TOPOLOGIES = {"ring": None}
                _POLICIES = ("none",)

                class SimSpec:
                    workload: str
                    topology: str = "ring"
            """,
            "examples_dir/demo.py": """
                from repro.api import SimSpec

                SimSpec(workload="gzip", topology="grid")
            """,
        }, select=["S303"])
        assert len(found) == 1
        assert "grid" in found[0].message


EVENTS_MODULE = """
    EVENT_FIELDS = {
        "cycle_sample": ("ipc", "clusters"),
        "fault_inject": ("fault", "target"),
    }

    def validate_event(event):
        return event
"""


class TestS304EventSchemaCoverage:
    """S304 walks up from the scanned events.py to the sibling tests/ tree,
    so the synthetic fixtures place both under the same tmp_path root."""

    def test_uncovered_kind_flagged_by_name(self, findings_of):
        found = findings_of({
            "repro/observability/events.py": EVENTS_MODULE,
            "tests/test_schema.py": """
                from repro.observability.events import validate_event

                def test_cycle_sample():
                    validate_event({"kind": "cycle_sample"})
            """,
        }, select=["S304"])
        assert [f.rule for f in found] == ["S304"]
        assert found[0].detail["kind"] == "fault_inject"
        assert "fault_inject" in found[0].message
        # anchored at the kind's key inside the EVENT_FIELDS literal
        assert found[0].path == "repro/observability/events.py"

    def test_literal_coverage_of_every_kind_is_clean(self, findings_of):
        found = findings_of({
            "repro/observability/events.py": EVENTS_MODULE,
            "tests/test_schema.py": """
                from repro.observability.events import validate_event

                def test_kinds():
                    for kind in ("cycle_sample", "fault_inject"):
                        validate_event({"kind": kind})
            """,
        }, select=["S304"])
        assert found == []

    def test_exhaustive_parametrized_test_is_generic_coverage(
            self, findings_of):
        # a test that iterates EVENT_FIELDS covers new kinds by
        # construction — no literal mention needed
        found = findings_of({
            "repro/observability/events.py": EVENTS_MODULE,
            "tests/test_schema.py": """
                from repro.observability.events import (
                    EVENT_FIELDS, validate_event,
                )

                def test_every_kind():
                    for kind in EVENT_FIELDS:
                        validate_event({"kind": kind})
            """,
        }, select=["S304"])
        assert found == []

    def test_no_validate_event_tests_at_all(self, findings_of):
        found = findings_of({
            "repro/observability/events.py": EVENTS_MODULE,
            "tests/test_unrelated.py": """
                def test_nothing():
                    assert True
            """,
        }, select=["S304"])
        assert len(found) == 1
        assert "untested" in found[0].message
        assert "2 declared event kinds" in found[0].message

    def test_real_events_module_parses_into_the_rule(self, findings_of):
        """The shipping events.py, copied into a tree with no tests/ at
        all, trips the missing-tests arm — proving the rule extracts the
        real EVENT_FIELDS table.  (Real-repo coverage itself is proven by
        the shipping-tree-clean test in test_cli.py, which resolves the
        actual tests/ directory.)"""
        real = (REPO_ROOT / "src/repro/observability/events.py").read_text()
        found = findings_of(
            {"repro/observability/events.py": real}, select=["S304"])
        assert len(found) == 1
        assert "untested" in found[0].message
        assert "declared event kinds" in found[0].message
