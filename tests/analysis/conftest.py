"""Fixtures for the static-analysis test suite.

Rules are exercised against *synthetic* package trees written into
``tmp_path``: ``make_tree`` turns ``{"repro/clusters/foo.py": source}``
into a real on-disk package (``__init__.py`` files auto-created) and
``run_analysis`` lints it, so every rule is tested end to end through the
same file-collection/suppression machinery the CLI uses.
"""

import pathlib
import textwrap

import pytest

from repro.analysis import analyze_paths

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]


@pytest.fixture
def make_tree(tmp_path):
    """Write ``{relative_path: source}`` under tmp_path as a package tree."""

    def _make(files):
        for rel, source in files.items():
            path = tmp_path / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            # every ancestor dir below tmp_path becomes a package
            for parent in path.parents:
                if parent == tmp_path:
                    break
                init = parent / "__init__.py"
                if not init.exists():
                    init.write_text("")
            path.write_text(textwrap.dedent(source))
        return tmp_path

    return _make


@pytest.fixture
def run_analysis(make_tree, tmp_path):
    """Lint a synthetic tree; returns the AnalysisResult."""

    def _run(files, select=(), ignore=()):
        make_tree(files)
        return analyze_paths([tmp_path], root=tmp_path, select=select,
                             ignore=ignore)

    return _run


@pytest.fixture
def findings_of(run_analysis):
    """Lint and return just the (rule, path) pairs plus full findings."""

    def _run(files, select=(), ignore=()):
        return run_analysis(files, select=select, ignore=ignore).findings

    return _run
