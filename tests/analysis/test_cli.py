"""The ``python -m repro.analysis`` front end: formats, exit codes, baseline."""

import json
import subprocess
import sys

import pytest

from repro.analysis.cli import main

from .conftest import REPO_ROOT

DIRTY = """
import random

def pick():
    return random.random()
"""

CLEAN = """
import random

def pick(seed):
    return random.Random(seed).random()
"""


@pytest.fixture
def dirty_tree(make_tree):
    return make_tree({"repro/pipeline/p.py": DIRTY})


@pytest.fixture
def clean_tree(make_tree):
    return make_tree({"repro/pipeline/p.py": CLEAN})


def run_cli(capsys, *argv):
    code = main([str(a) for a in argv])
    captured = capsys.readouterr()
    return code, captured.out


class TestExitCodesAndFormats:
    def test_clean_tree_exits_zero(self, clean_tree, capsys):
        code, out = run_cli(capsys, clean_tree, "--root", clean_tree,
                            "--no-baseline")
        assert code == 0
        assert "0 finding(s)" in out

    def test_findings_exit_one_with_location(self, dirty_tree, capsys):
        code, out = run_cli(capsys, dirty_tree, "--root", dirty_tree,
                            "--no-baseline", "--select", "D101")
        assert code == 1
        assert "repro/pipeline/p.py:5:11: D101" in out

    def test_json_format(self, dirty_tree, capsys):
        code, out = run_cli(capsys, dirty_tree, "--root", dirty_tree,
                            "--no-baseline", "--format", "json")
        assert code == 1
        payload = json.loads(out)
        assert payload["ok"] is False
        assert payload["counts"] == {"D101": 1}
        finding = payload["findings"][0]
        assert finding["rule"] == "D101"
        assert finding["path"] == "repro/pipeline/p.py"
        assert finding["line"] == 5

    def test_missing_path_is_usage_error(self, tmp_path):
        with pytest.raises(SystemExit) as exc:
            main([str(tmp_path / "does-not-exist")])
        assert exc.value.code == 2

    def test_list_rules(self, capsys):
        code, out = run_cli(capsys, "--list-rules")
        assert code == 0
        for rule_id in ("D101", "D102", "D103", "D104", "D105",
                        "L201", "L202", "S301", "S302", "S303", "S304"):
            assert rule_id in out


class TestBaselineWorkflow:
    def test_write_then_rerun_exits_zero(self, dirty_tree, capsys,
                                         monkeypatch):
        monkeypatch.chdir(dirty_tree)
        code, _ = run_cli(capsys, dirty_tree, "--root", dirty_tree,
                          "--write-baseline")
        assert code == 0
        assert (dirty_tree / "analysis-baseline.json").exists()

        # baselined debt no longer fails the build...
        code, out = run_cli(capsys, dirty_tree, "--root", dirty_tree)
        assert code == 0
        assert "1 baselined" in out

        # ...but a NEW violation still does
        extra = dirty_tree / "repro" / "pipeline" / "q.py"
        extra.write_text(DIRTY)
        code, out = run_cli(capsys, dirty_tree, "--root", dirty_tree)
        assert code == 1
        assert "repro/pipeline/q.py" in out

    def test_stale_entries_noted_once_debt_paid(self, dirty_tree, capsys,
                                                monkeypatch):
        monkeypatch.chdir(dirty_tree)
        run_cli(capsys, dirty_tree, "--root", dirty_tree, "--write-baseline")
        (dirty_tree / "repro" / "pipeline" / "p.py").write_text(CLEAN)
        code, out = run_cli(capsys, dirty_tree, "--root", dirty_tree)
        assert code == 0
        assert "stale baseline entry" in out

    def test_corrupt_baseline_is_an_error(self, dirty_tree, capsys,
                                          monkeypatch):
        monkeypatch.chdir(dirty_tree)
        (dirty_tree / "analysis-baseline.json").write_text("{not json")
        code, _ = run_cli(capsys, dirty_tree, "--root", dirty_tree)
        assert code == 2


class TestSuppressionDisplay:
    def test_show_suppressed_lists_them(self, make_tree, capsys):
        tree = make_tree({
            "repro/pipeline/p.py": DIRTY.replace(
                "random.random()", "random.random()  # repro: allow[D101]"
            ),
        })
        code, out = run_cli(capsys, tree, "--root", tree, "--no-baseline",
                            "--show-suppressed")
        assert code == 0
        assert "1 suppressed" in out
        assert "D101" in out


class TestSarifFormat:
    def test_findings_render_as_sarif(self, dirty_tree, capsys):
        code, out = run_cli(capsys, dirty_tree, "--root", dirty_tree,
                            "--no-baseline", "--format", "sarif")
        assert code == 1
        payload = json.loads(out)
        assert payload["version"] == "2.1.0"
        run_ = payload["runs"][0]
        assert run_["tool"]["driver"]["name"] == "repro.analysis"
        rule_ids = {r["id"] for r in run_["tool"]["driver"]["rules"]}
        assert {"D101", "C401", "P502", "K601"} <= rule_ids
        (result,) = run_["results"]
        assert result["ruleId"] == "D101"
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] == 5
        assert region["startColumn"] == 12  # 0-based col 11, SARIF 1-based

    def test_clean_tree_emits_empty_results(self, clean_tree, capsys):
        code, out = run_cli(capsys, clean_tree, "--root", clean_tree,
                            "--no-baseline", "--format", "sarif")
        assert code == 0
        assert json.loads(out)["runs"][0]["results"] == []


def _git(cwd, *argv):
    subprocess.run(
        ["git", "-c", "user.email=t@t", "-c", "user.name=t", *argv],
        cwd=cwd, check=True, capture_output=True,
    )


class TestChangedMode:
    @pytest.fixture
    def git_tree(self, make_tree, monkeypatch):
        tree = make_tree({"repro/pipeline/p.py": CLEAN})
        _git(tree, "init", "-q", "-b", "main")
        _git(tree, "add", "-A")
        _git(tree, "commit", "-q", "-m", "seed")
        monkeypatch.chdir(tree)
        return tree

    def test_only_changed_files_are_reported(self, git_tree, capsys):
        # a pre-existing (committed) violation in an UNCHANGED file must
        # not fail the fast loop; one in a changed file must
        (git_tree / "repro" / "pipeline" / "q.py").write_text(DIRTY)
        code, out = run_cli(capsys, git_tree, "--root", git_tree,
                            "--no-baseline", "--changed", "--base", "main")
        assert code == 1
        assert "repro/pipeline/q.py" in out
        assert "1 file(s) scanned" in out

    def test_clean_checkout_scans_nothing(self, git_tree, capsys):
        code, out = run_cli(capsys, git_tree, "--root", git_tree,
                            "--no-baseline", "--changed", "--base", "main")
        assert code == 0
        assert "0 file(s) scanned" in out

    def test_committed_changes_vs_base_are_included(self, git_tree, capsys):
        _git(git_tree, "checkout", "-q", "-b", "feature")
        (git_tree / "repro" / "pipeline" / "q.py").write_text(DIRTY)
        _git(git_tree, "add", "-A")
        _git(git_tree, "commit", "-q", "-m", "add q")
        code, out = run_cli(capsys, git_tree, "--root", git_tree,
                            "--no-baseline", "--changed", "--base", "main")
        assert code == 1
        assert "repro/pipeline/q.py" in out

    def test_outside_git_is_a_usage_error(self, make_tree, monkeypatch,
                                          capsys, tmp_path):
        tree = make_tree({"repro/pipeline/p.py": CLEAN})
        monkeypatch.chdir(tree)
        monkeypatch.setenv("GIT_CEILING_DIRECTORIES", str(tmp_path))
        monkeypatch.setenv("GIT_DIR", str(tmp_path / "nowhere"))
        code = main([str(tree), "--root", str(tree), "--no-baseline",
                     "--changed", "--base", "main"])
        assert code == 2

    def test_base_without_changed_is_a_usage_error(self, git_tree):
        with pytest.raises(SystemExit) as exc:
            main([str(git_tree), "--base", "main"])
        assert exc.value.code == 2


class TestRealTree:
    def test_shipping_tree_is_clean(self, capsys):
        paths = [REPO_ROOT / p for p in ("src", "benchmarks", "examples")
                 if (REPO_ROOT / p).exists()]
        code, out = run_cli(capsys, *paths, "--root", REPO_ROOT,
                            "--no-baseline")
        assert code == 0, out

    def test_module_entry_point(self, tmp_path):
        """``python -m repro.analysis`` works as a subprocess (the CI spelling)."""
        pkg = tmp_path / "repro" / "pipeline"
        pkg.mkdir(parents=True)
        for d in (tmp_path / "repro", pkg):
            (d / "__init__.py").write_text("")
        (pkg / "p.py").write_text(DIRTY)
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis", str(tmp_path),
             "--root", str(tmp_path), "--no-baseline", "--format", "json"],
            capture_output=True, text=True,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 1, proc.stderr
        payload = json.loads(proc.stdout)
        assert payload["counts"] == {"D101": 1}
