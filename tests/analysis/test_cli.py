"""The ``python -m repro.analysis`` front end: formats, exit codes, baseline."""

import json
import subprocess
import sys

import pytest

from repro.analysis.cli import main

from .conftest import REPO_ROOT

DIRTY = """
import random

def pick():
    return random.random()
"""

CLEAN = """
import random

def pick(seed):
    return random.Random(seed).random()
"""


@pytest.fixture
def dirty_tree(make_tree):
    return make_tree({"repro/pipeline/p.py": DIRTY})


@pytest.fixture
def clean_tree(make_tree):
    return make_tree({"repro/pipeline/p.py": CLEAN})


def run_cli(capsys, *argv):
    code = main([str(a) for a in argv])
    captured = capsys.readouterr()
    return code, captured.out


class TestExitCodesAndFormats:
    def test_clean_tree_exits_zero(self, clean_tree, capsys):
        code, out = run_cli(capsys, clean_tree, "--root", clean_tree,
                            "--no-baseline")
        assert code == 0
        assert "0 finding(s)" in out

    def test_findings_exit_one_with_location(self, dirty_tree, capsys):
        code, out = run_cli(capsys, dirty_tree, "--root", dirty_tree,
                            "--no-baseline", "--select", "D101")
        assert code == 1
        assert "repro/pipeline/p.py:5:11: D101" in out

    def test_json_format(self, dirty_tree, capsys):
        code, out = run_cli(capsys, dirty_tree, "--root", dirty_tree,
                            "--no-baseline", "--format", "json")
        assert code == 1
        payload = json.loads(out)
        assert payload["ok"] is False
        assert payload["counts"] == {"D101": 1}
        finding = payload["findings"][0]
        assert finding["rule"] == "D101"
        assert finding["path"] == "repro/pipeline/p.py"
        assert finding["line"] == 5

    def test_missing_path_is_usage_error(self, tmp_path):
        with pytest.raises(SystemExit) as exc:
            main([str(tmp_path / "does-not-exist")])
        assert exc.value.code == 2

    def test_list_rules(self, capsys):
        code, out = run_cli(capsys, "--list-rules")
        assert code == 0
        for rule_id in ("D101", "D102", "D103", "D104", "D105",
                        "L201", "L202", "S301", "S302", "S303", "S304"):
            assert rule_id in out


class TestBaselineWorkflow:
    def test_write_then_rerun_exits_zero(self, dirty_tree, capsys,
                                         monkeypatch):
        monkeypatch.chdir(dirty_tree)
        code, _ = run_cli(capsys, dirty_tree, "--root", dirty_tree,
                          "--write-baseline")
        assert code == 0
        assert (dirty_tree / "analysis-baseline.json").exists()

        # baselined debt no longer fails the build...
        code, out = run_cli(capsys, dirty_tree, "--root", dirty_tree)
        assert code == 0
        assert "1 baselined" in out

        # ...but a NEW violation still does
        extra = dirty_tree / "repro" / "pipeline" / "q.py"
        extra.write_text(DIRTY)
        code, out = run_cli(capsys, dirty_tree, "--root", dirty_tree)
        assert code == 1
        assert "repro/pipeline/q.py" in out

    def test_stale_entries_noted_once_debt_paid(self, dirty_tree, capsys,
                                                monkeypatch):
        monkeypatch.chdir(dirty_tree)
        run_cli(capsys, dirty_tree, "--root", dirty_tree, "--write-baseline")
        (dirty_tree / "repro" / "pipeline" / "p.py").write_text(CLEAN)
        code, out = run_cli(capsys, dirty_tree, "--root", dirty_tree)
        assert code == 0
        assert "stale baseline entry" in out

    def test_corrupt_baseline_is_an_error(self, dirty_tree, capsys,
                                          monkeypatch):
        monkeypatch.chdir(dirty_tree)
        (dirty_tree / "analysis-baseline.json").write_text("{not json")
        code, _ = run_cli(capsys, dirty_tree, "--root", dirty_tree)
        assert code == 2


class TestSuppressionDisplay:
    def test_show_suppressed_lists_them(self, make_tree, capsys):
        tree = make_tree({
            "repro/pipeline/p.py": DIRTY.replace(
                "random.random()", "random.random()  # repro: allow[D101]"
            ),
        })
        code, out = run_cli(capsys, tree, "--root", tree, "--no-baseline",
                            "--show-suppressed")
        assert code == 0
        assert "1 suppressed" in out
        assert "D101" in out


class TestRealTree:
    def test_shipping_tree_is_clean(self, capsys):
        paths = [REPO_ROOT / p for p in ("src", "benchmarks", "examples")
                 if (REPO_ROOT / p).exists()]
        code, out = run_cli(capsys, *paths, "--root", REPO_ROOT,
                            "--no-baseline")
        assert code == 0, out

    def test_module_entry_point(self, tmp_path):
        """``python -m repro.analysis`` works as a subprocess (the CI spelling)."""
        pkg = tmp_path / "repro" / "pipeline"
        pkg.mkdir(parents=True)
        for d in (tmp_path / "repro", pkg):
            (d / "__init__.py").write_text("")
        (pkg / "p.py").write_text(DIRTY)
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis", str(tmp_path),
             "--root", str(tmp_path), "--no-baseline", "--format", "json"],
            capture_output=True, text=True,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 1, proc.stderr
        payload = json.loads(proc.stdout)
        assert payload["counts"] == {"D101": 1}
