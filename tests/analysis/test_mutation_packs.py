"""Mutation self-tests: seeded defects in the *real* tree must fail the lint.

Each test copies ``src/repro`` into a scratch dir, plants exactly the bug
class a rule pack exists to catch, and asserts the analyzer's exit flips
to 1 — proving the packs bite on the shipping code, not just on synthetic
fixtures.  (``tmp_path/repro`` keeps the directory literally named
``repro`` so module-name resolution works unchanged.)
"""

import shutil

import pytest

from repro.analysis.cli import main

from .conftest import REPO_ROOT


@pytest.fixture
def mutated_tree(tmp_path):
    """Copy the real package and return (root, patch) helpers."""
    shutil.copytree(REPO_ROOT / "src" / "repro", tmp_path / "repro")

    def patch(relative, old, new):
        path = tmp_path / "repro" / relative
        source = path.read_text()
        assert old in source, f"mutation anchor vanished from {relative}"
        path.write_text(source.replace(old, new, 1))

    return tmp_path, patch


def run(root, select):
    return main(
        [
            str(root / "repro"),
            "--root",
            str(root),
            "--no-baseline",
            "--select",
            select,
        ]
    )


def test_unmutated_copy_is_clean(mutated_tree, capsys):
    root, _ = mutated_tree
    assert run(root, "C,P,K") == 0, capsys.readouterr().out


def test_field_deleted_from_cache_key_fails_k601(mutated_tree, capsys):
    root, patch = mutated_tree
    patch(
        "experiments/sweep.py",
        'f"seed={self.seed}",',
        "",
    )
    assert run(root, "K") == 1
    assert "K601" in capsys.readouterr().out


def test_frame_tag_without_dispatch_arm_fails_p503(mutated_tree, capsys):
    root, patch = mutated_tree
    patch(
        "experiments/backends/wire.py",
        '"shutdown": "coordinator->worker",',
        '"shutdown": "coordinator->worker",\n'
        '    "ping": "coordinator->worker",',
    )
    assert run(root, "P") == 1
    out = capsys.readouterr().out
    assert "P503" in out and "ping" in out


def test_sleep_inserted_into_async_def_fails_c401(mutated_tree, capsys):
    root, patch = mutated_tree
    patch(
        "experiments/backends/distributed.py",
        "hello = await wire.read_frame(reader)",
        "time.sleep(0.01)\n"
        "        hello = await wire.read_frame(reader)",
    )
    assert run(root, "C") == 1
    out = capsys.readouterr().out
    assert "C401" in out and "time.sleep" in out
