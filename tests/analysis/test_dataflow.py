"""The def-use layer: symbol tables, call graph, attribute chains."""

import textwrap

import pytest

from repro.analysis.context import build_file_context
from repro.analysis.dataflow import ModuleDataflow, module_dataflow
from repro.analysis.symbols import SymbolTable, iter_own_nodes

from .conftest import REPO_ROOT


@pytest.fixture
def flow_of(tmp_path):
    """Parse source as ``repro/pipeline/m.py`` and build its dataflow."""

    def _build(source):
        pkg = tmp_path / "repro" / "pipeline"
        pkg.mkdir(parents=True, exist_ok=True)
        for d in (tmp_path / "repro", pkg):
            init = d / "__init__.py"
            if not init.exists():
                init.write_text("")
        path = pkg / "m.py"
        path.write_text(textwrap.dedent(source))
        ctx = build_file_context(path, "repro/pipeline/m.py")
        return ModuleDataflow(ctx)

    return _build


class TestSymbolTable:
    def test_local_assignment_shadows_import(self, flow_of):
        flow = flow_of(
            """
            import queue

            def f():
                queue = {}
                return queue.get("x")
            """
        )
        scope = flow.functions["f"].scope
        binding = scope.lookup("queue")
        assert binding.kind == "assign"
        assert binding.owner is scope

    def test_unshadowed_name_resolves_to_module_import(self, flow_of):
        flow = flow_of(
            """
            import queue

            def f():
                return queue.Queue()
            """
        )
        binding = flow.functions["f"].scope.lookup("queue")
        assert binding.kind == "import"
        assert binding.owner.kind == "module"

    def test_class_scope_is_invisible_to_methods(self, flow_of):
        flow = flow_of(
            """
            limit = 1

            class C:
                limit = 2

                def m(self):
                    return limit
            """
        )
        binding = flow.functions["C.m"].scope.lookup("limit")
        # CPython semantics: the method sees the *module* limit, not C.limit
        assert binding.owner.kind == "module"
        assert binding.lineno == 2

    def test_global_redirects_lookup(self, flow_of):
        flow = flow_of(
            """
            count = 0

            def bump():
                global count
                count = 1
                return count
            """
        )
        binding = flow.functions["bump"].scope.lookup("count")
        assert binding.owner.kind == "module"

    def test_nested_function_qualname_uses_locals(self, flow_of):
        flow = flow_of(
            """
            def outer():
                def inner():
                    pass
                return inner
            """
        )
        assert "outer.<locals>.inner" in flow.functions

    def test_comprehension_target_does_not_leak(self, flow_of):
        flow = flow_of(
            """
            def f(items):
                out = [x for x in items]
                return out
            """
        )
        scope = flow.functions["f"].scope
        assert scope.lookup("x") is None  # bound only inside the comp scope
        assert scope.lookup("out").kind == "assign"

    def test_iter_own_nodes_stops_at_nested_defs(self, flow_of):
        flow = flow_of(
            """
            def outer():
                a = 1
                def inner():
                    b = 2
                return a
            """
        )
        names = {
            n.id
            for n in iter_own_nodes(flow.functions["outer"].node)
            if hasattr(n, "id")
        }
        assert "a" in names
        assert "b" not in names  # inner body is not outer's own code

    def test_symbol_table_standalone(self):
        import ast

        tree = ast.parse("def f(x):\n    y = x\n    return y\n")
        table = SymbolTable(tree)
        fn = tree.body[0]
        scope = table.scope_for(fn)
        assert scope.lookup("x").kind == "param"
        assert scope.lookup("y").kind == "assign"


class TestCallGraph:
    def test_self_calls_resolve_to_methods(self, flow_of):
        flow = flow_of(
            """
            class C:
                def entry(self):
                    return self._helper()

                def _helper(self):
                    return 1
            """
        )
        assert flow.reachable(["C.entry"]) == {"C.entry", "C._helper"}

    def test_skip_async_targets_models_coroutine_creation(self, flow_of):
        flow = flow_of(
            """
            class C:
                def sync_entry(self):
                    self._loop_body()

                async def _loop_body(self):
                    pass
            """
        )
        full = flow.reachable(["C.sync_entry"])
        sync_only = flow.reachable(["C.sync_entry"], skip_async_targets=True)
        assert "C._loop_body" in full
        assert "C._loop_body" not in sync_only

    def test_call_paths_to_finds_shortest_chain(self, flow_of):
        flow = flow_of(
            """
            def a():
                b()

            def b():
                c()

            def c():
                pass
            """
        )
        assert flow.call_paths_to("c", ["a"]) == ["a", "b", "c"]
        assert flow.call_paths_to("a", ["c"]) is None

    def test_imported_call_resolves_to_dotted_path(self, flow_of):
        flow = flow_of(
            """
            import time

            def f():
                time.sleep(1)
            """
        )
        (site,) = flow.calls_from["f"]
        assert site.dotted == "time.sleep"
        assert site.local is None

    def test_decorator_names_resolved(self, flow_of):
        flow = flow_of(
            """
            import functools

            @functools.lru_cache(maxsize=None)
            def f():
                pass
            """
        )
        assert flow.functions["f"].decorators == ["functools.lru_cache"]


class TestAttributeChains:
    SOURCE = """
    import queue

    class C:
        def __init__(self):
            self._q = queue.Queue()
            self.total = 0

        def entry(self):
            return self._indirect()

        def _indirect(self):
            return self.total + self._q.qsize()
    """

    def test_attr_reads_direct_vs_transitive(self, flow_of):
        flow = flow_of(self.SOURCE)
        # a self-method call is itself an attribute load; the *fields* the
        # helper touches only appear in the transitive view
        assert flow.attr_reads("C.entry") == {"_indirect"}
        reads = flow.attr_reads_transitive("C", "entry")
        assert {"total", "_q"} <= reads

    def test_attr_writes_recorded(self, flow_of):
        flow = flow_of(self.SOURCE)
        assert set(flow.attr_writes("C.__init__")) == {"_q", "total"}

    def test_self_attr_types_resolve_constructors(self, flow_of):
        flow = flow_of(self.SOURCE)
        assert flow.self_attr_types("C")["_q"] == "queue.Queue"


class TestAsyncAndMemoization:
    def test_async_methods_flagged(self, flow_of):
        flow = flow_of(
            """
            class C:
                async def serve(self):
                    pass

                def close(self):
                    pass
            """
        )
        assert flow.functions["C.serve"].is_async
        assert not flow.functions["C.close"].is_async

    def test_module_dataflow_memoized_per_context(self, tmp_path):
        pkg = tmp_path / "repro"
        pkg.mkdir()
        (pkg / "__init__.py").write_text("")
        path = pkg / "m.py"
        path.write_text("def f():\n    pass\n")
        ctx = build_file_context(path, "repro/m.py")
        assert module_dataflow(ctx) is module_dataflow(ctx)


class TestRealTreeRegression:
    def test_full_real_tree_builds_and_is_clean(self):
        """Every shipped module must survive the dataflow build, and the
        analyzer must exit clean on HEAD — the pin that keeps the rule
        packs honest about their own false-positive rate."""
        from repro.analysis import analyze_paths

        paths = [
            REPO_ROOT / p
            for p in ("src", "benchmarks", "examples")
            if (REPO_ROOT / p).exists()
        ]
        result = analyze_paths(paths, root=REPO_ROOT)
        rendered = "\n".join(f.render() for f in result.findings)
        assert result.ok, rendered
        assert result.parse_errors == 0
