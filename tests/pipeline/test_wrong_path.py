"""Optional wrong-path fetch modeling."""

import dataclasses

import pytest

from repro.config import FrontEndConfig, default_config
from repro.core import StaticController
from repro.pipeline.processor import ClusteredProcessor, simulate
from repro.workloads.blocks import PhaseParams
from repro.workloads.generator import Profile, generate_trace


def _wrong_path_config(num_clusters=16):
    base = default_config(num_clusters)
    fe = dataclasses.replace(base.front_end, model_wrong_path=True)
    return dataclasses.replace(base, front_end=fe)


@pytest.fixture(scope="module")
def branchy_trace():
    phase = PhaseParams(
        name="branchy",
        body_size=12,
        frac_load=0.2,
        frac_store=0.08,
        cross_iter_dep=0.4,
        inner_branches=2,
        random_branch_frac=0.25,  # mispredicts every ~40 instructions
        biased_taken_prob=0.9,
        mem_pattern="random",
        working_set=8 * 1024,
    )
    return generate_trace(
        Profile(name="branchy", phases=(phase,), schedule="steady"), 5_000, seed=3
    )


class TestWrongPath:
    def test_all_real_instructions_commit(self, branchy_trace):
        stats = simulate(branchy_trace, _wrong_path_config())
        assert stats.committed == len(branchy_trace)

    def test_wrong_path_work_is_squashed(self, branchy_trace):
        stats = simulate(branchy_trace, _wrong_path_config())
        assert stats.mispredicts > 10
        assert stats.squashed > 0
        # every squashed instruction was also fetched and dispatched
        assert stats.fetched >= stats.committed + stats.squashed

    def test_default_mode_squashes_nothing(self, branchy_trace):
        stats = simulate(branchy_trace, default_config(16))
        assert stats.squashed == 0

    def test_pipeline_fully_drains(self, branchy_trace):
        proc = ClusteredProcessor(branchy_trace, _wrong_path_config())
        proc.run()
        assert proc.rob.empty
        assert all(c.reset_for_drain_check() for c in proc.clusters)
        assert not proc._records

    def test_wrong_path_costs_performance(self, branchy_trace):
        """Wrong-path work competes for resources, so IPC must not improve
        relative to stall-on-mispredict on a branchy program."""
        stall = simulate(branchy_trace, default_config(16))
        wrong = simulate(branchy_trace, _wrong_path_config())
        assert wrong.ipc <= stall.ipc * 1.02

    def test_distant_counting_skips_wrong_path(self, branchy_trace):
        stats = simulate(branchy_trace, _wrong_path_config())
        assert stats.distant_commits <= stats.committed

    def test_works_with_reconfiguration(self, branchy_trace):
        stats = simulate(
            branchy_trace, _wrong_path_config(), controller=StaticController(4)
        )
        assert stats.committed == len(branchy_trace)

    def test_flag_lives_in_frontend_config(self):
        assert FrontEndConfig().model_wrong_path is False
        assert _wrong_path_config().front_end.model_wrong_path is True
