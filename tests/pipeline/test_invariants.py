"""Pipeline conservation invariants (property-based)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import decentralized_config, default_config
from repro.core import StaticController
from repro.pipeline.processor import ClusteredProcessor
from repro.workloads.blocks import PhaseParams
from repro.workloads.generator import Profile, generate_trace


def _trace(body, cross, frac_load, frac_store, pattern, seed, length=1200):
    phase = PhaseParams(
        name="h",
        body_size=body,
        cross_iter_dep=cross,
        frac_load=frac_load,
        frac_store=frac_store,
        mem_pattern=pattern,
        inner_branches=1,
        working_set=8 * 1024,
    )
    return generate_trace(
        Profile(name="h", phases=(phase,), schedule="steady"), length, seed=seed
    )


workload = st.tuples(
    st.integers(min_value=4, max_value=36),          # body
    st.floats(min_value=0.0, max_value=0.8),         # cross
    st.floats(min_value=0.0, max_value=0.35),        # frac_load
    st.floats(min_value=0.0, max_value=0.15),        # frac_store
    st.sampled_from(["strided", "random", "hotcold", "chase"]),
    st.integers(min_value=0, max_value=9999),        # seed
)


class TestConservation:
    @given(workload, st.sampled_from([1, 3, 7, 16]))
    @settings(max_examples=10, deadline=None)
    def test_everything_drains(self, wl, clusters):
        trace = _trace(*wl)
        proc = ClusteredProcessor(trace, default_config(16), StaticController(clusters))
        proc.run()
        s = proc.stats
        assert s.committed == s.dispatched == s.issued == len(trace)
        assert proc.rob.empty
        assert all(c.reset_for_drain_check() for c in proc.clusters)
        assert not proc._records  # no leaked in-flight state

    @given(workload)
    @settings(max_examples=6, deadline=None)
    def test_decentralized_drains(self, wl):
        trace = _trace(*wl)
        proc = ClusteredProcessor(trace, decentralized_config(16))
        proc.run()
        assert proc.stats.committed == len(trace)
        lsq = proc.memory.lsq
        lsq.tick(proc.cycle + 10_000)  # release any scheduled dummies
        assert all(lsq.occupancy(k) == 0 for k in range(16))

    @given(workload)
    @settings(max_examples=6, deadline=None)
    def test_counter_sanity(self, wl):
        trace = _trace(*wl)
        proc = ClusteredProcessor(trace, default_config(8))
        proc.run()
        s = proc.stats
        assert s.mispredicts <= s.branches
        assert s.loads + s.stores == s.memrefs
        assert s.distant_commits <= s.committed
        assert 0 <= s.cluster_cycle_product <= 8 * s.cycles

    @given(workload)
    @settings(max_examples=5, deadline=None)
    def test_mid_run_reconfiguration_safe(self, wl):
        """Reconfiguring at arbitrary points never wedges or loses work."""
        trace = _trace(*wl)
        proc = ClusteredProcessor(trace, default_config(16))
        sizes = [2, 16, 4, 8, 1]
        i = 0
        while not proc.finished:
            proc.step()
            if proc.cycle % 97 == 0:
                proc.set_active_clusters(sizes[i % len(sizes)])
                i += 1
        assert proc.stats.committed == len(trace)
