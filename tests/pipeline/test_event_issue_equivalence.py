"""Event-driven issue must be bit-identical to the naive reference scan.

The optimized select loop (`_issue_event`) skips clusters until their
`wake_cycle`; the pre-optimization full scan survives as
``ClusteredProcessor(..., naive_issue=True)`` precisely so this property can
be checked forever: for ANY workload shape, machine topology, cluster
count, controller, and wrong-path setting, the two paths must produce
byte-for-byte identical statistics.  A single missed wakeup shows up here
as a cycle-count divergence.

The exhaustive 200-example sweep is `slow` (it runs in the CI slow job);
a small smoke sample rides in the fast tier.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import decentralized_config, default_config, grid_config
from repro.core import DistantILPController, NoExploreConfig, StaticController
from repro.pipeline.processor import ClusteredProcessor
from repro.workloads.blocks import PhaseParams
from repro.workloads.generator import Profile, generate_trace

_CONFIGS = {
    "ring": default_config,
    "grid": grid_config,
    "decentralized": decentralized_config,
}


def _build_controller(kind):
    if kind == "none":
        return None
    if kind.startswith("static-"):
        return StaticController(int(kind.split("-")[1]))
    return DistantILPController(NoExploreConfig.scaled(interval_length=400))


def _check_equivalence(body, cross, frac_load, branches, seed,
                       topology, controller_kind, wrong_path):
    phase = PhaseParams(
        name="h",
        body_size=body,
        cross_iter_dep=cross,
        frac_load=frac_load,
        frac_store=min(0.2, frac_load / 2),
        inner_branches=branches,
        random_branch_frac=0.05,
    )
    trace = generate_trace(
        Profile(name="h", phases=(phase,), schedule="steady"), 1_500, seed=seed
    )
    config = _CONFIGS[topology](8)
    if wrong_path:
        config = dataclasses.replace(
            config,
            front_end=dataclasses.replace(config.front_end, model_wrong_path=True),
        )
    event = ClusteredProcessor(
        trace, config, _build_controller(controller_kind)
    ).run()
    naive = ClusteredProcessor(
        trace, config, _build_controller(controller_kind), naive_issue=True
    ).run()
    assert event == naive  # SimStats is a dataclass: field-wise equality


_equivalence_inputs = given(
    body=st.integers(min_value=4, max_value=40),
    cross=st.floats(min_value=0.0, max_value=0.9),
    frac_load=st.floats(min_value=0.0, max_value=0.4),
    branches=st.integers(min_value=0, max_value=3),
    seed=st.integers(min_value=0, max_value=100_000),
    topology=st.sampled_from(sorted(_CONFIGS)),
    controller_kind=st.sampled_from(["none", "static-2", "static-8", "no-explore"]),
    wrong_path=st.booleans(),
)


class TestEventIssueEquivalence:
    @_equivalence_inputs
    @settings(max_examples=10, deadline=None)
    def test_smoke(self, **case):
        _check_equivalence(**case)

    @pytest.mark.slow
    @_equivalence_inputs
    @settings(max_examples=200, deadline=None)
    def test_exhaustive(self, **case):
        _check_equivalence(**case)
