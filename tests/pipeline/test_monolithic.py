"""Monolithic baseline wrapper."""

from repro.config import monolithic_config
from repro.pipeline.monolithic import simulate_monolithic


class TestMonolithic:
    def test_runs_to_completion(self, parallel_trace):
        stats = simulate_monolithic(parallel_trace)
        assert stats.committed == len(parallel_trace)

    def test_no_communication(self, parallel_trace):
        stats = simulate_monolithic(parallel_trace)
        assert stats.register_transfers == 0
        assert stats.memory_transfers == 0

    def test_single_cluster_machine(self, parallel_trace):
        stats = simulate_monolithic(parallel_trace)
        assert stats.avg_active_clusters == 1.0

    def test_accepts_explicit_config(self, parallel_trace):
        stats = simulate_monolithic(parallel_trace, monolithic_config())
        assert stats.ipc > 0

    def test_max_instructions(self, parallel_trace):
        stats = simulate_monolithic(parallel_trace, max_instructions=500)
        assert 500 <= stats.committed <= 520
