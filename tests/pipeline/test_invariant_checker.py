"""Sampled runtime invariant checking (repro.pipeline.invariants).

Two burdens of proof: a healthy simulation passes every check (and the
checks actually run), and a deliberately corrupted one fails loudly with
cycle/instruction context — never commits garbage statistics silently.
"""

import dataclasses

import pytest

from repro.config import default_config
from repro.core import StaticController
from repro.errors import SimulationError
from repro.pipeline.invariants import invariants_enabled
from repro.pipeline.processor import ClusteredProcessor


def config_with_checks(enabled=True, period=64):
    return dataclasses.replace(
        default_config(16), check_invariants=enabled,
        invariant_sample_period=period,
    )


def processor_for(trace, enabled=True, period=64):
    return ClusteredProcessor(
        trace, config_with_checks(enabled, period), StaticController(4)
    )


def run_cycles(proc, cycles):
    for _ in range(cycles):
        proc.step()


class TestEnableToggle:
    def test_config_flag_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHECK_INVARIANTS", "1")
        assert not invariants_enabled(config_with_checks(False))
        monkeypatch.setenv("REPRO_CHECK_INVARIANTS", "0")
        assert invariants_enabled(config_with_checks(True))

    def test_env_decides_when_config_is_unset(self, monkeypatch):
        config = default_config(16)
        assert config.check_invariants is None
        for value, expected in [("1", True), ("on", True), ("", False),
                                ("0", False), ("off", False), ("no", False)]:
            monkeypatch.setenv("REPRO_CHECK_INVARIANTS", value)
            assert invariants_enabled(config) is expected

    def test_disabled_processor_has_no_checker(self, gzip_trace):
        assert processor_for(gzip_trace, enabled=False).invariants is None

    def test_toggle_does_not_change_cache_keys(self):
        # check_invariants rides on the config but is excluded from repr,
        # so flipping it must not invalidate the on-disk result cache
        assert repr(config_with_checks(True)) == repr(config_with_checks(False))


class TestCleanRunPasses:
    def test_full_run_checks_and_passes(self, gzip_trace):
        proc = processor_for(gzip_trace, period=16)
        proc.run()
        assert proc.invariants.checks_run > 1  # sampled + the final check
        assert proc.stats.committed == len(gzip_trace)

    def test_phased_trace_with_controller_passes(self, phased_trace):
        config = config_with_checks(period=32)
        from repro.core import ExploreConfig, IntervalExploreController

        proc = ClusteredProcessor(
            phased_trace, config, IntervalExploreController(ExploreConfig.scaled())
        )
        proc.run()
        assert proc.invariants.checks_run > 1

    def test_checking_is_read_only(self, gzip_trace):
        """Bit-identical stats with checking on and off — the determinism
        guarantee that lets the test suite enable checks globally."""
        checked = processor_for(gzip_trace, enabled=True, period=8)
        unchecked = processor_for(gzip_trace, enabled=False)
        checked.run()
        unchecked.run()
        assert checked.stats.snapshot() == unchecked.stats.snapshot()


class TestCorruptionIsCaught:
    """Tamper with live state mid-run; the next check must raise with
    cycle context, naming the subsystem."""

    def mid_run(self, trace):
        proc = processor_for(trace)
        run_cycles(proc, 200)  # well into steady state, pipeline full
        assert len(proc.rob) > 0
        return proc

    def test_register_leak(self, gzip_trace):
        proc = self.mid_run(gzip_trace)
        proc.clusters[0]._int_regs += 3  # leak three physical registers
        with pytest.raises(SimulationError, match="register leak"):
            proc.invariants.check()

    def test_regfile_over_capacity(self, gzip_trace):
        proc = self.mid_run(gzip_trace)
        cluster = proc.clusters[0]
        cluster._int_regs = cluster.config.regfile_size + 5
        with pytest.raises(SimulationError, match="occupancy"):
            proc.invariants.check()

    def test_issue_queue_counter_drift(self, gzip_trace):
        proc = self.mid_run(gzip_trace)
        cluster = next(c for c in proc.clusters if c.iq_occupancy > 0)
        # drop a queued record without telling the occupancy counters
        entry = next(r for r in cluster.issue_queue if r is not None)
        cluster.issue_queue.remove(entry)
        with pytest.raises(SimulationError, match="issue-queue counter"):
            proc.invariants.check()

    def test_rob_commit_order_violation(self, gzip_trace):
        proc = self.mid_run(gzip_trace)
        entries = [r for r in proc.rob if r.instr.index >= 0]
        assert len(entries) >= 2
        entries[0].dispatch_cycle = entries[-1].dispatch_cycle + 100
        with pytest.raises(SimulationError, match="commit order"):
            proc.invariants.check()

    def test_lost_network_message(self, gzip_trace):
        proc = self.mid_run(gzip_trace)
        run_cycles(proc, 200)  # ensure some transfers happened
        proc.network.messages_sent += 1  # a message the stats never saw
        with pytest.raises(SimulationError, match="message conservation"):
            proc.invariants.check()

    def test_rate_inversion(self, gzip_trace):
        proc = self.mid_run(gzip_trace)
        proc.stats.committed = proc.stats.dispatched + 10
        with pytest.raises(SimulationError, match="rates"):
            proc.invariants.check()

    def test_failure_message_carries_context(self, gzip_trace):
        proc = self.mid_run(gzip_trace)
        proc.clusters[0]._int_regs += 1
        with pytest.raises(SimulationError) as excinfo:
            proc.invariants.check()
        message = str(excinfo.value)
        assert f"cycle {proc.cycle}" in message
        assert proc.trace.name in message

    def test_sampled_check_fires_during_run(self, gzip_trace):
        """Corruption injected mid-run is caught by the *sampled* check in
        step(), not only by a direct call."""
        proc = processor_for(gzip_trace, period=16)
        run_cycles(proc, 200)
        proc.clusters[0]._int_regs += 3
        with pytest.raises(SimulationError, match="register leak"):
            run_cycles(proc, 64)


class TestLivenessAwareRates:
    """Fault-killed clusters must not false-positive the rate checks, but
    a drifted live-cluster count must still fail."""

    def faulted(self, trace, schedule):
        from repro.pipeline.processor import ClusteredProcessor

        return ClusteredProcessor(
            trace, config_with_checks(period=16), None,
            fault_schedule=schedule,
        )

    def test_killed_cluster_passes_checks(self, gzip_trace):
        from repro.resilience import FaultEvent, FaultSchedule

        proc = self.faulted(gzip_trace, FaultSchedule((
            FaultEvent(cycle=300, kind="cluster_kill", cluster=5),
        )))
        proc.run()  # every sampled check ran against the degraded machine
        assert proc.invariants.checks_run > 1
        assert proc.stats.cluster_kills == 1

    def test_liveness_drift_is_caught(self, gzip_trace):
        from repro.resilience import FaultEvent, FaultSchedule

        proc = self.faulted(gzip_trace, FaultSchedule((
            FaultEvent(cycle=100, kind="cluster_kill", cluster=5),
        )))
        run_cycles(proc, 300)
        # resurrect the cluster behind the processor's back: the effective
        # count no longer matches the live scan
        proc.clusters[5].live = True
        with pytest.raises(SimulationError, match="fault remap drifted"):
            proc.invariants.check()


class TestSamplingPeriod:
    def test_longer_period_means_fewer_checks(self, gzip_trace):
        fine = processor_for(gzip_trace, period=8)
        coarse = processor_for(gzip_trace, period=512)
        fine.run()
        coarse.run()
        assert fine.invariants.checks_run > coarse.invariants.checks_run >= 1

    def test_checker_period_floor(self, gzip_trace):
        proc = ClusteredProcessor(
            gzip_trace, config_with_checks(period=0), StaticController(4)
        )
        assert proc.invariants.period == 1
