"""Cluster resources: occupancy, functional units."""

import pytest

from repro.config import ClusterConfig
from repro.clusters.cluster import Cluster
from repro.clusters.functional_units import EXEC_LATENCY, FU_POOL, FunctionalUnits
from repro.errors import SimulationError
from repro.workloads.instruction import OpClass


class TestFunctionalUnits:
    def test_one_issue_per_unit_per_cycle(self):
        fus = FunctionalUnits(ClusterConfig())
        fus.begin_cycle()
        assert fus.try_issue(OpClass.INT_ALU)
        assert not fus.try_issue(OpClass.INT_ALU)
        assert fus.try_issue(OpClass.FP_ALU)
        assert fus.try_issue(OpClass.INT_MUL)

    def test_begin_cycle_resets(self):
        fus = FunctionalUnits(ClusterConfig())
        fus.begin_cycle()
        fus.try_issue(OpClass.INT_ALU)
        fus.begin_cycle()
        assert fus.try_issue(OpClass.INT_ALU)

    def test_loads_and_branches_share_int_alu(self):
        """Address generation and branch resolution use the integer ALU."""
        assert FU_POOL[OpClass.LOAD] == "int_alu"
        assert FU_POOL[OpClass.STORE] == "int_alu"
        assert FU_POOL[OpClass.BRANCH] == "int_alu"
        fus = FunctionalUnits(ClusterConfig())
        fus.begin_cycle()
        assert fus.try_issue(OpClass.LOAD)
        assert not fus.try_issue(OpClass.BRANCH)

    def test_wider_clusters(self):
        fus = FunctionalUnits(ClusterConfig(int_alus=2))
        fus.begin_cycle()
        assert fus.try_issue(OpClass.INT_ALU)
        assert fus.try_issue(OpClass.INT_ALU)
        assert not fus.try_issue(OpClass.INT_ALU)

    def test_latencies_sane(self):
        assert EXEC_LATENCY[OpClass.INT_ALU] == 1
        assert EXEC_LATENCY[OpClass.FP_ALU] > 1
        assert EXEC_LATENCY[OpClass.INT_MUL] > EXEC_LATENCY[OpClass.INT_ALU]


class TestClusterOccupancy:
    def _cluster(self, iq=2, regs=3):
        return Cluster(0, ClusterConfig(issue_queue_size=iq, regfile_size=regs))

    def test_iq_fills_separately_per_type(self):
        c = self._cluster(iq=1)
        c.allocate(object(), OpClass.INT_ALU, needs_reg=True)
        assert not c.iq_has_room(OpClass.INT_ALU)
        assert c.iq_has_room(OpClass.FP_ALU)  # fp queue is separate

    def test_regs_fill_separately_per_type(self):
        c = self._cluster(regs=1)
        c.allocate(object(), OpClass.INT_ALU, needs_reg=True)
        assert not c.reg_available(OpClass.INT_MUL, True)
        assert c.reg_available(OpClass.FP_ALU, True)

    def test_stores_need_no_register(self):
        c = self._cluster(regs=1)
        c.allocate(object(), OpClass.INT_ALU, needs_reg=True)
        assert c.can_accept(OpClass.STORE, needs_reg=False)

    def test_issue_frees_iq_not_regs(self):
        c = self._cluster(iq=1, regs=2)
        rec = object()
        c.allocate(rec, OpClass.INT_ALU, needs_reg=True)
        c.on_issue(rec, OpClass.INT_ALU)
        assert c.iq_has_room(OpClass.INT_ALU)
        assert c.reg_occupancy == 1

    def test_commit_frees_reg(self):
        c = self._cluster(regs=1)
        rec = object()
        c.allocate(rec, OpClass.INT_ALU, needs_reg=True)
        c.on_issue(rec, OpClass.INT_ALU)
        c.on_commit(OpClass.INT_ALU, needs_reg=True)
        assert c.reg_available(OpClass.INT_ALU, True)

    def test_overflow_raises(self):
        c = self._cluster(iq=1)
        c.allocate(object(), OpClass.INT_ALU, needs_reg=True)
        with pytest.raises(SimulationError):
            c.allocate(object(), OpClass.INT_ALU, needs_reg=True)

    def test_drain_check(self):
        c = self._cluster()
        assert c.reset_for_drain_check()
        rec = object()
        c.allocate(rec, OpClass.INT_ALU, needs_reg=True)
        assert not c.reset_for_drain_check()
