"""Instruction steering heuristics."""

import pytest

from repro.config import ClusterConfig
from repro.clusters.cluster import Cluster
from repro.clusters.criticality import CriticalityPredictor
from repro.clusters.steering import (
    FirstFitSteering,
    ModNSteering,
    ProducerSteering,
)
from repro.workloads.instruction import Instr, OpClass


def _clusters(n=4, iq=4, regs=8):
    cfg = ClusterConfig(issue_queue_size=iq, regfile_size=regs)
    return [Cluster(i, cfg) for i in range(n)]


def _alu(pc=0x40):
    return Instr(0, pc, OpClass.INT_ALU, src1=1, src2=2)


def _fill(cluster, count, op=OpClass.INT_ALU):
    for _ in range(count):
        cluster.allocate(object(), op, needs_reg=True)


class TestProducerSteering:
    def test_follows_single_producer(self):
        clusters = _clusters()
        steer = ProducerSteering(clusters)
        assert steer.choose(_alu(), [(0, 2)], active=4) == 2

    def test_majority_of_producers_wins(self):
        clusters = _clusters()
        steer = ProducerSteering(clusters)
        # both operands produced in cluster 3
        assert steer.choose(_alu(), [(0, 3), (1, 3)], active=4) == 3

    def test_criticality_breaks_ties(self):
        clusters = _clusters()
        crit = CriticalityPredictor()
        steer = ProducerSteering(clusters, crit)
        pc = 0x80
        # train: operand 1 is critical for this pc
        for _ in range(4):
            crit.update(pc, 1)
        instr = Instr(0, pc, OpClass.INT_ALU, src1=1, src2=2)
        chosen = steer.choose(instr, [(0, 1), (1, 3)], active=4)
        assert chosen == 3

    def test_no_producers_goes_least_loaded(self):
        clusters = _clusters()
        _fill(clusters[0], 3)
        _fill(clusters[1], 1)
        steer = ProducerSteering(clusters)
        assert steer.choose(_alu(), [], active=4) in (2, 3)

    def test_imbalance_override(self):
        clusters = _clusters(iq=8)
        steer = ProducerSteering(clusters, imbalance_threshold=2)
        _fill(clusters[1], 5)  # producer cluster heavily loaded
        chosen = steer.choose(_alu(), [(0, 1)], active=4)
        assert chosen != 1

    def test_within_threshold_keeps_producer(self):
        clusters = _clusters(iq=8)
        steer = ProducerSteering(clusters, imbalance_threshold=4)
        _fill(clusters[1], 3)
        assert steer.choose(_alu(), [(0, 1)], active=4) == 1

    def test_respects_active_subset(self):
        clusters = _clusters(n=8)
        steer = ProducerSteering(clusters)
        # producer lives in a disabled cluster
        chosen = steer.choose(_alu(), [(0, 6)], active=4)
        assert chosen is not None and chosen < 4

    def test_stalls_when_nothing_feasible(self):
        clusters = _clusters(n=2, iq=1)
        for c in clusters:
            _fill(c, 1)
        steer = ProducerSteering(clusters)
        assert steer.choose(_alu(), [], active=2) is None

    def test_bank_preference_wins(self):
        clusters = _clusters()
        steer = ProducerSteering(clusters)
        load = Instr(0, 0x40, OpClass.LOAD, src1=1, addr=0x100)
        assert steer.choose(load, [(0, 0)], active=4, preferred=2) == 2

    def test_infeasible_preference_falls_through(self):
        clusters = _clusters(iq=1)
        _fill(clusters[2], 1)
        steer = ProducerSteering(clusters)
        load = Instr(0, 0x40, OpClass.LOAD, src1=1, addr=0x100)
        chosen = steer.choose(load, [], active=4, preferred=2)
        assert chosen is not None and chosen != 2


class TestModN:
    def test_groups_of_n(self):
        clusters = _clusters(iq=8)
        steer = ModNSteering(clusters, n=2)
        picks = [steer.choose(_alu(), [], active=4) for _ in range(6)]
        assert picks == [0, 0, 1, 1, 2, 2]

    def test_wraps_around(self):
        clusters = _clusters(iq=16)
        steer = ModNSteering(clusters, n=1)
        picks = [steer.choose(_alu(), [], active=2) for _ in range(4)]
        assert picks == [0, 1, 0, 1]

    def test_skips_full_cluster(self):
        clusters = _clusters(iq=1)
        steer = ModNSteering(clusters, n=4)
        _fill(clusters[0], 1)
        assert steer.choose(_alu(), [], active=4) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            ModNSteering(_clusters(), n=0)


class TestFirstFit:
    def test_fills_lowest_first(self):
        clusters = _clusters(iq=2)
        steer = FirstFitSteering(clusters)
        picks = [None] * 4
        for i in range(4):
            picks[i] = steer.choose(_alu(), [], active=4)
            clusters[picks[i]].allocate(object(), OpClass.INT_ALU, True)
        assert picks == [0, 0, 1, 1]

    def test_stall_when_all_full(self):
        clusters = _clusters(n=2, iq=1)
        steer = FirstFitSteering(clusters)
        for c in clusters:
            _fill(c, 1)
        assert steer.choose(_alu(), [], active=2) is None


class TestCriticalityPredictor:
    def test_learns_critical_operand(self):
        crit = CriticalityPredictor()
        for _ in range(4):
            crit.update(0x40, 1)
        assert crit.predict_critical_operand(0x40) == 1
        for _ in range(6):
            crit.update(0x40, 0)
        assert crit.predict_critical_operand(0x40) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            CriticalityPredictor(100)
        with pytest.raises(ValueError):
            CriticalityPredictor().update(0, 2)
